"""Arithmetic semantics: 64-bit wrapping, C-style division, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.ops import (
    BINARY_OPS,
    INT_MASK,
    INT_MAX,
    INT_MIN,
    EvalError,
    eval_binop,
    eval_unop,
    wrap_int,
)

small_ints = st.integers(min_value=INT_MIN, max_value=INT_MAX)


class TestWrapInt:
    def test_identity_in_range(self):
        assert wrap_int(42) == 42
        assert wrap_int(-42) == -42
        assert wrap_int(INT_MAX) == INT_MAX
        assert wrap_int(INT_MIN) == INT_MIN

    def test_overflow_wraps(self):
        assert wrap_int(INT_MAX + 1) == INT_MIN
        assert wrap_int(INT_MIN - 1) == INT_MAX
        assert wrap_int(1 << 64) == 0

    @given(st.integers(min_value=-(1 << 70), max_value=1 << 70))
    def test_always_in_range(self, value):
        wrapped = wrap_int(value)
        assert INT_MIN <= wrapped <= INT_MAX
        assert (wrapped - value) % (1 << 64) == 0


class TestIntBinops:
    def test_add_sub_mul(self):
        assert eval_binop("add", 2, 3) == 5
        assert eval_binop("sub", 2, 3) == -1
        assert eval_binop("mul", -4, 5) == -20

    def test_add_wraps(self):
        assert eval_binop("add", INT_MAX, 1) == INT_MIN

    def test_trunc_division(self):
        # C semantics: truncation toward zero.
        assert eval_binop("div", 7, 2) == 3
        assert eval_binop("div", -7, 2) == -3
        assert eval_binop("div", 7, -2) == -3
        assert eval_binop("div", -7, -2) == 3

    def test_trunc_modulo(self):
        assert eval_binop("mod", 7, 3) == 1
        assert eval_binop("mod", -7, 3) == -1
        assert eval_binop("mod", 7, -3) == 1
        assert eval_binop("mod", -7, -3) == -1

    @given(small_ints, small_ints.filter(lambda v: v != 0))
    def test_div_mod_identity(self, a, b):
        q = eval_binop("div", a, b)
        r = eval_binop("mod", a, b)
        assert wrap_int(q * b + r) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(EvalError):
            eval_binop("div", 1, 0)
        with pytest.raises(EvalError):
            eval_binop("mod", 1, 0)

    def test_bitwise(self):
        assert eval_binop("and", 0b1100, 0b1010) == 0b1000
        assert eval_binop("or", 0b1100, 0b1010) == 0b1110
        assert eval_binop("xor", 0b1100, 0b1010) == 0b0110

    def test_bitwise_negative_operands(self):
        # Two's-complement semantics: -1 & 15 == 15.
        assert eval_binop("and", -1, 15) == 15
        assert eval_binop("or", -16, 15) == -1

    def test_shifts(self):
        assert eval_binop("shl", 1, 10) == 1024
        assert eval_binop("shr", 1024, 10) == 1
        # Arithmetic right shift preserves sign.
        assert eval_binop("shr", -8, 1) == -4
        # Shift amounts reduce modulo 64.
        assert eval_binop("shl", 1, 64) == 1

    def test_comparisons_produce_bits(self):
        assert eval_binop("lt", 1, 2) == 1
        assert eval_binop("ge", 1, 2) == 0
        assert eval_binop("eq", 5, 5) == 1
        assert eval_binop("ne", 5, 5) == 0

    @given(small_ints, small_ints)
    def test_comparison_trichotomy(self, a, b):
        assert eval_binop("lt", a, b) + eval_binop("eq", a, b) + eval_binop("gt", a, b) == 1

    def test_unknown_op_raises(self):
        with pytest.raises(TypeError):
            eval_binop("bogus", 1, 2)


class TestFloatBinops:
    def test_float_arith(self):
        assert eval_binop("add", 1.5, 2.5) == 4.0
        assert eval_binop("mul", 2.0, 0.25) == 0.5

    def test_float_compare(self):
        assert eval_binop("lt", 1.0, 2.0) == 1
        assert eval_binop("eq", 1.0, 1.0) == 1

    def test_float_div_zero_raises(self):
        with pytest.raises(EvalError):
            eval_binop("div", 1.0, 0.0)

    def test_int_only_op_on_float_raises(self):
        with pytest.raises(TypeError):
            eval_binop("mod", 1.0, 2.0)
        with pytest.raises(TypeError):
            eval_binop("shl", 1.0, 2.0)

    def test_mixed_types_raise(self):
        with pytest.raises(TypeError):
            eval_binop("add", 1, 2.0)


class TestUnops:
    def test_neg(self):
        assert eval_unop("neg", 5) == -5
        assert eval_unop("neg", -2.5) == 2.5
        assert eval_unop("neg", INT_MIN) == INT_MIN  # wraps

    def test_not(self):
        assert eval_unop("not", 0) == -1
        assert eval_unop("not", -1) == 0

    def test_lnot(self):
        assert eval_unop("lnot", 0) == 1
        assert eval_unop("lnot", 7) == 0
        assert eval_unop("lnot", 0.0) == 1

    def test_conversions(self):
        assert eval_unop("itof", 3) == 3.0
        assert isinstance(eval_unop("itof", 3), float)
        assert eval_unop("ftoi", 3.9) == 3
        assert eval_unop("ftoi", -3.9) == -3

    def test_ftoi_nonfinite_raises(self):
        with pytest.raises(EvalError):
            eval_unop("ftoi", float("inf"))
        with pytest.raises(EvalError):
            eval_unop("ftoi", float("nan"))

    def test_bitwise_not_on_float_raises(self):
        with pytest.raises(TypeError):
            eval_unop("not", 1.0)


def test_op_sets_consistent():
    from repro.ir.ops import COMPARISON_OPS, INT_ONLY_OPS

    assert COMPARISON_OPS <= BINARY_OPS
    assert INT_ONLY_OPS <= BINARY_OPS
