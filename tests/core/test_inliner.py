"""The inline pass (Figure 4): transform mechanics, scheduling, budget."""

import pytest

from repro.core import Budget, HLOConfig, HLOReport, inline_pass, perform_inline
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import Call, verify_program


def build(sources):
    return compile_program(sources)


def find_site(program, caller, callee):
    for block, index, instr in program.proc(caller).call_sites():
        if isinstance(instr, Call) and instr.callee == callee:
            return instr.site_id
    raise AssertionError("no site {} -> {}".format(caller, callee))


SIMPLE = [
    (
        "m",
        """
        int add3(int a, int b, int c) { return a + b + c; }
        int main() {
          print_int(add3(1, 2, 3));
          print_int(add3(4, 5, 6));
          return 0;
        }
        """,
    )
]


class TestPerformInline:
    def test_semantics_preserved(self):
        program = build(SIMPLE)
        before = run_program(program).behavior()
        report = HLOReport()
        site = find_site(program, "main", "add3")
        assert perform_inline(program, program.proc("main"), site, report, 0)
        verify_program(program)
        assert run_program(program).behavior() == before
        assert report.inlines == 1

    def test_call_replaced_not_duplicated(self):
        program = build(SIMPLE)
        report = HLOReport()
        site = find_site(program, "main", "add3")
        perform_inline(program, program.proc("main"), site, report, 0)
        remaining = [
            i
            for _b, _i, i in program.proc("main").call_sites()
            if isinstance(i, Call) and i.callee == "add3"
        ]
        assert len(remaining) == 1  # only the second site remains

    def test_missing_site_returns_false(self):
        program = build(SIMPLE)
        report = HLOReport()
        assert not perform_inline(program, program.proc("main"), 999, report, 0)

    def test_void_callee(self):
        program = build(
            [
                (
                    "m",
                    """
                    int g = 0;
                    void poke(int v) { g = v; }
                    int main() { poke(7); print_int(g); return 0; }
                    """,
                )
            ]
        )
        before = run_program(program).behavior()
        report = HLOReport()
        site = find_site(program, "main", "poke")
        perform_inline(program, program.proc("main"), site, report, 0)
        verify_program(program)
        assert run_program(program).behavior() == before

    def test_multi_return_callee(self):
        program = build(
            [
                (
                    "m",
                    """
                    int pick(int x) {
                      if (x > 10) return 1;
                      if (x > 5) return 2;
                      return 3;
                    }
                    int main() {
                      print_int(pick(20)); print_int(pick(7)); print_int(pick(1));
                      return 0;
                    }
                    """,
                )
            ]
        )
        before = run_program(program).behavior()
        report = HLOReport()
        for _ in range(3):
            sites = [
                i.site_id
                for _b, _idx, i in program.proc("main").call_sites()
                if isinstance(i, Call) and i.callee == "pick"
            ]
            if not sites:
                break
            perform_inline(program, program.proc("main"), sites[0], report, 0)
        verify_program(program)
        assert run_program(program).behavior() == before
        assert report.inlines == 3

    def test_self_recursive_unroll(self):
        program = build(
            [
                (
                    "m",
                    """
                    int count(int n) { if (n <= 0) return 0; return 1 + count(n - 1); }
                    int main() { return count(5); }
                    """,
                )
            ]
        )
        before = run_program(program).behavior()
        report = HLOReport()
        site = find_site(program, "count", "count")
        assert perform_inline(program, program.proc("count"), site, report, 0)
        verify_program(program)
        assert run_program(program).behavior() == before

    def test_profile_counts_flow(self):
        program = build(SIMPLE)
        callee = program.proc("add3")
        for block in callee.blocks.values():
            block.profile_count = 2
        caller = program.proc("main")
        for block in caller.blocks.values():
            block.profile_count = 1
        report = HLOReport()
        site = find_site(program, "main", "add3")
        perform_inline(program, caller, site, report, 0)
        # Half the callee's traffic moved into the caller.
        assert callee.blocks[callee.entry].profile_count == 1

    def test_cross_module_static_promotion(self):
        program = build(
            [
                (
                    "lib",
                    """
                    static int secret(int x) { return x * 3; }
                    int wrap(int x) { return secret(x); }
                    """,
                ),
                (
                    "main",
                    """
                    extern int wrap(int x);
                    int main() { print_int(wrap(5)); return 0; }
                    """,
                ),
            ]
        )
        before = run_program(program).behavior()
        report = HLOReport()
        site = find_site(program, "main", "wrap")
        perform_inline(program, program.proc("main"), site, report, 0)
        verify_program(program)  # would fail without promotion
        assert report.promotions == 1
        assert run_program(program).behavior() == before


class TestInlinePass:
    def test_pass_inlines_and_reports(self):
        program = build(SIMPLE)
        before = run_program(program).behavior()
        config = HLOConfig(budget_percent=400)
        budget = Budget(program, 400)
        report = HLOReport()
        # Use the final stage: on a tiny two-procedure program the
        # quadratic model makes one inline a large relative jump, so the
        # 20% first-stage allotment correctly rejects it.
        performed = inline_pass(program, config, budget, report, 3)
        assert performed >= 1
        verify_program(program)
        assert run_program(program).behavior() == before

    def test_budget_zero_blocks_everything(self):
        program = build(SIMPLE)
        config = HLOConfig(budget_percent=0)
        budget = Budget(program, 0)
        report = HLOReport()
        assert inline_pass(program, config, budget, report, 0) == 0

    def test_budget_never_exceeded(self):
        program = build(SIMPLE)
        config = HLOConfig(budget_percent=50, reoptimize=False)
        budget = Budget(program, 50)
        inline_pass(program, config, budget, report := HLOReport(), 0)
        from repro.core import program_cost

        assert program_cost(program) <= budget.limit * 1.001

    def test_always_inline_bypasses_budget(self):
        program = build(
            [
                (
                    "m",
                    """
                    inline int must(int x) { return x * 2 + 1; }
                    int main() { return must(3); }
                    """,
                )
            ]
        )
        config = HLOConfig(budget_percent=0)
        budget = Budget(program, 0)
        report = HLOReport()
        performed = inline_pass(program, config, budget, report, 0)
        assert performed == 1

    def test_bottom_up_cascade(self):
        # A -> B -> C: after the pass, A should contain C's work too,
        # because B <- C is performed before A <- B.
        program = build(
            [
                (
                    "m",
                    """
                    int c_fn(int x) { return x + 1; }
                    int b_fn(int x) { return c_fn(x) * 2; }
                    int a_fn(int x) { return b_fn(x) - 3; }
                    int main() { print_int(a_fn(10)); return 0; }
                    """,
                )
            ]
        )
        before = run_program(program).behavior()
        config = HLOConfig(budget_percent=2000)
        budget = Budget(program, 2000)
        report = HLOReport()
        inline_pass(program, config, budget, report, 3)  # final stage: full budget
        verify_program(program)
        assert run_program(program).behavior() == before
        # main absorbed the chain: no calls to a_fn/b_fn/c_fn remain in main.
        callees = {
            i.callee
            for _b, _i, i in program.proc("main").call_sites()
            if isinstance(i, Call)
        }
        assert "a_fn" not in callees

    def test_stop_after_limits_transforms(self):
        program = build(SIMPLE)
        config = HLOConfig(budget_percent=2000, stop_after=1)
        budget = Budget(program, 2000)
        report = HLOReport()
        inline_pass(program, config, budget, report, 3)
        assert report.inlines == 1
