"""Legality screens (Section 2.3/2.4): every restriction class."""

import pytest

from repro.analysis import CallGraph
from repro.core import clone_blocker, inline_blocker
from repro.frontend import compile_program


def site_for(sources, caller, callee_fragment):
    program = compile_program(sources)
    graph = CallGraph(program)
    for site in graph.sites:
        target = getattr(site.instr, "callee", "")
        if site.caller.name == caller and callee_fragment in str(target):
            return program, site
    for site in graph.sites:  # indirect sites have no callee name
        if site.caller.name == caller and site.category == "indirect":
            return program, site
    raise AssertionError("site not found")


ONE = [
    (
        "m",
        """
        int plain(int x) { return x + 1; }
        noinline int stubborn(int x) { return x; }
        noclone int unique(int x) { return x; }
        int варargs(int x); // placeholder replaced below
        int variadic(int x, ...) { return x + va_count(); }
        reassoc float fastmath(float x) { return x * 2.0; }
        int dyn(int n) { int p = alloca(n); p[0] = n; return p[0]; }
        int main() {
          int f = &plain;
          print_int(plain(1));
          print_int(stubborn(2));
          print_int(unique(3));
          print_int(variadic(4, 5));
          print_int(dyn(2));
          print_int(f(6));
          print_flt(fastmath(1.0));
          return 0;
        }
        """.replace("int варargs(int x); // placeholder replaced below", ""),
    )
]


class TestInlineBlockers:
    def test_plain_site_allowed(self):
        program, site = site_for(ONE, "main", "plain")
        assert inline_blocker(program, site) is None

    def test_noinline_directive(self):
        program, site = site_for(ONE, "main", "stubborn")
        assert "noinline" in inline_blocker(program, site)

    def test_varargs_callee(self):
        program, site = site_for(ONE, "main", "variadic")
        assert "variable arguments" in inline_blocker(program, site)

    def test_dynamic_alloca(self):
        program, site = site_for(ONE, "main", "dyn")
        assert "alloca" in inline_blocker(program, site)

    def test_indirect_site(self):
        program, site = site_for(ONE, "main", "__indirect__")
        assert "indirect" in inline_blocker(program, site)

    def test_external_site(self):
        program, site = site_for(ONE, "main", "print_int")
        assert "external" in inline_blocker(program, site)

    def test_fp_reassoc_disagreement(self):
        program, site = site_for(ONE, "main", "fastmath")
        blocked = inline_blocker(program, site)
        assert blocked is not None and "reassociation" in blocked

    def test_fp_reassoc_agreement_allowed(self):
        sources = [
            (
                "m",
                """
                reassoc float inner(float x) { return x * 2.0; }
                reassoc float outer(float x) { return inner(x) + 1.0; }
                int main() { print_flt(outer(1.0)); return 0; }
                """,
            )
        ]
        program, site = site_for(sources, "outer", "inner")
        assert inline_blocker(program, site) is None

    def test_cross_module_scope_restriction(self):
        sources = [
            ("lib", "int f(int x) { return x; }"),
            ("main", "extern int f(int x); int main() { return f(1); }"),
        ]
        program, site = site_for(sources, "main", "f")
        assert inline_blocker(program, site, cross_module=True) is None
        assert "scope" in inline_blocker(program, site, cross_module=False)

    def test_recursive_toggle(self):
        sources = [
            ("m", "int r(int n) { if (n <= 0) return 0; return r(n - 1); } int main() { return r(3); }")
        ]
        program, site = site_for(sources, "r", "r")
        assert inline_blocker(program, site, inline_recursive=True) is None
        assert inline_blocker(program, site, inline_recursive=False) is not None


class TestCloneBlockers:
    def test_plain_site_allowed(self):
        program, site = site_for(ONE, "main", "plain")
        assert clone_blocker(program, site) is None

    def test_noclone_directive(self):
        program, site = site_for(ONE, "main", "unique")
        assert "noclone" in clone_blocker(program, site)

    def test_noinline_does_not_block_cloning(self):
        program, site = site_for(ONE, "main", "stubborn")
        assert clone_blocker(program, site) is None

    def test_varargs_blocked(self):
        program, site = site_for(ONE, "main", "variadic")
        assert clone_blocker(program, site) is not None

    def test_dynamic_alloca_ok_for_cloning(self):
        # Cloning copies the body verbatim: alloca stays in its frame.
        program, site = site_for(ONE, "main", "dyn")
        assert clone_blocker(program, site) is None

    def test_main_not_clonable(self):
        sources = [("m", "int main() { return main(); }")]
        program, site = site_for(sources, "main", "main")
        assert "entry point" in clone_blocker(program, site)

    def test_indirect_blocked(self):
        program, site = site_for(ONE, "main", "__indirect__")
        assert clone_blocker(program, site) is not None
