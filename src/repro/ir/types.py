"""Type system for the ucode-like IR.

The paper's ucode is a mid-level typed intermediate code.  We model the
small type universe the workloads need: 64-bit signed integers (which
double as addresses, as in the HP calling convention where pointers are
integer registers), IEEE doubles, and void for procedures without a
return value.  Function signatures carry parameter types, a return type,
and a varargs flag; signature agreement is one of the inline/clone
legality tests in Section 2.3/2.4 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Type(enum.Enum):
    """Scalar value types."""

    INT = "int"
    FLT = "float"
    VOID = "void"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Signature:
    """A procedure signature: parameter types, return type, varargs flag."""

    params: Tuple[Type, ...]
    ret: Type = Type.INT
    varargs: bool = False

    def arity(self) -> int:
        return len(self.params)

    def accepts_call(self, arg_types: Tuple[Type, ...]) -> bool:
        """True when a call passing ``arg_types`` matches this signature.

        A varargs callee accepts any suffix beyond the fixed parameters;
        otherwise arity and per-position types must agree exactly.  The
        paper calls a failure here a "gross type mismatch" and refuses to
        inline or clone such sites (to preserve the behaviour of even
        semantically incorrect programs).
        """
        if self.varargs:
            if len(arg_types) < len(self.params):
                return False
            fixed = arg_types[: len(self.params)]
        else:
            if len(arg_types) != len(self.params):
                return False
            fixed = arg_types
        return all(a == p for a, p in zip(fixed, self.params))

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.varargs:
            parts.append("...")
        return "({}) -> {}".format(", ".join(parts), self.ret)


def parse_type(text: str) -> Type:
    """Parse a scalar type name as printed by :func:`Type.__str__`."""
    for ty in Type:
        if ty.value == text:
            return ty
    raise ValueError("unknown type: {!r}".format(text))
