"""Command-line driver: the ``cc``-like front door to the toolchain.

Subcommands:

``compile``
    Compile minic source files; print the optimized IR or write isom
    files (the intermediate-code object files of Section 2.1).
``run``
    Compile and execute, optionally on the PA8000 machine model.
``train``
    The instrumenting compile + training run; writes a profile database.
    ``--sample-rate N`` switches collection to the sampling profiler.
``report``
    Run HLO at a chosen scope and print the transform report.
``bench``
    Compare the four Table 1 scope configurations on a suite workload.
``bench-sharded``
    Interpreter throughput: fan a workload's input set out one process
    per chunk and merge the Result counters (``repro.bench.sharded``).
``profile``
    Lifecycle management for profile databases: ``sample`` (collect a
    sampled, context-sensitive profile), ``merge`` (weighted / decayed
    multi-run combination), ``report`` (coverage, confidence,
    staleness), ``check`` (health gate with per-procedure staleness and
    optional salvage remapping), ``flame`` (run once with the runtime
    profiler attached and write a guest flamegraph).
``fleet``
    The continuous-profiling fleet loop: ``run`` (collect / rebuild /
    canary / hot-swap under an optional fault plan, optionally sending
    rebuilds to a ``--build-server`` daemon) and ``explain`` (same loop
    with the fleet decision ledger on — why every shard was ACKed,
    NACKed, or quarantined, and what each round decided).
``serve``
    The long-running build daemon (docs/serving.md): one warm
    toolchain — module cache, worker pool, finished-build LRU — behind
    a CRC32-framed JSON socket protocol, with in-flight dedupe,
    bounded-queue load shedding, and drain on SIGTERM.
``bench-serve``
    Load-generate a daemon with hundreds of concurrent clients and
    gate latency percentiles, dedupe, and artifact byte-identity
    (``repro.bench.serve``).

Module names come from file stems; inputs are comma-separated integers.

    python -m repro run prog.mc --inputs 5,10 --simulate
    python -m repro train prog.mc --inputs 5 -o prog.profdb
    python -m repro report prog.mc --scope cp --profile prog.profdb
    python -m repro profile sample prog.mc --inputs 5 -o prog.profdb
    python -m repro profile check prog.profdb prog.mc
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from .core.config import HLOConfig
from .core.hlo import run_hlo
from .frontend.driver import compile_program
from .interp.interpreter import DEFAULT_ENGINE, ENGINES, run_program
from .ir.printer import print_program
from .linker.isom import write_isom
from .linker.toolchain import SCOPES, BuildDiagnostics, Toolchain, scope_flags
from .machine.pa8000 import simulate
from .obs import (
    NULL_OBSERVER,
    BuildObserver,
    CliLogger,
    FleetLedger,
    InliningLedger,
    MetricsRegistry,
    RuntimeProfiler,
    Tracer,
    VERBOSITY_LEVELS,
)
from .obs.metrics import collect_build_metrics, collect_runtime_metrics
from .obs.runtime import DEFAULT_FLAME_RATE
from .profile.annotate import annotate_program
from .profile.database import ProfileDatabase
from .profile.pgo import train
from .resilience.errors import ProfileFormatError
from .sampling import (
    DEFAULT_CONTEXT_DEPTH,
    DEFAULT_MIN_MATCH,
    DEFAULT_SAMPLE_RATE,
    MIN_PROFILE_CONFIDENCE,
    assess_staleness,
    format_quality_report,
    merge_profiles,
    quality_report,
    remap_database,
    sample_train,
)


def _read_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    sources = []
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        with open(path) as handle:
            sources.append((name, handle.read()))
    return sources


def _parse_inputs(text: Optional[str]) -> List[int]:
    if not text:
        return []
    return [int(part) for part in text.split(",") if part.strip()]


def _config_from_args(args: argparse.Namespace) -> HLOConfig:
    config = HLOConfig(
        budget_percent=args.budget,
        pass_limit=args.passes,
        enable_outlining=getattr(args, "outline", False),
        strict=getattr(args, "strict", False),
        verify_each_pass=getattr(args, "verify_each_pass", False),
        strategy=getattr(args, "strategy", "global"),
    )
    if getattr(args, "no_inline", False):
        config = config.clone_only()
    if getattr(args, "no_clone", False):
        config = config.inline_only() if not getattr(args, "no_inline", False) else config.neither()
    return config


def _logger_from_args(args: argparse.Namespace) -> CliLogger:
    return CliLogger(getattr(args, "verbosity", "normal"))


def _observer_from_args(args: argparse.Namespace) -> BuildObserver:
    """Build the observability bundle the flags ask for.

    Each sink is live only when requested, so an un-flagged run keeps
    the :data:`NULL_OBSERVER` fast path end to end.
    """
    want_trace = bool(getattr(args, "trace_out", None))
    # --series-out forces the metrics registry live: the series bank
    # rides inside it and is sampled only when metrics are enabled.
    want_metrics = bool(
        getattr(args, "metrics_out", None) or getattr(args, "series_out", None)
    )
    want_ledger = bool(
        getattr(args, "explain_inlining", False)
        or getattr(args, "explain_inlining_out", None)
    )
    want_fleet = bool(getattr(args, "fleet_ledger_out", None))
    if not (want_trace or want_metrics or want_ledger or want_fleet):
        return NULL_OBSERVER
    return BuildObserver(
        tracer=Tracer() if want_trace else None,
        metrics=MetricsRegistry() if want_metrics else None,
        ledger=InliningLedger() if want_ledger else None,
        fleet=FleetLedger() if want_fleet else None,
    )


def _emit_observability(
    args: argparse.Namespace, obs: BuildObserver, log: CliLogger
) -> None:
    """Write out whatever sinks the flags requested."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out and obs.tracer.enabled:
        obs.tracer.write(trace_out)
        log.debug("wrote trace ({} events) to {}".format(
            len(obs.tracer.events()), trace_out))
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out and obs.metrics.enabled:
        obs.metrics.write(metrics_out)
        log.debug("wrote metrics ({} series) to {}".format(
            len(obs.metrics.names()), metrics_out))
    ledger_out = getattr(args, "explain_inlining_out", None)
    if ledger_out and obs.ledger.enabled:
        obs.ledger.write_jsonl(ledger_out)
        log.debug("wrote inlining ledger ({} decisions) to {}".format(
            obs.ledger.considered, ledger_out))
    if getattr(args, "explain_inlining", False) and obs.ledger.enabled:
        print(obs.ledger.format_text())
    series_out = getattr(args, "series_out", None)
    if series_out and obs.metrics.enabled:
        obs.metrics.series.write_jsonl(series_out)
        log.debug("wrote time series ({} series) to {}".format(
            len(obs.metrics.series), series_out))
    fleet_ledger_out = getattr(args, "fleet_ledger_out", None)
    if fleet_ledger_out and obs.fleet.enabled:
        obs.fleet.write_jsonl(fleet_ledger_out)
        log.debug("wrote fleet ledger ({} entries) to {}".format(
            obs.fleet.total, fleet_ledger_out))


def _compile_cli(
    args: argparse.Namespace, diagnostics: BuildDiagnostics,
    obs: BuildObserver = NULL_OBSERVER,
):
    """Compile ``args.files``, honoring ``--jobs`` / ``--cache-dir``.

    Without either flag this is the legacy direct front-end path.  With
    either, the parallel/incremental pipeline runs instead: per-module
    compiles fan out over worker processes, unchanged modules come from
    the content-addressed cache, and every module routes through isom
    text so the output is identical for any worker count.
    """
    sources = _read_sources(args.files)
    jobs = getattr(args, "jobs", None)
    cache_dir = getattr(args, "cache_dir", None)
    if jobs is None and cache_dir is None:
        with obs.tracer.span("frontend", cat="frontend"):
            return compile_program(sources)

    from .parallel.cache import ModuleCache
    from .parallel.executor import compile_sources

    cross, use_profile = scope_flags(args.scope)
    cfg = _config_from_args(args).with_scope(cross, use_profile)
    cache = ModuleCache(cache_dir, max_mb=getattr(args, "cache_max_mb", None))
    mark = cache.stats.snapshot()
    with obs.tracer.span("frontend", cat="frontend"):
        program, stats = compile_sources(
            sources,
            jobs=max(1, jobs if jobs is not None else 1),
            cache=cache,
            fingerprint=cfg.fingerprint(),
            warn=diagnostics.warn,
            observer=obs,
            timeout=getattr(args, "compile_timeout", None),
        )
    hits, misses, invalidations, _stores = cache.stats.since(mark)
    diagnostics.record_cache(hits, misses, invalidations)
    diagnostics.cache_size_evictions += cache.stats.size_evictions
    diagnostics.parallel_jobs = stats.jobs
    diagnostics.modules_compiled += stats.compiled
    diagnostics.modules_from_cache += stats.from_cache
    diagnostics.compile_timeouts += stats.compile_timeouts
    diagnostics.worker_errors.extend(stats.worker_errors)
    if stats.serial_fallback:
        diagnostics.parallel_fallbacks.append(
            stats.fallback_reason or "worker pool unavailable"
        )
    return program


def _load_profile(
    args: argparse.Namespace, diagnostics: BuildDiagnostics
) -> Optional[ProfileDatabase]:
    """Load ``--profile``, degrading to static estimates on bad input.

    A corrupt, truncated, version-skewed, or missing database is a
    warning plus fallback — unless ``--strict``, which makes it fatal.
    """
    path = getattr(args, "profile", None)
    if not path:
        return None
    try:
        db = ProfileDatabase.load(path)
    except (ProfileFormatError, OSError) as exc:
        if getattr(args, "strict", False):
            raise SystemExit(
                "--strict: profile database {!r} unusable: {}".format(path, exc)
            )
        diagnostics.profile_fallback = str(exc)
        diagnostics.warn(
            "profile database {!r} unusable ({}); "
            "using static frequency estimates".format(path, exc)
        )
        return None
    if db.sampled:
        confidence = db.overall_confidence()
        if confidence < MIN_PROFILE_CONFIDENCE:
            # The low-confidence rung of the degradation ladder
            # (docs/resilience.md): thin sampled evidence is noise, and
            # static frequency estimation beats amplified noise.
            reason = (
                "low-confidence sampled profile {!r}: confidence {:.2f} "
                "below minimum {:.2f}".format(
                    path, confidence, MIN_PROFILE_CONFIDENCE
                )
            )
            if getattr(args, "strict", False):
                raise SystemExit("--strict: " + reason)
            diagnostics.profile_fallback = reason
            diagnostics.warn(reason + "; using static frequency estimates")
            return None
    return db


def _hlo_for_scope(
    program,
    args: argparse.Namespace,
    profile: Optional[ProfileDatabase],
    diagnostics: Optional[BuildDiagnostics] = None,
    obs: BuildObserver = NULL_OBSERVER,
):
    cross, use_profile = scope_flags(args.scope)
    config = _config_from_args(args).with_scope(cross, use_profile)
    site_counts = None
    context_counts = None
    if use_profile:
        if profile is None and not (diagnostics and diagnostics.profile_fallback):
            raise SystemExit(
                "scope {!r} needs --profile <db> (run `train` first)".format(args.scope)
            )
        if profile is not None:
            annotate_program(program, profile)
            site_counts = profile.site_counts
            context_counts = profile.context_view()
    with obs.tracer.span("hlo", cat="hlo"):
        return run_hlo(
            program, config, site_counts=site_counts, observer=obs,
            context_counts=context_counts,
        )


def _finish(
    args: argparse.Namespace,
    report,
    diagnostics: BuildDiagnostics,
    log: Optional[CliLogger] = None,
    obs: BuildObserver = NULL_OBSERVER,
) -> int:
    """Print warnings + the one-line degradation summary; pick exit code."""
    log = log if log is not None else _logger_from_args(args)
    for warning in diagnostics.warnings:
        log.warn(warning)
    degraded = diagnostics.degraded or (report is not None and report.degraded)
    if degraded or diagnostics.cache_enabled or diagnostics.parallel_jobs > 1:
        log.info(diagnostics.summary(report))
    if obs.metrics.enabled:
        collect_build_metrics(diagnostics, report, registry=obs.metrics)
    _emit_observability(args, obs, log)
    if degraded and getattr(args, "strict", False):
        return 1
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    diagnostics = BuildDiagnostics()
    obs = _observer_from_args(args)
    with obs.tracer.span("build", command="compile"):
        program = _compile_cli(args, diagnostics, obs)
        profile = _load_profile(args, diagnostics)
        report = None
        if not args.no_hlo:
            report = _hlo_for_scope(program, args, profile, diagnostics, obs)
    if args.isom_dir:
        for module in program.modules.values():
            path = write_isom(module, args.isom_dir)
            print("wrote", path)
    else:
        print(print_program(program))
    return _finish(args, report, diagnostics, obs=obs)


def cmd_run(args: argparse.Namespace) -> int:
    diagnostics = BuildDiagnostics()
    obs = _observer_from_args(args)
    log = _logger_from_args(args)
    with obs.tracer.span("build", command="run"):
        program = _compile_cli(args, diagnostics, obs)
        profile = _load_profile(args, diagnostics)
        report = None
        if not args.no_hlo:
            report = _hlo_for_scope(program, args, profile, diagnostics, obs)
    inputs = _parse_inputs(args.inputs)
    flame_out = getattr(args, "flame_out", None)
    profiler = None
    if flame_out:
        if args.simulate:
            # Both want to be the run's one event sink; refusing beats
            # silently profiling a different execution than asked for.
            raise SystemExit(
                "--flame-out and --simulate are mutually exclusive "
                "(each needs to be the run's event sink)"
            )
        profiler = RuntimeProfiler(
            rate=getattr(args, "flame_rate", DEFAULT_FLAME_RATE),
            seed=getattr(args, "flame_seed", 0),
        )
    with obs.tracer.span("execute", cat="machine", simulate=bool(args.simulate)):
        engine = getattr(args, "engine", DEFAULT_ENGINE)
        if args.simulate:
            metrics, result = simulate(program, inputs, engine=engine)
        else:
            metrics, result = None, run_program(
                program, inputs, sink=profiler, engine=engine
            )
    for value in result.output:
        print(value)
    if profiler is not None:
        fmt = profiler.write(flame_out)
        log.info(
            "# flame: {} samples / {} events, {} contexts -> {} ({})".format(
                profiler.samples, profiler.events,
                len(profiler.stack_samples), flame_out, fmt,
            )
        )
        if obs.metrics.enabled:
            collect_runtime_metrics(profiler, registry=obs.metrics)
    if metrics is not None:
        log.info(
            "# cycles={:.0f} instructions={} cpi={:.3f} "
            "icache_mr={:.4f} dcache_mr={:.4f} branch_mr={:.4f}".format(
                metrics.cycles,
                metrics.instructions,
                metrics.cpi,
                metrics.icache_miss_rate,
                metrics.dcache_miss_rate,
                metrics.branch_miss_rate,
            )
        )
    degraded_exit = _finish(args, report, diagnostics, log, obs)
    return degraded_exit or (result.exit_code & 0x7F)


def _collect_runs(inputs: Optional[Sequence[str]]) -> List[List[int]]:
    """Training vectors from any mix of repeated ``--inputs`` flags and
    ``;``-separated runs inside one flag; no flag means one empty run."""
    chunks: List[str] = []
    for entry in inputs or [""]:
        chunks.extend(entry.split(";"))
    return [_parse_inputs(chunk) for chunk in chunks]


def cmd_train(args: argparse.Namespace) -> int:
    sources = _read_sources(args.files)
    runs = _collect_runs(args.inputs)
    engine = getattr(args, "engine", DEFAULT_ENGINE)
    if args.sample_rate:
        db = sample_train(
            sources,
            runs,
            rate=args.sample_rate,
            context_depth=args.context_depth,
            seed=args.seed,
            engine=engine,
        )
        db.save(args.output)
        print(
            "sampled {} run(s), {} steps ({} samples, confidence {:.1%}); "
            "wrote {}".format(
                db.training_runs, db.training_steps, db.sample_count,
                db.overall_confidence(), args.output,
            )
        )
        return 0
    db = train(sources, runs, engine=engine)
    db.save(args.output)
    print(
        "trained {} run(s), {} steps; wrote {}".format(
            db.training_runs, db.training_steps, args.output
        )
    )
    return 0


def _load_profile_arg(path: str) -> ProfileDatabase:
    try:
        return ProfileDatabase.load(path)
    except (ProfileFormatError, OSError) as exc:
        raise SystemExit("profile database {!r} unusable: {}".format(path, exc))


def _profile_sources(args: argparse.Namespace, required: bool):
    """(sources, default training inputs) for a profile subcommand.

    Sources come from positional files or ``--workload NAME`` (the
    bench suite's programs — what CI uses so it needs no checked-in
    source files).
    """
    workload_name = getattr(args, "workload", None)
    if workload_name:
        from .workloads.suite import get_workload, workload_names

        try:
            workload = get_workload(workload_name)
        except KeyError:
            raise SystemExit(
                "unknown workload {!r}; available: {}".format(
                    workload_name, ", ".join(workload_names())
                )
            )
        return list(workload.sources), [list(t) for t in workload.train_inputs]
    if getattr(args, "files", None):
        return _read_sources(args.files), None
    if required:
        raise SystemExit("give minic source files or --workload NAME")
    return None, None


def cmd_profile_sample(args: argparse.Namespace) -> int:
    sources, default_runs = _profile_sources(args, required=True)
    runs = _collect_runs(args.inputs) if args.inputs else (default_runs or [[]])
    db = sample_train(
        sources,
        runs,
        rate=args.rate,
        context_depth=args.context_depth,
        seed=args.seed,
        engine=getattr(args, "engine", DEFAULT_ENGINE),
    )
    db.save(args.output)
    print(
        "sampled {} run(s): {} samples / {} events (rate 1/{:.0f}, k={}); "
        "confidence {:.1%}; wrote {}".format(
            db.training_runs, db.sample_count, db.sampled_events,
            db.sample_rate, db.context_depth, db.overall_confidence(),
            args.output,
        )
    )
    return 0


def cmd_profile_flame(args: argparse.Namespace) -> int:
    """Run once with the runtime profiler attached; write a flamegraph.

    The program is the plain front-end compile (no HLO): the
    flamegraph shows the guest's *logical* call structure, which
    inlining would flatten away.
    """
    workload_name = getattr(args, "workload", None)
    default_input: Optional[List[int]] = None
    if workload_name:
        from .workloads.suite import get_workload, workload_names

        try:
            workload = get_workload(workload_name)
        except KeyError:
            raise SystemExit(
                "unknown workload {!r}; available: {}".format(
                    workload_name, ", ".join(workload_names())
                )
            )
        sources = list(workload.sources)
        default_input = list(workload.ref_input)
    elif getattr(args, "files", None):
        sources = _read_sources(args.files)
    else:
        raise SystemExit("give minic source files or --workload NAME")
    inputs = (
        _parse_inputs(args.inputs) if args.inputs else (default_input or [])
    )
    program = compile_program(sources)
    profiler = RuntimeProfiler(rate=args.rate, seed=args.seed)
    run_program(
        program, inputs, sink=profiler,
        engine=getattr(args, "engine", DEFAULT_ENGINE),
    )
    fmt = profiler.write(args.output)
    print(profiler.format_text(limit=args.top))
    print("wrote {} ({})".format(args.output, fmt))
    return 0


def cmd_profile_merge(args: argparse.Namespace) -> int:
    databases = [_load_profile_arg(path) for path in args.databases]
    weights = None
    if args.weights:
        try:
            weights = [float(part) for part in args.weights.split(",")]
        except ValueError:
            raise SystemExit("--weights must be comma-separated numbers")
        if len(weights) != len(databases):
            raise SystemExit(
                "--weights needs one weight per database "
                "({} given, {} databases)".format(len(weights), len(databases))
            )
    try:
        merged = merge_profiles(databases, weights=weights, decay=args.decay)
    except ValueError as exc:
        raise SystemExit(str(exc))
    merged.save(args.output)
    print(
        "merged {} database(s) -> {} blocks, {} run(s); wrote {}".format(
            len(databases), len(merged.block_counts), merged.training_runs,
            args.output,
        )
    )
    return 0


def cmd_profile_report(args: argparse.Namespace) -> int:
    db = _load_profile_arg(args.database)
    sources, _runs = _profile_sources(args, required=False)
    program = compile_program(sources) if sources is not None else None
    payload = quality_report(db, program)
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_quality_report(payload))
    return 0


def cmd_profile_check(args: argparse.Namespace) -> int:
    """Health-gate a database against the current sources; exit 1 when
    it should not feed a build (stale procedures or thin evidence)."""
    db = _load_profile_arg(args.database)
    sources, _runs = _profile_sources(args, required=True)
    program = compile_program(sources)
    payload = quality_report(db, program)
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_quality_report(payload))

    problems = []
    staleness = assess_staleness(db, program)
    if staleness.stale:
        # Fingerprint drift is a failure even when every recorded label
        # still resolves (a same-shape edit): the counts describe code
        # that no longer exists.  --remap salvages what still matches.
        problems.append(
            "stale procedure(s), fingerprint drift: "
            + ", ".join(sorted(staleness.stale))
        )
    if not staleness.healthy(args.min_match):
        offenders = [
            name
            for name, entry in sorted(staleness.procs.items())
            if entry.match_ratio < args.min_match
        ]
        problems.append(
            "stale procedures below match ratio {:.2f}: {}".format(
                args.min_match, ", ".join(offenders)
            )
        )
    if db.sampled and db.overall_confidence() < args.min_confidence:
        problems.append(
            "sampled confidence {:.2f} below minimum {:.2f}".format(
                db.overall_confidence(), args.min_confidence
            )
        )

    if args.remap:
        remapped, report = remap_database(db, program)
        remapped.save(args.remap)
        print(
            "remapped: kept {}/{} block counts "
            "({} fresh, {} stale, {} missing proc(s)); wrote {}".format(
                len(remapped.block_counts), len(db.block_counts),
                len(report.fresh), len(report.stale), len(report.missing),
                args.remap,
            )
        )

    if problems:
        for problem in problems:
            print("profile check: " + problem, file=sys.stderr)
        return 1
    print("profile check: OK")
    return 0


def _int_list(values) -> tuple:
    return tuple(int(v) for v in values or ())


def _fleet_loop_from_args(args: argparse.Namespace, obs: BuildObserver):
    """Build the :class:`FleetLoop` that ``fleet run`` / ``fleet
    explain`` share: same workload, fault plan, and config flags."""
    from .fleet import FleetConfig, FleetLoop
    from .resilience.faults import SHARD_FAULTS, FaultInjector
    from .workloads.suite import get_workload, workload_names

    try:
        workload = get_workload(args.workload)
    except KeyError:
        raise SystemExit(
            "unknown workload {!r}; available: {}".format(
                args.workload, ", ".join(workload_names())
            )
        )
    faults: Tuple[str, ...] = tuple(
        f for f in (args.faults.split(",") if args.faults else []) if f
    )
    if not faults and args.fault_rate > 0:
        faults = SHARD_FAULTS
    injector = None
    plan_active = bool(
        faults or args.wal_tail or args.kill_mid_swap
        or args.canary_trap or args.flap
    )
    if plan_active:
        try:
            injector = FaultInjector(
                seed=args.seed,
                shard_faults=faults,
                shard_fault_rate=args.fault_rate,
                wal_tail_rounds=_int_list(args.wal_tail),
                kill_mid_swap_epochs=_int_list(args.kill_mid_swap),
                canary_trap_epochs=_int_list(args.canary_trap),
                flap_sources=tuple(args.flap or ()),
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    config = FleetConfig(
        rounds=args.rounds,
        rate=args.rate,
        seed=args.seed,
        engine=getattr(args, "engine", DEFAULT_ENGINE),
        restart_collector_rounds=_int_list(args.restart_collector),
        max_wall_s=args.max_wall,
        build_server=getattr(args, "build_server", None),
    )
    return FleetLoop(
        list(workload.sources),
        [list(t) for t in workload.train_inputs],
        list(workload.ref_input),
        config=config,
        injector=injector,
        observer=obs,
        spool_path=args.spool,
    )


def cmd_fleet_run(args: argparse.Namespace) -> int:
    """Run the continuous-profiling fleet loop on a suite workload."""
    import json

    obs = _observer_from_args(args)
    log = _logger_from_args(args)
    loop = _fleet_loop_from_args(args, obs)
    report = loop.run()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            "fleet: {} round(s), final build {}, swaps {}, "
            "rollbacks {} (quarantined epochs: {})".format(
                report.rounds_run, report.final_build, report.swaps,
                report.rollbacks,
                ", ".join(map(str, report.quarantined_epochs)) or "none",
            )
        )
        print(
            "fleet: shards sent {}, accepted {}, quarantined {}, "
            "retried {}, breaker opens {}".format(
                report.shards_sent, report.shards_accepted,
                report.shards_quarantined, report.shards_retried,
                report.breaker_opens,
            )
        )
        print(
            "fleet: wal appended {}, truncations {}, collector restarts {}, "
            "instance restarts {}".format(
                report.wal_appended, report.wal_truncations,
                report.collector_restarts, report.instance_restarts,
            )
        )
        for line in report.history:
            print("fleet: " + line)
        if report.convergence_jaccard is not None:
            print(
                "fleet: convergence jaccard {} "
                "({} exact vs {} fleet decisions)".format(
                    report.convergence_jaccard, report.exact_decisions,
                    report.fleet_decisions,
                )
            )
    _emit_observability(args, obs, log)
    if obs.fleet.enabled and not _fleet_ledger_complete(obs, report):
        return 1
    if args.assert_convergence and not report.converged:
        print(
            "fleet: convergence assertion failed (jaccard {})".format(
                report.convergence_jaccard
            ),
            file=sys.stderr,
        )
        return 1
    return 0


def _fleet_ledger_complete(obs: BuildObserver, report) -> bool:
    """Check the completeness invariant: every verdict the collector
    issued and every round the controller considered is in the ledger.
    The counts on the right come from the loop, tallied independently
    of the ledger appends."""
    ok = (
        obs.fleet.verdicts == report.collector_verdicts
        and obs.fleet.decisions == report.controller_decisions
    )
    if not ok:
        print(
            "fleet: ledger INCOMPLETE: {} verdict(s) ledgered vs {} "
            "issued; {} decision(s) ledgered vs {} rounds considered".format(
                obs.fleet.verdicts, report.collector_verdicts,
                obs.fleet.decisions, report.controller_decisions,
            ),
            file=sys.stderr,
        )
    return ok


def cmd_fleet_explain(args: argparse.Namespace) -> int:
    """Run the fleet loop with the decision ledger on and report it.

    Exits 1 unless the ledger accounts for 100% of collector verdicts
    and controller decisions (the completeness invariant CI gates on).
    """
    want_trace = bool(getattr(args, "trace_out", None))
    want_metrics = bool(
        getattr(args, "metrics_out", None) or getattr(args, "series_out", None)
    )
    # The whole point of `explain` is the fleet ledger: always live
    # here, whatever the other observability flags say.
    obs = BuildObserver(
        tracer=Tracer() if want_trace else None,
        metrics=MetricsRegistry() if want_metrics else None,
        fleet=FleetLedger(),
    )
    log = _logger_from_args(args)
    loop = _fleet_loop_from_args(args, obs)
    report = loop.run()
    ledger = obs.fleet
    if args.json:
        sys.stdout.write(ledger.to_jsonl())
    else:
        print(ledger.format_text(limit=args.limit))
        print(
            "completeness: {}/{} collector verdicts, {}/{} controller "
            "decisions ledgered".format(
                ledger.verdicts, report.collector_verdicts,
                ledger.decisions, report.controller_decisions,
            )
        )
    _emit_observability(args, obs, log)
    if not _fleet_ledger_complete(obs, report):
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived build daemon until SIGTERM/SIGINT drains it.

    Exit codes: 0 after a clean drain (including one triggered by a
    ``shutdown`` request), 130 on an interrupt the event loop could not
    convert into a drain.
    """
    import asyncio
    import json

    from .serve.server import ReproServer
    from .serve.state import ServerState

    obs = _observer_from_args(args)
    log = _logger_from_args(args)
    state = ServerState(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_max_mb=getattr(args, "cache_max_mb", None),
        engine=args.engine,
        compile_timeout=args.compile_timeout,
        observer=obs,
        results_capacity=args.results_capacity,
    )
    server = ReproServer(
        state,
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        max_pending=args.max_pending,
        request_timeout=args.timeout,
        observer=obs,
    )

    async def _serve() -> dict:
        await server.start()
        server.install_signal_handlers()
        # The line CI (and any parent process) scrapes for the port.
        print(
            "repro serve listening on {}:{}".format(server.host, server.port),
            flush=True,
        )
        return await server.serve_until_shutdown()

    try:
        snapshot = asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix loops only
        return 130
    log.info(
        "serve: drained after {} request(s) over {} connection(s) "
        "({} build(s), {} warm hit(s), {} deduped)".format(
            snapshot["requests"], snapshot["connections"],
            snapshot["state"]["builds"], snapshot["state"]["result_hits"],
            snapshot["scheduler"]["dedupe_hits"],
        )
    )
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        log.debug("wrote stats snapshot to {}".format(args.stats_out))
    _emit_observability(args, obs, log)
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from .bench.serve import main as serve_bench_main

    argv: List[str] = ["--clients", str(args.clients), "--scope", args.scope]
    if args.workloads:
        argv += ["--workloads", args.workloads]
    argv += ["--engine", getattr(args, "engine", DEFAULT_ENGINE)]
    if args.connect:
        argv += ["--connect", args.connect]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    argv += ["--concurrency", str(args.concurrency)]
    argv += ["--max-pending", str(args.max_pending)]
    argv += ["--timeout", str(args.timeout)]
    if args.output:
        argv += ["--output", args.output]
    if args.json:
        argv.append("--json")
    return serve_bench_main(argv)


def cmd_bench_scale(args: argparse.Namespace) -> int:
    from .bench.scale import main as scale_main

    argv: List[str] = []
    for flag in ("small", "mega", "funcs_per_module", "window", "seed"):
        value = getattr(args, flag, None)
        if value is not None:
            argv += ["--" + flag.replace("_", "-"), str(value)]
    for flag in ("parity_workloads", "output", "merge_into", "summary_out"):
        value = getattr(args, flag, None)
        if value:
            argv += ["--" + flag.replace("_", "-"), value]
    if getattr(args, "no_timing_gates", False):
        argv.append("--no-timing-gates")
    return scale_main(argv)


def cmd_report(args: argparse.Namespace) -> int:
    diagnostics = BuildDiagnostics()
    obs = _observer_from_args(args)
    with obs.tracer.span("build", command="report"):
        program = _compile_cli(args, diagnostics, obs)
        profile = _load_profile(args, diagnostics)
        report = _hlo_for_scope(program, args, profile, diagnostics, obs)
    print(report)
    print("transform events:")
    for event in report.events:
        print(
            "  pass {} {:14s} @{} -> @{} (site {})".format(
                event.pass_number, event.kind, event.caller, event.callee, event.site_id
            )
        )
    if report.deleted_procs:
        print("deleted:", ", ".join(report.deleted_procs))
    if report.promoted_symbols:
        print("promoted:", ", ".join(report.promoted_symbols))
    if report.pass_failures:
        print("pass failures:")
        for failure in report.pass_failures:
            print("  " + str(failure))
    return _finish(args, report, diagnostics, obs=obs)


def cmd_bench_sharded(args: argparse.Namespace) -> int:
    from .bench.sharded import main as sharded_main

    argv: List[str] = []
    if args.workloads:
        argv += ["--workloads", args.workloads]
    argv += ["--engine", getattr(args, "engine", DEFAULT_ENGINE)]
    argv += ["--jobs", str(args.jobs), "--chunk", str(args.chunk)]
    if args.site_counts:
        argv.append("--site-counts")
    if args.block_counts:
        argv.append("--block-counts")
    if args.output:
        argv += ["--output", args.output]
    return sharded_main(argv)


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench.tables import format_table
    from .workloads.suite import get_workload, workload_names

    try:
        workload = get_workload(args.workload)
    except KeyError:
        raise SystemExit(
            "unknown workload {!r}; available: {}".format(
                args.workload, ", ".join(workload_names())
            )
        )
    toolchain = Toolchain(
        list(workload.sources),
        train_inputs=[list(t) for t in workload.train_inputs],
        strict=getattr(args, "strict", False),
        jobs=getattr(args, "jobs", None),
        cache_dir=getattr(args, "cache_dir", None),
        cache_max_mb=getattr(args, "cache_max_mb", None),
        engine=getattr(args, "engine", DEFAULT_ENGINE),
        compile_timeout=getattr(args, "compile_timeout", None),
    )
    config = _config_from_args(args)
    obs = _observer_from_args(args)
    log = _logger_from_args(args)
    rows = []
    degraded = False
    for scope in SCOPES:
        build = toolchain.build(scope, config, observer=obs)
        if build.degraded:
            degraded = True
            log.info("{}: {}".format(scope, build.diagnostics.summary(build.report)))
        with obs.tracer.span("execute", cat="machine", scope=scope):
            metrics, _run = build.run(workload.ref_input)
        rows.append(
            [
                scope,
                build.report.inlines,
                build.report.clones,
                build.report.clone_replacements,
                build.report.deletions,
                build.stats.compile_units,
                metrics.cycles,
            ]
        )
    print(
        format_table(
            ["scope", "inlines", "clones", "repls", "deletions",
             "compile_units", "run_cycles"],
            rows,
            title="{} ({})".format(workload.name, workload.spec_analog),
        )
    )
    _emit_observability(args, obs, log)
    return 1 if degraded and getattr(args, "strict", False) else 0


def build_parser() -> argparse.ArgumentParser:
    from .resilience.faults import SHARD_FAULTS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="HLO-style aggressive inlining/cloning toolchain "
        "(reproduction of PLDI '97).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, needs_files=True):
        if needs_files:
            p.add_argument("files", nargs="+", help="minic source files")
        p.add_argument("--scope", choices=SCOPES, default="c",
                       help="optimization scope (Table 1 rows); default c")
        p.add_argument("--budget", type=float, default=100.0,
                       help="compile-time budget percent (default 100)")
        p.add_argument("--passes", type=int, default=4,
                       help="HLO pass limit (default 4)")
        p.add_argument("--strategy", choices=("global", "demand"),
                       default="global",
                       help="inlining strategy: 'global' is the paper's "
                       "whole-program multi-pass loop, 'demand' walks "
                       "only profile-hot regions under per-region "
                       "budgets (default global)")
        p.add_argument("--profile", help="profile database from `train`")
        p.add_argument("--no-inline", action="store_true")
        p.add_argument("--no-clone", action="store_true")
        p.add_argument("--outline", action="store_true",
                       help="enable aggressive outlining (Section 5)")
        p.add_argument("--strict", action="store_true",
                       help="turn graceful degradation into hard errors")
        p.add_argument("--verify-each-pass", action="store_true",
                       help="verify IR after every guarded pass (slower)")
        p.add_argument("--jobs", type=int, metavar="N",
                       help="compile modules with N worker processes "
                       "(output is identical for any N)")
        p.add_argument("--compile-timeout", type=float, metavar="S",
                       help="per-module compile watchdog in seconds; a "
                       "stalled worker pool degrades to serial compilation")
        p.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed incremental compile cache")
        p.add_argument("--cache-max-mb", type=float, metavar="MB",
                       help="bound the disk cache; least-recently-used "
                       "entries are evicted past this size")
        engine_flag(p)
        observability(p)

    def engine_flag(p):
        p.add_argument("--engine", choices=ENGINES, default=DEFAULT_ENGINE,
                       help="interpreter engine: 'fast' pre-decodes to "
                       "threaded code, 'codegen' compiles procedures to "
                       "Python code objects, 'reference' is the plain "
                       "loop (default {})".format(DEFAULT_ENGINE))

    def observability(p):
        p.add_argument("--trace-out", metavar="FILE",
                       help="write a Chrome trace-event JSON timeline "
                       "(load in Perfetto / chrome://tracing)")
        p.add_argument("--metrics-out", metavar="FILE",
                       help="write build counters/gauges/histograms as JSON")
        p.add_argument("--explain-inlining", action="store_true",
                       help="print every call-site decision HLO made "
                       "(inlined / cloned / rejected, with reasons)")
        p.add_argument("--explain-inlining-out", metavar="FILE",
                       help="write the inlining-decision ledger as JSONL")
        p.add_argument("--verbosity", choices=VERBOSITY_LEVELS,
                       default="normal",
                       help="stderr verbosity (default normal)")

    p_compile = sub.add_parser("compile", help="compile to IR or isoms")
    common(p_compile)
    p_compile.add_argument("--isom-dir", help="write one .isom per module here")
    p_compile.add_argument("--no-hlo", action="store_true",
                           help="front end only, skip HLO")
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="compile and execute")
    common(p_run)
    p_run.add_argument("--inputs", help="comma-separated integer input vector")
    p_run.add_argument("--simulate", action="store_true",
                       help="run on the PA8000 machine model")
    p_run.add_argument("--no-hlo", action="store_true")
    p_run.add_argument("--flame-out", metavar="FILE",
                       help="profile the guest run and write a flamegraph "
                       "(.json -> speedscope, else collapsed stacks); "
                       "identical output on every --engine")
    p_run.add_argument("--flame-rate", type=int, default=DEFAULT_FLAME_RATE,
                       metavar="N",
                       help="stack sample every ~N guest instructions "
                       "(default {}; 1 = exact)".format(DEFAULT_FLAME_RATE))
    p_run.add_argument("--flame-seed", type=int, default=0,
                       help="sampling jitter seed (default 0)")
    p_run.set_defaults(func=cmd_run)

    p_train = sub.add_parser("train", help="instrument, run, write profile db")
    p_train.add_argument("files", nargs="+")
    p_train.add_argument("--inputs", action="append",
                         help="training inputs; ',' separates elements, "
                         "';' separates runs, and the flag may repeat "
                         "(one run per occurrence)")
    p_train.add_argument("--sample-rate", type=int, metavar="N",
                         help="collect by sampling every ~N interpreter "
                         "steps instead of instrumenting")
    p_train.add_argument("--context-depth", type=int,
                         default=DEFAULT_CONTEXT_DEPTH, metavar="K",
                         help="calling-context depth recorded per sample "
                         "(default {})".format(DEFAULT_CONTEXT_DEPTH))
    p_train.add_argument("--seed", type=int, default=0,
                         help="sampling jitter seed (default 0)")
    p_train.add_argument("-o", "--output", default="repro.profdb")
    p_train.add_argument("--strategy", choices=("global", "demand"),
                         default="global",
                         help="accepted for flag symmetry with compile/run "
                         "(training runs the unoptimized instrumented "
                         "program, so the strategy does not affect the "
                         "collected profile)")
    engine_flag(p_train)
    p_train.set_defaults(func=cmd_train)

    p_profile = sub.add_parser(
        "profile", help="profile lifecycle: sample, merge, report, check"
    )
    profile_sub = p_profile.add_subparsers(dest="profile_command", required=True)

    def profile_sources(p):
        p.add_argument("files", nargs="*", help="minic source files")
        p.add_argument("--workload",
                       help="use a bench-suite workload's sources instead "
                       "of source files")

    pp_sample = profile_sub.add_parser(
        "sample", help="collect a sampled, context-sensitive profile"
    )
    profile_sources(pp_sample)
    pp_sample.add_argument("--inputs", action="append",
                           help="training inputs (',' elements, ';' runs, "
                           "flag may repeat); --workload supplies its own "
                           "training set when omitted")
    pp_sample.add_argument("--rate", type=int, default=DEFAULT_SAMPLE_RATE,
                           metavar="N",
                           help="sample every ~N interpreter steps "
                           "(default {})".format(DEFAULT_SAMPLE_RATE))
    pp_sample.add_argument("--context-depth", type=int,
                           default=DEFAULT_CONTEXT_DEPTH, metavar="K",
                           help="calling-context depth per sample "
                           "(default {})".format(DEFAULT_CONTEXT_DEPTH))
    pp_sample.add_argument("--seed", type=int, default=0,
                           help="sampling jitter seed (default 0)")
    pp_sample.add_argument("-o", "--output", default="repro.profdb")
    engine_flag(pp_sample)
    pp_sample.set_defaults(func=cmd_profile_sample)

    pp_flame = profile_sub.add_parser(
        "flame", help="run once and write a guest flamegraph"
    )
    profile_sources(pp_flame)
    pp_flame.add_argument("--inputs",
                          help="comma-separated integer input vector; "
                          "--workload supplies its reference input "
                          "when omitted")
    pp_flame.add_argument("--rate", type=int, default=DEFAULT_FLAME_RATE,
                          metavar="N",
                          help="stack sample every ~N guest instructions "
                          "(default {}; 1 = exact)".format(DEFAULT_FLAME_RATE))
    pp_flame.add_argument("--seed", type=int, default=0,
                          help="sampling jitter seed (default 0)")
    pp_flame.add_argument("--top", type=int, default=10, metavar="K",
                          help="hottest contexts to print (default 10)")
    pp_flame.add_argument("-o", "--output", default="flame.json",
                          help="output path; .json -> speedscope JSON, "
                          "anything else collapsed stacks "
                          "(default flame.json)")
    engine_flag(pp_flame)
    pp_flame.set_defaults(func=cmd_profile_flame)

    pp_merge = profile_sub.add_parser(
        "merge", help="combine databases with explicit weights or decay"
    )
    pp_merge.add_argument("databases", nargs="+",
                          help="profile databases, oldest first")
    pp_merge.add_argument("--weights",
                          help="comma-separated weight per database")
    pp_merge.add_argument("--decay", type=float, metavar="D",
                          help="exponential aging: newest run weight 1.0, "
                          "each older run multiplied by D")
    pp_merge.add_argument("-o", "--output", default="merged.profdb")
    pp_merge.set_defaults(func=cmd_profile_merge)

    pp_report = profile_sub.add_parser(
        "report", help="coverage / confidence / staleness of a database"
    )
    pp_report.add_argument("database")
    profile_sources(pp_report)
    pp_report.add_argument("--json", action="store_true",
                           help="machine-readable output")
    pp_report.set_defaults(func=cmd_profile_report)

    pp_check = profile_sub.add_parser(
        "check", help="health-gate a database against current sources"
    )
    pp_check.add_argument("database")
    profile_sources(pp_check)
    pp_check.add_argument("--min-match", type=float, default=DEFAULT_MIN_MATCH,
                          help="per-procedure match-ratio floor "
                          "(default {})".format(DEFAULT_MIN_MATCH))
    pp_check.add_argument("--min-confidence", type=float,
                          default=MIN_PROFILE_CONFIDENCE,
                          help="sampled-confidence floor "
                          "(default {})".format(MIN_PROFILE_CONFIDENCE))
    pp_check.add_argument("--remap", metavar="FILE",
                          help="write a salvaged database (still-matching "
                          "counts remapped to the current sources) here")
    pp_check.add_argument("--json", action="store_true",
                          help="machine-readable output")
    pp_check.set_defaults(func=cmd_profile_check)

    p_report = sub.add_parser("report", help="print the HLO transform report")
    common(p_report)
    p_report.set_defaults(func=cmd_report)

    p_bench = sub.add_parser("bench", help="Table 1 walk on a suite workload")
    p_bench.add_argument("workload")
    p_bench.add_argument("--scope", choices=SCOPES, default="cp")
    p_bench.add_argument("--budget", type=float, default=400.0)
    p_bench.add_argument("--passes", type=int, default=4)
    p_bench.add_argument("--strategy", choices=("global", "demand"),
                         default="global",
                         help="inlining strategy (default global)")
    p_bench.add_argument("--no-inline", action="store_true")
    p_bench.add_argument("--no-clone", action="store_true")
    p_bench.add_argument("--outline", action="store_true")
    p_bench.add_argument("--strict", action="store_true",
                         help="turn graceful degradation into hard errors")
    p_bench.add_argument("--verify-each-pass", action="store_true")
    p_bench.add_argument("--jobs", type=int, metavar="N",
                         help="compile modules with N worker processes")
    p_bench.add_argument("--cache-dir", metavar="DIR",
                         help="content-addressed incremental compile cache")
    p_bench.add_argument("--cache-max-mb", type=float, metavar="MB",
                         help="bound the disk cache (LRU eviction)")
    engine_flag(p_bench)
    observability(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_sharded = sub.add_parser(
        "bench-sharded",
        help="sharded interpreter throughput run (merged Result counters)",
    )
    p_sharded.add_argument("--workloads", metavar="NAMES",
                           help="comma-separated workload names "
                           "(default: the whole suite)")
    p_sharded.add_argument("--jobs", type=int, default=4, metavar="N")
    p_sharded.add_argument("--chunk", type=int, default=1, metavar="K",
                           help="input vectors per shard")
    p_sharded.add_argument("--site-counts", action="store_true")
    p_sharded.add_argument("--block-counts", action="store_true")
    p_sharded.add_argument("--output", metavar="FILE")
    engine_flag(p_sharded)
    p_sharded.set_defaults(func=cmd_bench_sharded)

    p_scale = sub.add_parser(
        "bench-scale",
        help="compile-scaling bench: global vs demand strategy on "
        "generated mega-programs",
    )
    p_scale.add_argument("--small", type=int, metavar="N",
                         help="small-tier module count (default 40)")
    p_scale.add_argument("--mega", type=int, metavar="N",
                         help="mega-tier module count (default 1000)")
    p_scale.add_argument("--funcs-per-module", type=int, metavar="N")
    p_scale.add_argument("--window", type=int, metavar="K",
                         help="generator extern visibility window")
    p_scale.add_argument("--seed", type=int)
    p_scale.add_argument("--parity-workloads", metavar="NAMES",
                         help="comma-separated suite workloads for the "
                         "cycles-parity gate")
    p_scale.add_argument("--no-timing-gates", action="store_true",
                         help="gate only the deterministic sites ratio "
                         "and cycles parity")
    p_scale.add_argument("--output", metavar="FILE",
                         help="write the scale section as JSON")
    p_scale.add_argument("--merge-into", metavar="FILE",
                         help="merge the scale section into an existing "
                         "BENCH_smoke.json")
    p_scale.add_argument("--summary-out", metavar="FILE",
                         help="append a Markdown summary table "
                         "($GITHUB_STEP_SUMMARY in CI)")
    p_scale.set_defaults(func=cmd_bench_scale)

    p_serve = sub.add_parser(
        "serve",
        help="long-running build daemon: warm caches, in-flight dedupe, "
        "drain on SIGTERM",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (default 0 = ephemeral; the "
                         "bound port is printed on startup)")
    p_serve.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="compile worker processes kept warm "
                         "across requests")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         help="content-addressed incremental compile cache")
    p_serve.add_argument("--cache-max-mb", type=float, metavar="MB",
                         help="bound the disk cache (LRU eviction)")
    p_serve.add_argument("--concurrency", type=int, default=4, metavar="N",
                         help="requests built concurrently (default 4)")
    p_serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                         help="queue bound; past it requests are shed "
                         "with a 'busy' reply (default 64)")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="default per-request deadline in seconds")
    p_serve.add_argument("--compile-timeout", type=float, metavar="S",
                         help="per-module compile watchdog in seconds")
    p_serve.add_argument("--results-capacity", type=int, default=32,
                         metavar="N",
                         help="finished builds kept warm in the result "
                         "LRU (default 32)")
    p_serve.add_argument("--stats-out", metavar="FILE",
                         help="write the final stats snapshot JSON after "
                         "the drain")
    p_serve.add_argument("--series-out", metavar="FILE",
                         help="write per-request time series (queue "
                         "depth, in-flight) as JSONL after the drain")
    engine_flag(p_serve)
    observability(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_bserve = sub.add_parser(
        "bench-serve",
        help="load-generate a build daemon (in-process, or a running "
        "`repro serve` via --connect) and gate its behaviour",
    )
    p_bserve.add_argument("--clients", type=int, default=200, metavar="N",
                          help="concurrent clients (default 200)")
    p_bserve.add_argument("--workloads", metavar="NAMES",
                          help="comma-separated workload names "
                          "(default: compress,sc)")
    p_bserve.add_argument("--scope", choices=SCOPES, default="c")
    p_bserve.add_argument("--connect", metavar="HOST:PORT",
                          help="drive a running daemon instead of an "
                          "in-process one")
    p_bserve.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="compile workers for the in-process server")
    p_bserve.add_argument("--concurrency", type=int, default=4, metavar="N")
    p_bserve.add_argument("--max-pending", type=int, default=64, metavar="N")
    p_bserve.add_argument("--timeout", type=float, default=120.0, metavar="S")
    p_bserve.add_argument("--output", metavar="FILE",
                          help="write the report JSON here")
    p_bserve.add_argument("--json", action="store_true",
                          help="print the report as JSON")
    engine_flag(p_bserve)
    p_bserve.set_defaults(func=cmd_bench_serve)

    p_fleet = sub.add_parser(
        "fleet", help="continuous-profiling fleet loop"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    def fleet_common(p):
        """Flags `fleet run` and `fleet explain` share: the same loop,
        fault plan, and workload run under both."""
        p.add_argument("workload")
        p.add_argument("--rounds", type=int, default=8, metavar="N",
                       help="collection rounds to run (default 8)")
        p.add_argument("--rate", type=int, default=50, metavar="N",
                       help="sampling rate: one sample every ~N steps "
                       "(default 50)")
        p.add_argument("--seed", type=int, default=7,
                       help="fleet + fault-plan seed (default 7)")
        p.add_argument("--faults", metavar="F1,F2",
                       help="comma-separated transit faults to inject "
                       "({})".format(", ".join(SHARD_FAULTS)))
        p.add_argument("--fault-rate", type=float, default=0.0,
                       metavar="P",
                       help="per-shard transit fault probability "
                       "(default 0.0; >0 with no --faults injects all)")
        p.add_argument("--wal-tail", type=int, nargs="*", default=(),
                       metavar="ROUND",
                       help="rounds whose end tears the spool tail")
        p.add_argument("--kill-mid-swap", type=int, nargs="*", default=(),
                       metavar="EPOCH",
                       help="epochs whose swap is interrupted by a crash")
        p.add_argument("--canary-trap", type=int, nargs="*", default=(),
                       metavar="EPOCH",
                       help="epochs whose canary build traps")
        p.add_argument("--flap", nargs="*", default=(), metavar="SOURCE",
                       help="instance sources that flap (restart loop)")
        p.add_argument("--restart-collector", type=int, nargs="*",
                       default=(), metavar="ROUND",
                       help="rounds after which the collector restarts "
                       "and replays its journal")
        p.add_argument("--spool", metavar="FILE",
                       help="shard write-ahead spool path "
                       "(default: a fresh temp file)")
        p.add_argument("--max-wall", type=float, default=None, metavar="S",
                       help="wall-clock budget; the loop stops early "
                       "when exceeded")
        p.add_argument("--series-out", metavar="FILE",
                       help="write per-tick time series (drift, "
                       "confidence, jaccard-vs-exact, per-instance "
                       "queues) as JSONL")
        engine_flag(p)

    pf_run = fleet_sub.add_parser(
        "run",
        help="run the collect/rebuild/canary/hot-swap loop on a workload",
    )
    fleet_common(pf_run)
    pf_run.add_argument("--fleet-ledger-out", metavar="FILE",
                        help="write the fleet decision ledger (every "
                        "collector verdict and controller decision) as "
                        "JSONL; also enforces ledger completeness")
    pf_run.add_argument("--build-server", metavar="HOST:PORT",
                        help="send profile-fed rebuilds to a running "
                        "`repro serve` daemon (local fallback when it "
                        "is unreachable)")
    pf_run.add_argument("--assert-convergence", action="store_true",
                        help="exit 1 unless the loop converged to the "
                        "exact-profile decisions (jaccard 1.0)")
    pf_run.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    observability(pf_run)
    pf_run.set_defaults(func=cmd_fleet_run)

    pf_explain = fleet_sub.add_parser(
        "explain",
        help="run the loop with the decision ledger on; print why every "
        "shard was ACKed/NACKed/quarantined and what each round decided",
    )
    fleet_common(pf_explain)
    pf_explain.add_argument("--json", action="store_true",
                            help="print the ledger as JSONL instead of text")
    pf_explain.add_argument("--limit", type=int, default=None, metavar="N",
                            help="entries to print in text mode "
                            "(default: all)")
    pf_explain.add_argument("-o", "--out", dest="fleet_ledger_out",
                            metavar="FILE",
                            help="also write the ledger as JSONL here")
    observability(pf_explain)
    pf_explain.set_defaults(func=cmd_fleet_explain)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
