"""Inlining-decision ledger: recording, rollback, output formats."""

import json

from repro.core.report import HLOReport
from repro.obs import BuildObserver
from repro.obs.ledger import (
    NULL_LEDGER,
    InliningLedger,
    record_decision,
)
from repro.obs.validate import validate_ledger_jsonl


def filled_ledger():
    ledger = InliningLedger()
    ledger.record("inline", 0, "main", "api", 1, "inlined",
                  "accepted within staged budget", "accepted", 12.5)
    ledger.record("clone", 0, "main", "helper", 2, "cloned",
                  "call site retargeted to clone", "accepted", 3.0)
    ledger.record("inline", 1, "api", "ext", 3, "rejected",
                  "external callee", "external")
    ledger.record("inline", 1, "api", "big", 4, "rejected",
                  "staged budget exhausted", "budget", 0.4)
    return ledger


class TestRecording:
    def test_counts_and_classes(self):
        ledger = filled_ledger()
        assert ledger.considered == 4
        assert ledger.decision_counts() == {
            "inlined": 1, "cloned": 1, "rejected": 2,
        }
        assert ledger.rejection_classes() == {"external": 1, "budget": 1}

    def test_mark_rollback_truncates(self):
        ledger = filled_ledger()
        mark = ledger.mark()
        ledger.record("inline", 2, "a", "b", 9, "rejected", "x", "other")
        assert ledger.considered == 5
        ledger.rollback_to(mark)
        assert ledger.considered == 4
        assert ledger.entries[-1].site_id == 4

    def test_null_ledger_is_inert(self):
        NULL_LEDGER.record("inline", 0, "a", "b", 1, "inlined", "r", "c")
        assert NULL_LEDGER.enabled is False
        assert NULL_LEDGER.mark() == 0
        NULL_LEDGER.rollback_to(0)


class TestRecordDecision:
    class FakeSite:
        class _Named:
            def __init__(self, name):
                self.name = name

        class _Instr:
            def __init__(self, site_id, callee=None):
                self.site_id = site_id
                self.callee = callee

        def __init__(self, caller, callee, site_id):
            self.caller = self._Named(caller)
            self.callee = self._Named(callee) if callee else None
            self.instr = self._Instr(site_id, callee)

    def test_increments_report_and_ledger_together(self):
        report = HLOReport()
        obs = BuildObserver(ledger=InliningLedger())
        site = self.FakeSite("main", "api", 7)
        record_decision(obs, report, "inline", 0, site, "rejected",
                        "external callee")
        assert report.sites_considered == 1
        assert obs.ledger.considered == 1
        entry = obs.ledger.entries[0]
        assert (entry.caller, entry.callee, entry.site_id) == ("main", "api", 7)
        # No explicit class: derived from the reason text (Figure 5).
        assert entry.reason_class == "external"

    def test_counts_report_even_with_null_ledger(self):
        report = HLOReport()
        obs = BuildObserver()  # all sinks null
        site = self.FakeSite("main", "api", 7)
        record_decision(obs, report, "inline", 0, site, "rejected",
                        "indirect call")
        assert report.sites_considered == 1

    def test_indirect_site_labels_callee(self):
        report = HLOReport()
        obs = BuildObserver(ledger=InliningLedger())
        site = self.FakeSite("main", None, 3)
        site.instr.callee = None
        record_decision(obs, report, "inline", 0, site, "rejected",
                        "indirect call")
        assert obs.ledger.entries[0].callee == "<indirect>"


class TestOutput:
    def test_jsonl_header_invariant(self):
        ledger = filled_ledger()
        text = ledger.to_jsonl()
        assert validate_ledger_jsonl(text) == []
        lines = text.strip().split("\n")
        header = json.loads(lines[0])
        assert header["considered"] == 4
        assert header["considered"] == len(lines) - 1
        assert sum(header["decisions"].values()) == header["considered"]

    def test_jsonl_entries_carry_benefit(self):
        ledger = filled_ledger()
        lines = ledger.to_jsonl().strip().split("\n")
        first = json.loads(lines[1])
        assert first["decision"] == "inlined"
        assert first["benefit"] == 12.5
        external = json.loads(lines[3])
        assert "benefit" not in external

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        filled_ledger().write_jsonl(str(path))
        assert validate_ledger_jsonl(path.read_text()) == []

    def test_format_text_summarizes_and_lists(self):
        text = filled_ledger().format_text()
        assert "4 call-site evaluations" in text
        assert "1 inlined, 1 cloned, 2 rejected" in text
        assert "rejections by class:" in text
        assert "external" in text
        assert "@main -> @api site 1" in text

    def test_format_text_limit(self):
        text = filled_ledger().format_text(limit=2)
        assert "... 2 more" in text
