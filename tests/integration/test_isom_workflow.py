"""The full on-disk isom workflow of Figure 1's bottom path.

Sources compile to isom object files on disk; a later link step
discovers them, hands them en masse to HLO, and produces the final
program — with the profile database also persisted to disk between the
training and final compiles, as a make-driven build would.
"""

import os

from repro.core import HLOConfig, run_hlo
from repro.frontend import compile_module
from repro.interp import run_program
from repro.ir import verify_program
from repro.linker import is_isom_text, link_modules, read_isoms, write_isom
from repro.profile import ProfileDatabase, annotate_program, instrument_program

SOURCES = [
    (
        "mathlib",
        """
        static int square(int x) { return x * x; }
        int poly(int x) { return square(x) + x + 1; }
        """,
    ),
    (
        "app",
        """
        extern int poly(int x);
        int main() {
          int total = 0;
          for (int i = 0; i < input(0); i++) total += poly(i);
          print_int(total);
          return 0;
        }
        """,
    ),
]


def test_full_disk_workflow(tmp_path):
    workdir = str(tmp_path)

    # Step 1: compile each module to an isom on disk (separate "cc -c").
    isom_paths = []
    for name, text in SOURCES:
        module = compile_module(text, name)
        isom_paths.append(write_isom(module, workdir))
    for path in isom_paths:
        with open(path) as handle:
            assert is_isom_text(handle.read())

    # Step 2: instrumenting link + training run; profile db to disk.
    program = link_modules(read_isoms(isom_paths))
    reference = run_program(program, [7]).behavior()
    probe_map = instrument_program(program)
    trained = run_program(program, [5])  # the *training* input differs
    db = ProfileDatabase.from_training_run(
        program, probe_map, trained.probe_counts, trained.steps
    )
    db_path = os.path.join(workdir, "app.profdb")
    db.save(db_path)

    # Step 3: final link — rediscover the isoms, annotate from disk, HLO.
    final = link_modules(read_isoms(isom_paths))
    loaded = ProfileDatabase.load(db_path)
    assert annotate_program(final, loaded) > 0
    report = run_hlo(
        final, HLOConfig(budget_percent=400), site_counts=loaded.site_counts
    )
    verify_program(final)
    assert report.inlines >= 1

    # Step 4: the executable behaves identically on the reference input.
    assert run_program(final, [7]).behavior() == reference


def test_isoms_are_stable_across_rewrites(tmp_path):
    """Writing an isom, reading it, and writing again is a fixpoint."""
    module = compile_module(SOURCES[0][1], "mathlib")
    first = write_isom(module, str(tmp_path))
    with open(first) as handle:
        text1 = handle.read()
    reread = read_isoms([first])[0]
    second = write_isom(reread, str(tmp_path / "again"))
    with open(second) as handle:
        text2 = handle.read()
    assert text1 == text2
