"""Blocks, procedures, modules, and programs: structural behaviour."""

import pytest

from repro.ir import (
    BasicBlock,
    GlobalVar,
    IRBuilder,
    Imm,
    Jump,
    Module,
    Mov,
    Procedure,
    Program,
    Reg,
    Ret,
    Signature,
    Type,
)


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock("b")
        assert block.terminator is None
        block.append(Mov(Reg("x"), Imm(1)))
        assert block.terminator is None
        block.append(Ret(None))
        assert block.terminator is not None

    def test_append_after_terminator_raises(self):
        block = BasicBlock("b", [Ret(None)])
        with pytest.raises(ValueError):
            block.append(Mov(Reg("x"), Imm(1)))

    def test_successors_and_body(self):
        block = BasicBlock("b", [Mov(Reg("x"), Imm(1)), Jump("next")])
        assert block.successors() == ["next"]
        assert len(block.body()) == 1


class TestProcedure:
    def make(self):
        proc = Procedure("f", [("a", Type.INT)], Type.INT)
        entry = proc.add_block(BasicBlock("entry"), entry=True)
        entry.append(Mov(Reg("x"), Reg("a")))
        entry.append(Jump("exit"))
        exit_block = proc.add_block(BasicBlock("exit"))
        exit_block.append(Ret(Reg("x")))
        return proc

    def test_entry_and_size(self):
        proc = self.make()
        assert proc.entry == "entry"
        assert proc.size() == 3

    def test_duplicate_block_raises(self):
        proc = self.make()
        with pytest.raises(ValueError):
            proc.add_block(BasicBlock("entry"))

    def test_new_reg_avoids_collisions(self):
        proc = self.make()
        names = {proc.new_reg().name for _ in range(5)}
        assert len(names) == 5
        assert "a" not in names and "x" not in names

    def test_new_label_avoids_collisions(self):
        proc = self.make()
        label = proc.new_label()
        assert label not in ("entry", "exit")

    def test_rpo_starts_at_entry(self):
        proc = self.make()
        assert proc.rpo_labels()[0] == "entry"
        assert proc.rpo_labels() == ["entry", "exit"]

    def test_predecessors(self):
        proc = self.make()
        assert proc.predecessors()["exit"] == ["entry"]
        assert proc.predecessors()["entry"] == []

    def test_reachable_excludes_orphans(self):
        proc = self.make()
        orphan = proc.add_block(BasicBlock("orphan"))
        orphan.append(Ret(Imm(0)))
        assert "orphan" not in proc.reachable_labels()

    def test_cannot_remove_entry(self):
        proc = self.make()
        with pytest.raises(ValueError):
            proc.remove_block("entry")

    def test_signature(self):
        proc = self.make()
        assert proc.signature() == Signature((Type.INT,), Type.INT)

    def test_unknown_attr_raises(self):
        with pytest.raises(ValueError):
            Procedure("g", [], attrs={"mystery"})


class TestModuleAndProgram:
    def test_global_size_checks(self):
        with pytest.raises(ValueError):
            GlobalVar("g", size=0)
        with pytest.raises(ValueError):
            GlobalVar("g", size=2, init=[1, 2, 3])
        assert GlobalVar("g", size=3, init=[7]).words() == [7, 0, 0]

    def test_duplicate_global_raises(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g"))
        with pytest.raises(ValueError):
            mod.add_global(GlobalVar("g"))

    def test_site_ids_monotonic(self):
        mod = Module("m")
        ids = [mod.new_site_id() for _ in range(4)]
        assert ids == [0, 1, 2, 3]
        mod.bump_site_counter(10)
        assert mod.new_site_id() == 10

    def test_program_lookup_across_modules(self):
        m1, m2 = Module("a"), Module("b")
        b1 = IRBuilder(m1, "f")
        b1.ret(1)
        b2 = IRBuilder(m2, "main")
        b2.ret(0)
        m2.add_global(GlobalVar("g", 4))
        program = Program([m1, m2])
        assert program.proc("f") is not None
        assert program.proc("main").module == "b"
        assert program.global_var("g").module == "b"
        assert program.proc("missing") is None

    def test_duplicate_proc_across_modules_raises(self):
        m1, m2 = Module("a"), Module("b")
        IRBuilder(m1, "f").ret(0)
        IRBuilder(m2, "f").ret(0)
        with pytest.raises(ValueError):
            Program([m1, m2])

    def test_builtin_signatures_known(self):
        program = Program([])
        assert program.is_builtin("print_int")
        assert program.callee_signature("print_int") == Signature((Type.INT,), Type.VOID)
        assert program.callee_signature("nope") is None

    def test_extern_signature_lookup(self):
        mod = Module("m")
        mod.declare_extern("ext", Signature((Type.INT,), Type.INT))
        program = Program([mod])
        assert program.callee_signature("ext") == Signature((Type.INT,), Type.INT)

    def test_main_required(self):
        program = Program([])
        with pytest.raises(ValueError):
            program.main()

    def test_delete_proc(self):
        mod = Module("m")
        IRBuilder(mod, "f").ret(0)
        program = Program([mod])
        program.delete_proc("f")
        assert program.proc("f") is None
        with pytest.raises(KeyError):
            program.delete_proc("f")
