"""Verifier: each structural error class is caught."""

import pytest

from repro.ir import (
    BasicBlock,
    Call,
    FuncRef,
    GlobalRef,
    GlobalVar,
    IRBuilder,
    Imm,
    Jump,
    LINK_STATIC,
    Load,
    Module,
    Mov,
    Procedure,
    Program,
    Reg,
    Ret,
    Type,
    VerifyError,
    verify_program,
)


def proc_with(instrs, params=(), ret_type=Type.INT):
    mod = Module("m")
    proc = Procedure("p", list(params), ret_type)
    block = proc.add_block(BasicBlock("entry"), entry=True)
    block.instrs = list(instrs)
    mod.add_proc(proc)
    return Program([mod])


def errors_of(program):
    with pytest.raises(VerifyError) as err:
        verify_program(program)
    return str(err.value)


class TestVerifier:
    def test_valid_program_passes(self):
        program = proc_with([Ret(Imm(0))])
        verify_program(program)  # no raise

    def test_missing_terminator(self):
        program = proc_with([Mov(Reg("x"), Imm(1))])
        assert "lacks a terminator" in errors_of(program)

    def test_terminator_mid_block(self):
        program = proc_with([Ret(Imm(0)), Mov(Reg("x"), Imm(1)), Ret(Imm(0))])
        assert "terminator mid-block" in errors_of(program)

    def test_branch_to_unknown_label(self):
        program = proc_with([Jump("nowhere")])
        assert "unknown label" in errors_of(program)

    def test_undefined_register_use(self):
        program = proc_with([Ret(Reg("ghost"))])
        assert "undefined register" in errors_of(program)

    def test_param_is_defined(self):
        program = proc_with([Ret(Reg("a"))], params=[("a", Type.INT)])
        verify_program(program)

    def test_unknown_callee(self):
        program = proc_with([Call(None, "mystery", [], 0), Ret(Imm(0))])
        assert "undeclared" in errors_of(program)

    def test_builtin_callee_ok(self):
        program = proc_with([Call(None, "print_int", [Imm(1)], 0), Ret(Imm(0))])
        verify_program(program)

    def test_void_callee_with_result(self):
        program = proc_with([Call(Reg("x"), "print_int", [Imm(1)], 0), Ret(Reg("x"))])
        assert "void" in errors_of(program)

    def test_missing_site_id(self):
        program = proc_with([Call(None, "print_int", [Imm(1)]), Ret(Imm(0))])
        assert "site id" in errors_of(program)

    def test_ret_type_mismatch(self):
        program = proc_with([Ret(None)])  # non-void proc, bare ret
        assert "bare ret" in errors_of(program)
        program = proc_with([Ret(Imm(0))], ret_type=Type.VOID)
        assert "ret with value" in errors_of(program)

    def test_unknown_funcref(self):
        program = proc_with([Mov(Reg("x"), FuncRef("ghost")), Ret(Reg("x"))])
        assert "funcref to unknown" in errors_of(program)

    def test_unknown_global(self):
        program = proc_with([Load(Reg("x"), GlobalRef("ghost")), Ret(Reg("x"))])
        assert "unknown global" in errors_of(program)

    def test_cross_module_static_call_rejected(self):
        m1 = Module("a")
        static = IRBuilder(m1, "hidden", linkage=LINK_STATIC)
        static.ret(1)
        m2 = Module("b")
        caller = IRBuilder(m2, "main")
        caller.call("hidden", [], dest=False)
        caller.ret(0)
        assert "cross-module call to static" in errors_of(Program([m1, m2]))

    def test_cross_module_static_global_rejected(self):
        m1 = Module("a")
        m1.add_global(GlobalVar("priv", 1, linkage=LINK_STATIC))
        m2 = Module("b")
        b = IRBuilder(m2, "main")
        b.load(b.glob("priv"))
        b.ret(0)
        assert "reference to static" in errors_of(Program([m1, m2]))

    def test_cross_module_static_funcref_rejected(self):
        m1 = Module("a")
        IRBuilder(m1, "hidden", linkage=LINK_STATIC).ret(1)
        m2 = Module("b")
        b = IRBuilder(m2, "main")
        b.mov(b.func("hidden"))
        b.ret(0)
        assert "funcref to static" in errors_of(Program([m1, m2]))

    def test_error_collects_all_messages(self):
        program = proc_with([Mov(Reg("x"), Reg("ghost"))])  # two errors
        message = errors_of(program)
        assert "undefined register" in message
        assert "lacks a terminator" in message
