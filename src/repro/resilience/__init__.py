"""Resilience: pass isolation, snapshot/rollback, fault injection.

The subsystem behind the degradation ladder (docs/resilience.md): a
failing pass rolls back instead of aborting the build, corrupted inputs
degrade scope/feedback instead of crashing the driver, and a seeded
fault injector proves every recovery path fires.
"""

from .errors import (
    FrameFormatError,
    InjectedFault,
    IsomError,
    ProfileConfidenceError,
    ProfileFormatError,
    ResilienceError,
    ShardFormatError,
    StrictModeError,
)
from .faults import CORRUPTION_MODES, SHARD_FAULTS, FaultInjector
from .guard import PROGRAM_SCOPE, GuardConfig, PassGuard, bisect_failure
from .snapshot import ProcedureSnapshot, ProgramSnapshot

__all__ = [
    "CORRUPTION_MODES",
    "FaultInjector",
    "FrameFormatError",
    "GuardConfig",
    "InjectedFault",
    "IsomError",
    "PassGuard",
    "ProcedureSnapshot",
    "ProfileConfidenceError",
    "ProfileFormatError",
    "PROGRAM_SCOPE",
    "ProgramSnapshot",
    "ResilienceError",
    "SHARD_FAULTS",
    "ShardFormatError",
    "StrictModeError",
    "bisect_failure",
]
