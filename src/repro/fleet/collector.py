"""The profile collector: journal, validate, quarantine, merge.

Every received frame runs the same gauntlet, in order:

1. **circuit breaker** — a source that keeps sending garbage is cut
   off (state machine below); frames from an OPEN source are NACKed
   without being read, so one sick instance cannot stall the merge;
2. **dedupe** — (source, seq) already seen?  The transport duplicates
   frames and sources retransmit un-ACKed shards; the second copy is
   ACKed (the sender must stop) but otherwise ignored;
3. **frame CRC** (:meth:`ProfileShard.from_wire`) — transit damage
   fails here and is NACKed for a retry, since the sender still holds
   an intact copy;
4. **journal** — an intact frame hits the write-ahead spool *before*
   semantic validation: a crash between receive and merge loses
   nothing, and replay re-derives the same verdicts from the same
   bytes;
5. **payload parse** — the profiledb parser treats the payload as
   hostile; a frame-intact but unparseable payload means the *source*
   wrote garbage (not transit damage), so it is quarantined — ACKed,
   because retransmitting the same bad bytes cannot help — and counts
   against the source's breaker;
6. **lifecycle gates** — :func:`~repro.sampling.lifecycle.assess_staleness`
   against the profiling image quarantines fingerprint-mismatched
   evidence (an instance sampling a stale binary), and a confidence
   floor drops shards whose evidence is pure noise.

Evidence that survives lands in its *epoch* bucket.  The merged view
(:meth:`ProfileCollector.merged_profile`) combines each live epoch's
shards exactly (counts add, like the exact pipeline's multi-run merge)
and then applies :func:`~repro.sampling.lifecycle.merge_profiles`'s
exponential decay across epochs, oldest first — the forgetting that
keeps a long-lived merge tracking current behaviour.  Epochs the
controller quarantined after a canary failure are excluded entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ir.program import Program
from ..obs import NULL_FLEET_LEDGER, NULL_METRICS, NULL_TRACER
from ..obs import names
from ..profile.database import ProfileDatabase
from ..resilience.errors import ProfileFormatError, ShardFormatError
from ..sampling.lifecycle import assess_staleness, merge_profiles
from .shard import ProfileShard
from .wal import ShardSpool

# Circuit-breaker states (the classic three-state machine).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

# A shard below this evidence-weighted confidence is noise, not signal;
# deliberately far below the *merged*-profile gate the controller
# applies (MIN_PROFILE_CONFIDENCE) — single-chunk shards are thin by
# nature and the merge is where confidence accumulates.
MIN_SHARD_CONFIDENCE = 0.05

DEFAULT_EPOCH_DECAY = 0.6


class CircuitBreaker:
    """Per-source failure gate: CLOSED -> OPEN -> HALF_OPEN -> ...

    ``threshold`` consecutive failures open the breaker; after
    ``cooldown`` ticks one probe frame is allowed through
    (HALF_OPEN) — success re-closes, failure re-opens for another
    cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown: int = 4):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0
        self.opens = 0  # how many times this breaker tripped

    def allows(self, tick: int) -> bool:
        if self.state == OPEN:
            if tick - self.opened_at >= self.cooldown:
                self.state = HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0

    def record_failure(self, tick: int) -> bool:
        """Record one strike; returns True when the breaker trips OPEN."""
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            tripped = self.state != OPEN
            if tripped:
                self.opens += 1
            self.state = OPEN
            self.opened_at = tick
            self.failures = 0
            return tripped
        return False


@dataclass
class ShardAck:
    """The collector's verdict, routed back to the source.

    ``accepted`` means *stop retransmitting* — the shard was either
    merged or permanently quarantined (same bytes would quarantine
    again).  ``accepted=False`` is a NACK: transit damage or an open
    breaker; the source should retry with backoff.
    """

    source: str
    seq: int
    accepted: bool
    reason: str


class ProfileCollector:
    """Receives shard frames, journals them, gates them, merges them."""

    def __init__(
        self,
        profiling_image: Program,
        spool: ShardSpool,
        decay: float = DEFAULT_EPOCH_DECAY,
        min_shard_confidence: float = MIN_SHARD_CONFIDENCE,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 4,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        ledger=NULL_FLEET_LEDGER,
    ):
        self.profiling_image = profiling_image
        self.spool = spool
        self.decay = decay
        self.min_shard_confidence = min_shard_confidence
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.metrics = metrics
        self.tracer = tracer
        self.ledger = ledger
        self.seen: Set[Tuple[str, int]] = set()
        self.epochs: Dict[int, List[ProfileDatabase]] = {}
        self.quarantined_epochs: Set[int] = set()
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.accepted = 0
        self.duplicates = 0
        self.rejected_transit = 0
        self.rejected_breaker = 0
        self.quarantined_shards = 0

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _breaker(self, source: str) -> CircuitBreaker:
        breaker = self.breakers.get(source)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)
            self.breakers[source] = breaker
        return breaker

    def _verdict(
        self, tick: int, source: str, seq: int, accepted: bool, reason: str
    ) -> ShardAck:
        """The collector's *only* ShardAck factory.

        Appending to the fleet ledger here — the same call that builds
        the ack — is what makes the ledger complete by construction:
        a verdict cannot be issued without being recorded.
        """
        self.ledger.verdict(tick, source, seq, accepted, reason)
        return ShardAck(source, seq, accepted, reason)

    def receive(self, wire: str, source: str, seq: int, tick: int) -> ShardAck:
        breaker = self._breaker(source)
        was_open = breaker.state == OPEN
        if not breaker.allows(tick):
            self.rejected_breaker += 1
            self.metrics.count(names.FLEET_SHARDS_REJECTED_BREAKER)
            return self._verdict(tick, source, seq, False, "breaker-open")
        if was_open and breaker.state == HALF_OPEN:
            self.ledger.transition(tick, source, "half-open")
            self.tracer.instant(
                "breaker-half-open:{}".format(source), cat="fleet"
            )
        if (source, seq) in self.seen:
            self.duplicates += 1
            self.metrics.count(names.FLEET_SHARDS_DEDUPED)
            return self._verdict(tick, source, seq, True, "duplicate")
        try:
            shard = ProfileShard.parse_message(wire)
        except ShardFormatError as exc:
            self.rejected_transit += 1
            self._strike(breaker, source, tick)
            self.metrics.count(names.FLEET_SHARDS_CORRUPT)
            return self._verdict(
                tick, source, seq, False, "transit:{}".format(exc.kind)
            )
        self.spool.append(shard)
        self.metrics.count(names.FLEET_WAL_APPENDED)
        return self._admit(shard, breaker, tick)

    def _admit(
        self, shard: ProfileShard, breaker: CircuitBreaker, tick: int
    ) -> ShardAck:
        """Semantic gates on a frame-intact, journaled shard."""
        self.seen.add(shard.key())
        source, seq = shard.key()
        try:
            db = ProfileDatabase.from_text(shard.payload)
        except ProfileFormatError as exc:
            self._strike(breaker, source, tick)
            return self._quarantine_shard(
                tick, source, seq, "payload:{}".format(exc.kind)
            )
        staleness = assess_staleness(db, self.profiling_image)
        if staleness.stale or staleness.missing:
            # Evidence from a binary that is not the current profiling
            # image: merging it would steer the optimizer with shapes
            # that no longer exist.
            self._strike(breaker, source, tick)
            return self._quarantine_shard(tick, source, seq, "stale-fingerprint")
        if db.sampled and db.overall_confidence() < self.min_shard_confidence:
            # Well-formed and fresh, just too thin to carry signal; the
            # source is healthy, so no breaker strike.
            return self._quarantine_shard(tick, source, seq, "low-confidence")
        if breaker.state == HALF_OPEN:
            self.ledger.transition(tick, source, "close")
        breaker.record_success()
        self.epochs.setdefault(shard.epoch, []).append(db)
        self.accepted += 1
        self.metrics.count(names.FLEET_SHARDS_ACCEPTED)
        return self._verdict(tick, source, seq, True, "accepted")

    def _quarantine_shard(
        self, tick: int, source: str, seq: int, reason: str
    ) -> ShardAck:
        self.quarantined_shards += 1
        self.metrics.count(names.FLEET_SHARDS_QUARANTINED)
        self.tracer.instant(
            "shard-quarantine:{}:{}".format(source, reason), cat="fleet"
        )
        # ACKed: the sender's copy is byte-identical and would be
        # quarantined again; retransmission cannot repair semantics.
        return self._verdict(
            tick, source, seq, True, "quarantined:{}".format(reason)
        )

    def _strike(self, breaker: CircuitBreaker, source: str, tick: int) -> None:
        if breaker.record_failure(tick):
            self.metrics.count(names.FLEET_BREAKER_OPENS)
            self.ledger.transition(tick, source, "open")
            self.tracer.instant("breaker-open:{}".format(source), cat="fleet")

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def restore(self, quarantined_epochs=(), tick: int = 0) -> Tuple[int, bool]:
        """Rebuild state from the spool after a collector restart.

        Replays every intact journaled frame through the same semantic
        gates (dedupe included — retransmitted shards may have been
        journaled twice).  ``quarantined_epochs`` re-applies the
        controller's epoch verdicts, which live above the collector.
        Returns ``(frames_replayed, tail_truncated)``.
        """
        shards, truncated = self.spool.replay()
        self.quarantined_epochs.update(quarantined_epochs)
        for shard in shards:
            if shard.key() in self.seen:
                self.duplicates += 1
                # Re-derived verdict, same as the live dedupe path —
                # routed through _verdict so every replayed frame
                # yields exactly one ledger entry (nobody consumes
                # the ack; the original sender already got one).
                self._verdict(tick, shard.source, shard.seq, True, "duplicate")
                continue
            self._admit(shard, self._breaker(shard.source), tick)
        self.metrics.count(names.FLEET_WAL_REPLAYED, len(shards))
        if truncated:
            self.metrics.count(names.FLEET_WAL_TRUNCATIONS)
        return len(shards), truncated

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def quarantine_epoch(self, epoch: int) -> None:
        self.quarantined_epochs.add(epoch)
        self.metrics.count(names.FLEET_EPOCHS_QUARANTINED)
        self.tracer.instant("epoch-quarantine:{}".format(epoch), cat="fleet")

    def live_epochs(self) -> List[int]:
        return sorted(e for e in self.epochs if e not in self.quarantined_epochs)

    def merged_profile(self) -> Optional[ProfileDatabase]:
        """The decayed cross-epoch merge of all live evidence."""
        live = self.live_epochs()
        if not live:
            return None
        per_epoch = [ProfileDatabase.combine(self.epochs[e]) for e in live]
        if len(per_epoch) == 1:
            return per_epoch[0]
        return merge_profiles(per_epoch, decay=self.decay)

    def breaker_opens(self) -> int:
        return sum(b.opens for b in self.breakers.values())
