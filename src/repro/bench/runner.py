"""Experiment runners: one function per paper table/figure.

Each returns (headers, rows) ready for :func:`format_table`, plus any
series data.  The benchmarks in ``benchmarks/`` are thin wrappers that
time these and archive the printed tables; the functions are equally
usable from a REPL or the examples.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.callgraph import CATEGORIES, CallGraph
from ..core.config import HLOConfig
from ..linker.toolchain import SCOPES
from ..machine.pa8000 import simulate
from ..workloads.suite import all_workloads, get_workload
from .lab import VARIANTS, Lab
from .tables import geometric_mean

Rows = List[List]
Table = Tuple[List[str], Rows]

# The paper's Figure 7 simulates a subset of SPEC95; ours picks the four
# workloads with the most distinct machine-level behaviour.
FIG7_WORKLOADS = ("go", "li", "m88ksim", "vortex")
TABLE1_WORKLOADS = ("compress", "espresso", "go", "li", "m88ksim", "sc", "vortex")


def fig5_callsites() -> Table:
    """Figure 5: static call-site category mix per workload."""
    headers = ["benchmark"] + list(CATEGORIES) + ["total"]
    rows: Rows = []
    for w in all_workloads():
        program = w.compile()
        counts = CallGraph(program).category_counts()
        total = sum(counts.values())
        rows.append([w.name] + [counts[c] for c in CATEGORIES] + [total])
    return headers, rows


def table1_transforms(lab: Lab, workloads: Sequence[str] = TABLE1_WORKLOADS) -> Table:
    """Table 1: transform counts, compile cost, run time across scopes."""
    headers = [
        "benchmark", "scope", "inlines", "clones", "clone_repls",
        "deletions", "compile_units", "run_cycles",
    ]
    rows: Rows = []
    for name in workloads:
        for scope in SCOPES:
            build = lab.build(name, scope)
            metrics, _result = lab.measure(name, scope)
            rows.append(
                [
                    name,
                    scope,
                    build.report.inlines,
                    build.report.clones,
                    build.report.clone_replacements,
                    build.report.deletions,
                    build.stats.compile_units,
                    metrics.cycles,
                ]
            )
    return headers, rows


def fig6_speedups(lab: Lab, workloads: Optional[Sequence[str]] = None) -> Table:
    """Figure 6: speedup of inline / clone / both over neither, plus the
    paper's two suite geometric-mean rows (its SPECint92 and SPECint95
    summaries) and an overall row (baseline: cross-module + profile)."""
    if workloads:
        pool = [get_workload(n) for n in workloads]
    else:
        pool = all_workloads()
    headers = ["benchmark", "inline", "clone", "both"]
    rows: Rows = []
    by_suite: Dict[str, Dict[str, List[float]]] = {
        "92": {v: [] for v in VARIANTS if v != "neither"},
        "95": {v: [] for v in VARIANTS if v != "neither"},
        "all": {v: [] for v in VARIANTS if v != "neither"},
    }
    for w in pool:
        base_metrics, _ = lab.measure_variant(w.name, "neither")
        row: List = [w.name]
        for variant in ("inline", "clone", "both"):
            metrics, _ = lab.measure_variant(w.name, variant)
            speedup = base_metrics.cycles / metrics.cycles if metrics.cycles else 0.0
            row.append(speedup)
            by_suite["all"][variant].append(speedup)
            for suite in w.suites:
                if suite in by_suite:
                    by_suite[suite][variant].append(speedup)
        rows.append(row)
    for label, key in (("geomean-92", "92"), ("geomean-95", "95"), ("geomean", "all")):
        data = by_suite[key]
        if data["inline"]:
            rows.append(
                [label]
                + [geometric_mean(data[v]) for v in ("inline", "clone", "both")]
            )
    return headers, rows


def fig7_simulation(lab: Lab, workloads: Sequence[str] = FIG7_WORKLOADS) -> Table:
    """Figure 7: machine metrics for each variant, relative to neither."""
    headers = [
        "benchmark", "variant", "rel_cycles", "cpi", "rel_icache_acc",
        "icache_miss_rate", "rel_dcache_acc", "dcache_miss_rate",
        "rel_branches", "branch_miss_rate",
    ]
    rows: Rows = []
    for name in workloads:
        base_metrics, _ = lab.measure_variant(name, "neither")
        for variant in VARIANTS:
            metrics, _ = lab.measure_variant(name, variant)
            rel = metrics.relative_to(base_metrics)
            rows.append(
                [
                    name,
                    variant,
                    rel["relative_cycles"],
                    rel["cpi"],
                    rel["relative_icache_accesses"],
                    rel["icache_miss_rate"],
                    rel["relative_dcache_accesses"],
                    rel["dcache_miss_rate"],
                    rel["relative_branches"],
                    rel["branch_miss_rate"],
                ]
            )
    return headers, rows


def fig8_budget_curves(
    workload: str = "li",
    budgets: Sequence[float] = (25, 100, 200, 400, 1000),
    max_points: int = 14,
) -> Tuple[List[str], Rows, Dict[float, List[Tuple[int, float]]]]:
    """Figure 8: incremental benefit of successive transforms per budget.

    For each budget level, the HLO run is artificially stopped after N
    inlines/clone-replacements for increasing N; run time is measured
    at each stop.  Returns (headers, rows, series) where ``series``
    maps budget -> [(transforms performed, run cycles)].
    """
    w = get_workload(workload)
    lab = Lab()
    tc = lab.toolchain(workload)

    series: Dict[float, List[Tuple[int, float]]] = {}
    rows: Rows = []
    for budget in budgets:
        full_cfg = HLOConfig(budget_percent=budget)
        full = tc.build("cp", full_cfg)
        total = full.report.transform_count
        stops = _stop_points(total, max_points)
        curve: List[Tuple[int, float]] = []
        for stop in stops:
            cfg = replace(full_cfg, stop_after=stop)
            build = tc.build("cp", cfg)
            metrics, _ = build.run(w.ref_input, machine=lab.machine)
            performed = build.report.transform_count
            curve.append((performed, metrics.cycles))
            rows.append([budget, stop, performed, metrics.cycles])
        series[budget] = curve
    headers = ["budget", "stop_after", "performed", "run_cycles"]
    return headers, rows, series


def _stop_points(total: int, max_points: int) -> List[int]:
    if total <= 0:
        return [0]
    count = min(max_points, total + 1)
    points = sorted({round(i * total / (count - 1)) for i in range(count)})
    return [int(p) for p in points]


def ablation_rows(workloads: Sequence[str] = ("m88ksim", "li")) -> Table:
    """Design-choice ablations from DESIGN.md, one row per knob.

    ``static-heuristics`` is expressed as the ``c`` scope (profile off)
    rather than a config override, because ``Toolchain.build`` derives
    the profile flag from the scope name.
    """
    lab = Lab()
    base_cfg = lab.default_config()

    variants = [
        ("default", "cp", base_cfg),
        ("single-pass", "cp", replace(base_cfg, pass_limit=1)),
        ("no-cold-penalty", "cp", replace(base_cfg, cold_penalty=1.0)),
        ("no-clone-groups", "cp", replace(base_cfg, clone_groups=False)),
        ("no-clone-db", "cp", replace(base_cfg, clone_database=False)),
        ("no-reoptimize", "cp", replace(base_cfg, reoptimize=False)),
        ("static-heuristics", "c", base_cfg),
        # Section 5's contemplated extension; helps most at tight budgets
        # (freed quadratic headroom), can cost at generous ones.
        ("outlining", "cp", replace(base_cfg, enable_outlining=True)),
    ]
    headers = [
        "benchmark", "variant", "run_cycles", "inlines", "clones",
        "clone_repls", "compile_units", "code_size",
    ]
    rows: Rows = []
    for name in workloads:
        w = get_workload(name)
        tc = lab.toolchain(name)
        for label, scope, cfg in variants:
            build = tc.build(scope, cfg)
            metrics, _ = build.run(w.ref_input, machine=lab.machine)
            rows.append(
                [
                    name,
                    label,
                    metrics.cycles,
                    build.report.inlines,
                    build.report.clones,
                    build.report.clone_replacements,
                    build.stats.compile_units,
                    build.stats.code_size_instrs,
                ]
            )
    return headers, rows


def scope_anecdote(workload: str = "sc") -> Table:
    """Section 3.2's monotonic-improvement walk for one workload."""
    lab = Lab()
    headers = ["scope", "run_cycles", "speedup_vs_base"]
    rows: Rows = []
    base_cycles = None
    for scope in SCOPES:
        metrics, _ = lab.measure(workload, scope)
        if base_cycles is None:
            base_cycles = metrics.cycles
        rows.append([scope, metrics.cycles, base_cycles / metrics.cycles])
    return headers, rows
