"""Central metrics: counters, gauges, and p50/p95 histograms.

Before this module existed every subsystem kept its own ad-hoc tallies
— :class:`~repro.linker.toolchain.BuildDiagnostics` counted cache and
worker outcomes, :class:`~repro.core.report.HLOReport` counted
transforms, the module cache and analysis manager each kept private
hit/miss counters — and the stderr summary line re-derived numbers the
bench harness derived separately, which is exactly how the two drift.

:class:`MetricsRegistry` is the one sink.  Subsystems keep their cheap
local counters (they are part of rollback protocols and picklable
build results); :func:`collect_build_metrics` maps them onto canonical
metric names once, and **both** the human summary line
(:func:`format_build_summary`) and the machine outputs (``--metrics-out``
JSON, ``BENCH_smoke.json``) read from the same registry.

Metric names are dotted: ``hlo.*`` transform counts, ``analysis.*``
memoization, ``cache.*`` incremental compilation, ``resilience.*``
degradations, ``build.*`` whole-build facts, ``profile.*`` the
profile database feeding the build (collection mode, confidence,
coverage, staleness), ``obs.*`` the observability layer's own
accounting.  Histograms (timings, sizes) report count/sum/min/max/mean
plus p50 and p95.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from . import names
from .series import SeriesBank

METRICS_SCHEMA_VERSION = 1


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (not assumed sorted)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Histogram:
    """A value distribution summarized as count/sum/min/max/p50/p95."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def summary(self) -> dict:
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0}
        total = sum(self.values)
        return {
            "count": len(self.values),
            "sum": round(total, 6),
            "min": round(min(self.values), 6),
            "max": round(max(self.values), 6),
            "mean": round(total / len(self.values), 6),
            "p50": round(percentile(self.values, 0.50), 6),
            "p95": round(percentile(self.values, 0.95), 6),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one build."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.series = SeriesBank()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def record_series(self, name: str, tick: int, value: float) -> None:
        """One bounded time-series point (see :mod:`repro.obs.series`)."""
        self.series.record(name, tick, value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def value(self, name: str, default: float = 0) -> float:
        """The counter or gauge named ``name``."""
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def names(self) -> List[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary()
                for k in sorted(self._histograms)
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class NullMetrics:
    """API-compatible registry that records nothing (disabled path)."""

    enabled = False

    def count(self, name: str, delta: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record_series(self, name: str, tick: int, value: float) -> None:
        pass

    def value(self, name: str, default: float = 0) -> float:
        return default

    def histogram(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def to_dict(self) -> dict:
        return {"schema": METRICS_SCHEMA_VERSION, "counters": {},
                "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


def collect_build_metrics(
    diagnostics=None,
    report=None,
    stats=None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Map every subsystem's counters onto the canonical metric names.

    This is the *single* definition of how build numbers are derived;
    the stderr summary line and every JSON output call through here.
    ``diagnostics`` is a BuildDiagnostics, ``report`` an HLOReport,
    ``stats`` a BuildStats — any may be ``None``.
    """
    reg = registry if registry is not None else MetricsRegistry()
    if diagnostics is not None:
        reg.count(names.CACHE_HITS, diagnostics.cache_hits)
        reg.count(names.CACHE_MISSES, diagnostics.cache_misses)
        reg.count(names.CACHE_INVALIDATIONS, diagnostics.cache_invalidations)
        reg.count(names.CACHE_EVICTIONS_SIZE, diagnostics.cache_size_evictions)
        reg.gauge(names.CACHE_ENABLED, 1 if diagnostics.cache_enabled else 0)
        reg.gauge(names.CACHE_HIT_RATE, round(diagnostics.cache_hit_rate, 4))
        reg.count(names.BUILD_MODULES_COMPILED, diagnostics.modules_compiled)
        reg.count(names.BUILD_MODULES_FROM_CACHE, diagnostics.modules_from_cache)
        reg.gauge(names.BUILD_PARALLEL_JOBS, diagnostics.parallel_jobs)
        reg.count(
            names.BUILD_PARALLEL_FALLBACKS, len(diagnostics.parallel_fallbacks)
        )
        reg.count(names.BUILD_COMPILE_TIMEOUTS, diagnostics.compile_timeouts)
        reg.count(names.BUILD_WORKER_ERRORS, len(diagnostics.worker_errors))
        reg.count(names.BUILD_WARNINGS, len(diagnostics.warnings))
        reg.count(
            names.RESILIENCE_MODULE_FALLBACKS, len(diagnostics.module_fallbacks)
        )
        reg.gauge(
            names.RESILIENCE_PROFILE_FALLBACK,
            1 if diagnostics.profile_fallback else 0,
        )
    if report is not None:
        reg.count(names.HLO_INLINES, report.inlines)
        reg.count(names.HLO_CLONES, report.clones)
        reg.count(names.HLO_CLONE_REPLACEMENTS, report.clone_replacements)
        reg.count(names.HLO_DELETIONS, report.deletions)
        reg.count(names.HLO_PROMOTIONS, report.promotions)
        reg.count(names.HLO_DEVIRTUALIZED, report.devirtualized)
        reg.count(names.HLO_OUTLINES, report.outlines)
        reg.count(names.HLO_CLONE_DB_HITS, report.clone_db_hits)
        reg.count(names.HLO_SITES_CONSIDERED, report.sites_considered)
        reg.gauge(names.HLO_PASSES_RUN, report.passes_run)
        reg.count(names.HLO_REGIONS_FORMED, report.regions_formed)
        reg.count(
            names.HLO_REGION_BUDGET_EXHAUSTED, report.region_budget_exhausted
        )
        reg.gauge(names.HLO_INITIAL_COST, report.initial_cost)
        reg.gauge(names.HLO_FINAL_COST, report.final_cost)
        reg.gauge(names.HLO_BUDGET_LIMIT, report.budget_limit)
        reg.count(names.RESILIENCE_PASS_FAILURES, len(report.pass_failures))
        reg.count(
            names.RESILIENCE_QUARANTINED_PASSES, len(report.quarantined_passes)
        )
        reg.count(names.ANALYSIS_HITS, report.analysis_hits)
        reg.count(names.ANALYSIS_MISSES, report.analysis_misses)
        reg.count(names.ANALYSIS_INVALIDATIONS, report.analysis_invalidations)
    if stats is not None:
        reg.gauge(names.BUILD_COMPILE_UNITS, stats.compile_units)
        reg.gauge(names.BUILD_CODE_SIZE_INSTRS, stats.code_size_instrs)
        reg.gauge(names.BUILD_TRAIN_STEPS, stats.train_steps)
        reg.gauge(names.BUILD_TRAIN_RUNS, stats.train_runs)
        reg.gauge(names.BUILD_ANNOTATED_BLOCKS, stats.annotated_blocks)
        reg.gauge(names.BUILD_WALL_SECONDS, round(stats.wall_seconds, 6))
    return reg


def collect_profile_metrics(
    profile,
    program=None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Map a profile database's quality onto canonical ``profile.*`` names.

    ``profile`` is a :class:`~repro.profile.ProfileDatabase` (duck-typed
    so this layer needs no import of the profile package); ``program``
    optionally adds the against-a-compile figures (coverage, staleness
    match ratio).  The same names feed ``--metrics-out`` JSON, the
    build summary, and ``BENCH_smoke.json``.
    """
    reg = registry if registry is not None else MetricsRegistry()
    reg.gauge(names.PROFILE_SAMPLED, 1 if profile.sampled else 0)
    reg.gauge(names.PROFILE_RUNS, profile.training_runs)
    reg.gauge(names.PROFILE_STEPS, profile.training_steps)
    reg.gauge(names.PROFILE_BLOCKS, len(profile.block_counts))
    reg.gauge(names.PROFILE_SITES, len(profile.site_counts))
    reg.gauge(names.PROFILE_CONFIDENCE, round(profile.overall_confidence(), 4))
    if profile.sampled:
        reg.gauge(names.PROFILE_SAMPLE_RATE, round(profile.sample_rate, 2))
        reg.gauge(names.PROFILE_SAMPLES, profile.sample_count)
        reg.gauge(names.PROFILE_EVENTS, profile.sampled_events)
        reg.gauge(names.PROFILE_CONTEXT_DEPTH, profile.context_depth)
        reg.gauge(
            names.PROFILE_CONTEXTS,
            sum(len(per) for per in profile.context_counts.values()),
        )
    if program is not None:
        reg.gauge(names.PROFILE_COVERAGE, round(profile.coverage(program), 4))
        reg.gauge(
            names.PROFILE_MATCH_RATIO, round(profile.match_ratio(program), 4)
        )
    return reg


def collect_interp_metrics(
    interp,
    steps_per_sec: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Map one interpreter's execution onto canonical ``interp.*`` names.

    ``interp`` is a :class:`~repro.interp.Interpreter` that has finished
    at least one ``run()`` (duck-typed: ``engine``, ``steps``,
    ``plans_compiled``, ``plan_cache_hits``).  ``steps_per_sec`` is the
    caller's wall-clock measurement — the registry never times anything
    itself.  The same names feed ``--metrics-out`` JSON and the
    ``interp`` section of ``BENCH_smoke.json``.
    """
    reg = registry if registry is not None else MetricsRegistry()
    reg.gauge(names.INTERP_ENGINE, interp.engine)
    reg.gauge(names.INTERP_STEPS, interp.steps)
    reg.gauge(names.INTERP_PLANS_COMPILED, interp.plans_compiled)
    reg.gauge(names.INTERP_PLAN_CACHE_HITS, interp.plan_cache_hits)
    if steps_per_sec is not None:
        reg.gauge(names.INTERP_STEPS_PER_SEC, round(steps_per_sec, 1))
    return reg


def collect_runtime_metrics(
    profiler,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Map one guest-profiling run onto canonical ``runtime.*`` names.

    ``profiler`` is a :class:`~repro.obs.runtime.RuntimeProfiler` that
    has finished at least one run.  Same rule as the other collectors:
    this is the single derivation both the ``repro profile flame``
    summary and ``--metrics-out`` JSON read from.
    """
    reg = registry if registry is not None else MetricsRegistry()
    reg.gauge(names.RUNTIME_SAMPLES, profiler.samples)
    reg.gauge(names.RUNTIME_EVENTS, profiler.events)
    reg.gauge(names.RUNTIME_SAMPLE_RATE, round(profiler.effective_rate, 2))
    reg.gauge(names.RUNTIME_CONTEXTS, len(profiler.stack_samples))
    reg.gauge(
        names.RUNTIME_FRAMES,
        len({frame for stack in profiler.stack_samples for frame in stack}),
    )
    reg.gauge(names.RUNTIME_CALL_EDGES, len(profiler.call_edges))
    reg.gauge(names.RUNTIME_MAX_STACK_DEPTH, profiler.max_stack_depth)
    return reg


def format_build_summary(
    reg: MetricsRegistry,
    profile_reason: str = "",
    serial_fallback: bool = False,
) -> str:
    """The one-line build summary, read from the registry.

    Free-text context (the profile degradation reason, whether the
    worker pool fell back) rides alongside because a registry holds
    numbers, not prose.
    """
    line = (
        "resilience: {:.0f} pass failures, {:.0f} passes quarantined, "
        "{:.0f} modules fell back, profile: {}".format(
            reg.value(names.RESILIENCE_PASS_FAILURES),
            reg.value(names.RESILIENCE_QUARANTINED_PASSES),
            reg.value(names.RESILIENCE_MODULE_FALLBACKS),
            "static ({})".format(profile_reason) if profile_reason else "ok",
        )
    )
    if reg.value(names.CACHE_ENABLED):
        hits = reg.value(names.CACHE_HITS)
        lookups = hits + reg.value(names.CACHE_MISSES)
        line += ", cache: {:.0f}/{:.0f} hits ({:.0f}%)".format(
            hits, lookups, (hits / lookups * 100.0) if lookups else 0.0
        )
    jobs = reg.value(names.BUILD_PARALLEL_JOBS)
    if jobs > 1 or reg.value(names.BUILD_PARALLEL_FALLBACKS):
        line += ", jobs: {:.0f}{}".format(
            jobs, " (serial fallback)" if serial_fallback else ""
        )
    return line
