"""switch statement: dispatch, fallthrough, default, break."""

import pytest

from repro.frontend import CompileError

from ..conftest import run_main


def outputs(source, inputs=()):
    return list(run_main(source, inputs).output)


SWITCH = """
int classify(int x) {
  int r = 0;
  switch (x) {
    case 0:
      r = 100;
      break;
    case 1:
    case 2:
      r = 200;
      break;
    case -3:
      r = 300;
      break;
    default:
      r = -1;
      break;
  }
  return r;
}
int main() {
  print_int(classify(input(0)));
  return 0;
}
"""


class TestDispatch:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 100), (1, 200), (2, 200), (-3, 300), (99, -1), (-99, -1)],
    )
    def test_cases(self, value, expected):
        assert outputs(SWITCH, [value]) == [expected]

    def test_fallthrough(self):
        src = """
        int main() {
          switch (input(0)) {
            case 1:
              print_int(1);
            case 2:
              print_int(2);
            case 3:
              print_int(3);
              break;
            case 4:
              print_int(4);
          }
          print_int(99);
          return 0;
        }
        """
        assert outputs(src, [1]) == [1, 2, 3, 99]
        assert outputs(src, [2]) == [2, 3, 99]
        assert outputs(src, [3]) == [3, 99]
        assert outputs(src, [4]) == [4, 99]
        assert outputs(src, [5]) == [99]

    def test_default_position_in_middle(self):
        src = """
        int main() {
          switch (input(0)) {
            case 1: print_int(1); break;
            default: print_int(0);
            case 2: print_int(2); break;
          }
          return 0;
        }
        """
        # Default falls through into case 2, C-style.
        assert outputs(src, [7]) == [0, 2]
        assert outputs(src, [2]) == [2]
        assert outputs(src, [1]) == [1]

    def test_no_default_no_match_skips(self):
        src = """
        int main() {
          switch (input(0)) { case 1: print_int(1); }
          print_int(9);
          return 0;
        }
        """
        assert outputs(src, [5]) == [9]

    def test_empty_switch(self):
        assert outputs("int main() { switch (1) { } print_int(3); return 0; }") == [3]

    def test_nested_switch_and_loop_break(self):
        src = """
        int main() {
          for (int i = 0; i < 4; i++) {
            switch (i) {
              case 1: print_int(10); break;   // breaks the switch only
              case 3: print_int(30); break;
              default: print_int(i);
            }
          }
          return 0;
        }
        """
        assert outputs(src) == [0, 10, 2, 30]

    def test_continue_inside_switch_targets_loop(self):
        src = """
        int main() {
          for (int i = 0; i < 4; i++) {
            switch (i) {
              case 1:
              case 2:
                continue;
            }
            print_int(i);
          }
          return 0;
        }
        """
        assert outputs(src) == [0, 3]

    def test_scrutinee_evaluated_once(self):
        src = """
        int g = 0;
        int bump() { g = g + 1; return g; }
        int main() {
          switch (bump()) {
            case 5: print_int(5); break;
            case 1: print_int(1); break;
          }
          print_int(g);
          return 0;
        }
        """
        assert outputs(src) == [1, 1]

    def test_char_scrutinee(self):
        src = """
        int main() {
          switch (input(0)) {
            case 97: print_int(1); break;
            case 98: print_int(2); break;
          }
          return 0;
        }
        """
        assert outputs(src, [ord("a")]) == [1]


class TestErrors:
    def test_duplicate_case(self):
        with pytest.raises(CompileError):
            run_main("int main() { switch (1) { case 1: break; case 1: break; } return 0; }")

    def test_duplicate_default(self):
        with pytest.raises(CompileError):
            run_main("int main() { switch (1) { default: break; default: break; } return 0; }")

    def test_statement_before_label(self):
        with pytest.raises(CompileError):
            run_main("int main() { switch (1) { print_int(1); case 1: break; } return 0; }")

    def test_non_constant_case(self):
        with pytest.raises(CompileError):
            run_main("int main() { int x = 1; switch (1) { case x: break; } return 0; }")

    def test_float_scrutinee_rejected(self):
        with pytest.raises(CompileError):
            run_main("int main() { float f = 1.0; switch (f) { case 1: break; } return 0; }")

    def test_break_outside_rejected(self):
        with pytest.raises(CompileError):
            run_main("int main() { break; return 0; }")
