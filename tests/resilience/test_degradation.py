"""The Toolchain degradation ladder, end to end.

Each test pairs a recovery path with its ``--strict`` inversion:

==============================  ==========================  ================
fault                           default behavior            strict behavior
==============================  ==========================  ================
scalar pass raises              rollback + PassFailure      raises
corrupt/skewed isom             module-at-a-time fallback   StrictModeError
corrupt/missing/stale profile   static frequency fallback   StrictModeError
==============================  ==========================  ================
"""

import pytest

from repro.linker import Toolchain
from repro.resilience import (
    FaultInjector,
    InjectedFault,
    StrictModeError,
)

LIB = """
static int tripled(int x) { return x * 3; }
int api(int x) { return tripled(x) + 1; }
"""
MAIN = """
extern int api(int x);
int main() { print_int(api(input(0))); return 0; }
"""
SOURCES = [("lib", LIB), ("main", MAIN)]


def toolchain(**kwargs):
    return Toolchain(SOURCES, train_inputs=[[4]], **kwargs)


@pytest.fixture(scope="module")
def baseline():
    """Behavior of the healthy build, per scope, on a probe input."""
    tc = toolchain()
    return {
        scope: tc.build(scope).run([9])[1].behavior()
        for scope in ("base", "c", "p", "cp")
    }


class TestCrashingPass:
    def test_build_completes_and_behavior_is_unchanged(self, baseline):
        tc = toolchain(fault_injector=FaultInjector(seed=1, crash_pass="constprop"))
        result = tc.build("c")
        assert result.run([9])[1].behavior() == baseline["c"]
        assert result.report.pass_failures
        assert result.degraded
        assert "constprop" in result.report.quarantined_passes
        summary = result.diagnostics.summary(result.report)
        assert "passes quarantined" in summary

    def test_strict_fails_fast(self):
        tc = toolchain(
            strict=True,
            fault_injector=FaultInjector(seed=1, crash_pass="constprop"),
        )
        with pytest.raises(InjectedFault):
            tc.build("c")


class TestCorruptIsom:
    @pytest.mark.parametrize("mode", ["truncate", "garble", "version-skew"])
    def test_module_falls_back_with_warning(self, mode, baseline):
        tc = toolchain(
            fault_injector=FaultInjector(seed=5, isom_modules=["lib"], mode=mode)
        )
        result = tc.build("c")
        assert result.run([9])[1].behavior() == baseline["c"]
        assert result.diagnostics.module_fallbacks == ["lib"]
        assert any("lib" in w for w in result.diagnostics.warnings)
        assert result.degraded
        # The fallback module's boundary is sealed: nothing was inlined
        # or cloned across it, so the library's exported api survives.
        assert result.program.proc("api") is not None

    def test_healthy_modules_unaffected(self, baseline):
        # Only the targeted module degrades; 'main' still goes through
        # the isom path.
        tc = toolchain(fault_injector=FaultInjector(seed=5, isom_modules=["lib"]))
        result = tc.build("c")
        assert "main" not in result.diagnostics.module_fallbacks

    def test_strict_raises(self):
        tc = toolchain(
            strict=True,
            fault_injector=FaultInjector(seed=5, isom_modules=["lib"]),
        )
        with pytest.raises(StrictModeError) as err:
            tc.build("c")
        assert "lib" in str(err.value)


class TestCorruptProfile:
    @pytest.mark.parametrize("mode", ["truncate", "garble", "bitflip-checksum"])
    def test_static_fallback(self, mode, baseline):
        tc = toolchain(
            fault_injector=FaultInjector(seed=5, corrupt_profile_db=True, mode=mode)
        )
        result = tc.build("p")
        assert result.run([9])[1].behavior() == baseline["p"]
        assert result.diagnostics.profile_fallback
        assert result.profile is None
        assert result.stats.annotated_blocks == 0
        assert "profile: static" in result.diagnostics.summary(result.report)

    def test_strict_raises(self):
        tc = toolchain(
            strict=True,
            fault_injector=FaultInjector(seed=5, corrupt_profile_db=True),
        )
        with pytest.raises(StrictModeError):
            tc.build("p")


class TestStaleProfile:
    @staticmethod
    def stale_db():
        # A database whose every key refers to procedures that do not
        # exist in SOURCES — the shape of a profile trained against a
        # renamed/rewritten program.
        from repro.profile.database import ProfileDatabase

        db = ProfileDatabase()
        db.block_counts = {("ghost", "entry"): 100, ("phantom", "L1"): 40}
        db.training_runs = 1
        db.training_steps = 10
        return db

    def test_stale_profile_degrades_to_static(self, baseline):
        # Zero keys annotate, so the driver must treat the feedback as
        # stale and fall back to static estimation.
        tc = toolchain()
        tc._profile_cache = (self.stale_db(), 0.0)
        result = tc.build("p")
        assert result.run([9])[1].behavior() == baseline["p"]
        assert "stale profile" in result.diagnostics.profile_fallback
        assert result.stats.annotated_blocks == 0

    def test_strict_rejects_stale_profile(self):
        tc = toolchain(strict=True)
        tc._profile_cache = (self.stale_db(), 0.0)
        with pytest.raises(StrictModeError):
            tc.build("p")


class TestCombinedFaults:
    def test_everything_at_once_still_builds(self, baseline):
        # The full ladder in one build: crashing pass, corrupt isom,
        # corrupt profile — the build must still complete and compute
        # the same answers.
        injector = FaultInjector(
            seed=11,
            crash_pass="cse",
            isom_modules=["lib"],
            corrupt_profile_db=True,
        )
        tc = toolchain(fault_injector=injector)
        result = tc.build("cp")
        assert result.run([9])[1].behavior() == baseline["cp"]
        assert result.degraded
        assert result.diagnostics.module_fallbacks == ["lib"]
        assert result.diagnostics.profile_fallback
        assert result.report.pass_failures
        # Every configured fault actually fired.
        kinds = {entry.split(":")[0] for entry in injector.injected}
        assert kinds == {"crash", "isom", "profile"}


class TestHealthyBuildDiagnostics:
    def test_clean_build_reports_clean(self):
        result = toolchain().build("cp")
        assert not result.degraded
        assert result.diagnostics.module_fallbacks == []
        assert result.diagnostics.profile_fallback == ""
        assert result.diagnostics.warnings == []
        summary = result.diagnostics.summary(result.report)
        assert "0 pass failures" in summary
        assert "profile: ok" in summary
