"""MetricsRegistry: recording, percentiles, the canonical collection."""

import json

from repro.core.report import HLOReport
from repro.linker.toolchain import BuildDiagnostics, BuildStats
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    collect_build_metrics,
    format_build_summary,
    percentile,
)
from repro.obs.validate import validate_metrics


class TestPrimitives:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.count("cache.hits")
        reg.count("cache.hits", 4)
        assert reg.value("cache.hits") == 5

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("hlo.final_cost", 100.0)
        reg.gauge("hlo.final_cost", 42.0)
        assert reg.value("hlo.final_cost") == 42.0

    def test_histogram_percentiles(self):
        hist = Histogram()
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert 50.0 <= summary["p50"] <= 51.0
        assert 95.0 <= summary["p95"] <= 96.0

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.95) == 7.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_names_are_sorted_union(self):
        reg = MetricsRegistry()
        reg.observe("z.hist", 1.0)
        reg.count("a.counter")
        reg.gauge("m.gauge", 2)
        assert reg.names() == ["a.counter", "m.gauge", "z.hist"]


class TestExport:
    def test_to_dict_validates(self):
        reg = MetricsRegistry()
        reg.count("hlo.inlines", 3)
        reg.gauge("build.parallel_jobs", 4)
        reg.observe("frontend.module_compile_s", 0.01)
        assert validate_metrics(reg.to_dict()) == []

    def test_write_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.count("cache.hits", 2)
        path = tmp_path / "metrics.json"
        reg.write(str(path))
        obj = json.loads(path.read_text())
        assert obj["counters"]["cache.hits"] == 2
        assert validate_metrics(obj) == []


class TestNullPath:
    def test_null_metrics_records_nothing(self):
        NULL_METRICS.count("x")
        NULL_METRICS.gauge("y", 5)
        NULL_METRICS.observe("z", 1.0)
        assert NULL_METRICS.enabled is False
        assert NULL_METRICS.names() == []
        assert NULL_METRICS.value("x") == 0
        assert NULL_METRICS.histogram("z") is None


class TestCollection:
    def diagnostics(self):
        diag = BuildDiagnostics()
        diag.record_cache(hits=3, misses=1, invalidations=1)
        diag.parallel_jobs = 4
        return diag

    def test_collect_maps_canonical_names(self):
        report = HLOReport()
        report.inlines = 5
        report.sites_considered = 40
        stats = BuildStats(scope="cp", compile_units=123.0, train_steps=0,
                           train_runs=0, code_size_instrs=77)
        reg = collect_build_metrics(self.diagnostics(), report, stats)
        assert reg.value("cache.hits") == 3
        assert reg.value("hlo.inlines") == 5
        assert reg.value("hlo.sites_considered") == 40
        assert reg.value("build.compile_units") == 123.0
        assert reg.value("build.code_size_instrs") == 77

    def test_collect_into_existing_registry(self):
        reg = MetricsRegistry()
        reg.count("resilience.rollbacks", 2)
        out = collect_build_metrics(self.diagnostics(), registry=reg)
        assert out is reg
        assert reg.value("resilience.rollbacks") == 2
        assert reg.value("cache.hits") == 3

    def test_summary_matches_diagnostics_summary(self):
        # Satellite guarantee: the stderr line and the registry cannot
        # drift, because BuildDiagnostics.summary() *is* the registry
        # formatting.
        diag = self.diagnostics()
        report = HLOReport()
        assert diag.summary(report) == format_build_summary(
            collect_build_metrics(diag, report),
            profile_reason=diag.profile_fallback,
            serial_fallback=bool(diag.parallel_fallbacks),
        )

    def test_summary_text_shape(self):
        diag = self.diagnostics()
        line = diag.summary(HLOReport())
        assert "profile: ok" in line
        assert "cache: 3/4 hits (75%)" in line
        assert "jobs: 4" in line
