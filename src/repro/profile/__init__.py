"""Profile-based optimization support: instrumentation, database, PGO."""

from .annotate import annotate_program, clear_annotations
from ..resilience.errors import ProfileFormatError
from .database import PROFILEDB_VERSION, ProfileDatabase
from .instrument import ProbeMap, instrument_program, strip_probes
from .pgo import train

__all__ = [
    "ProbeMap",
    "PROFILEDB_VERSION",
    "ProfileDatabase",
    "ProfileFormatError",
    "annotate_program",
    "clear_annotations",
    "instrument_program",
    "strip_probes",
    "train",
]
