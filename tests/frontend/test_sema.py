"""Semantic analysis: symbol tables, mangling, declaration checking."""

import pytest

from repro.frontend import CompileError, analyze_unit, parse_source


def analyze(source, module="m"):
    return analyze_unit(parse_source(source, module), module)


class TestFunctionDeclarations:
    def test_static_mangling(self):
        syms = analyze("static int f() { return 0; } int g() { return 0; }")
        assert syms.lookup_func("f").ir_name == "f$m"
        assert syms.lookup_func("g").ir_name == "g"

    def test_proto_then_definition(self):
        syms = analyze("int f(int x); int f(int x) { return x; }")
        assert syms.lookup_func("f").defined

    def test_proto_signature_conflict(self):
        with pytest.raises(CompileError):
            analyze("int f(int x); int f(float x) { return 0; }")

    def test_redefinition_rejected(self):
        with pytest.raises(CompileError):
            analyze("int f() { return 0; } int f() { return 1; }")

    def test_static_mismatch_rejected(self):
        with pytest.raises(CompileError):
            analyze("int f(); static int f() { return 0; }")

    def test_builtin_redeclaration_rejected(self):
        with pytest.raises(CompileError):
            analyze("int print_int(int x) { return x; }")

    def test_inline_noinline_conflict(self):
        with pytest.raises(CompileError):
            analyze("inline noinline int f() { return 0; }")

    def test_qualifier_to_attr_mapping(self):
        syms = analyze(
            "inline int a() { return 0; } noinline int b() { return 0; } "
            "noclone int c() { return 0; } reassoc float d() { return 0.0; }"
        )
        assert "always_inline" in syms.lookup_func("a").attrs
        assert "noinline" in syms.lookup_func("b").attrs
        assert "noclone" in syms.lookup_func("c").attrs
        assert "fp_reassoc" in syms.lookup_func("d").attrs

    def test_varargs_signature(self):
        syms = analyze("int f(int x, ...);")
        assert syms.lookup_func("f").sig.varargs


class TestGlobalDeclarations:
    def test_static_global_mangled(self):
        syms = analyze("static int g; int h;")
        assert syms.lookup_global("g").ir_name == "g$m"
        assert syms.lookup_global("h").ir_name == "h"

    def test_extern_then_definition(self):
        syms = analyze("extern int g; int g = 5;")
        assert not syms.lookup_global("g").extern

    def test_definition_then_extern_kept(self):
        syms = analyze("int g = 5; extern int g;")
        assert not syms.lookup_global("g").extern

    def test_redefinition_rejected(self):
        with pytest.raises(CompileError):
            analyze("int g; int g;")

    def test_function_variable_collision(self):
        with pytest.raises(CompileError):
            analyze("int f() { return 0; } int f;")
        with pytest.raises(CompileError):
            analyze("int f; int f() { return 0; }")

    def test_array_metadata(self):
        syms = analyze("int a[7];")
        info = syms.lookup_global("a")
        assert info.is_array and info.array_size == 7
