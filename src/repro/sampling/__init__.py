"""Sampled, context-sensitive profile collection and lifecycle management.

The exact-instrumentation pipeline (:mod:`repro.profile`) is one end of
the PGO spectrum: perfect counts, paid for with an instrumenting
compile and a slowed training run, and brittle the moment sources move.
This package is the production end:

- :class:`SamplingSink` / :class:`SampledProfile` /
  :func:`sample_train` — a sampling profiler on the interpreter's
  event stream (every ~N steps with seeded jitter) that records k-deep
  calling contexts per sample and scales observations into a
  :class:`~repro.profile.ProfileDatabase` with per-count confidence;
- :mod:`~repro.sampling.lifecycle` — weighted/decayed multi-run
  merging, fingerprint-based per-procedure staleness detection with
  salvage remapping, and the quality report behind
  ``repro profile {report,check}``.
"""

from ..resilience.errors import ProfileConfidenceError
from .lifecycle import (
    DEFAULT_MIN_MATCH,
    FRESH,
    MIN_PROFILE_CONFIDENCE,
    MISSING,
    STALE,
    ProcStaleness,
    StalenessReport,
    assess_staleness,
    format_quality_report,
    merge_profiles,
    quality_report,
    remap_database,
    require_confident,
)
from .sampler import (
    DEFAULT_CONTEXT_DEPTH,
    DEFAULT_SAMPLE_RATE,
    SampledProfile,
    SamplingSink,
    sample_run,
    sample_train,
)

__all__ = [
    "DEFAULT_CONTEXT_DEPTH",
    "DEFAULT_MIN_MATCH",
    "DEFAULT_SAMPLE_RATE",
    "FRESH",
    "MIN_PROFILE_CONFIDENCE",
    "MISSING",
    "STALE",
    "ProcStaleness",
    "ProfileConfidenceError",
    "SampledProfile",
    "SamplingSink",
    "StalenessReport",
    "assess_staleness",
    "format_quality_report",
    "merge_profiles",
    "quality_report",
    "remap_database",
    "require_confident",
    "sample_run",
    "sample_train",
]
