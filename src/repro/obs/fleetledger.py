"""The fleet decision ledger: why the collector and controller acted.

The inlining ledger (:mod:`repro.obs.ledger`) answers "why did HLO
transform (or not) this call site"; this module answers the same
question for the fleet: why was a shard ACKed, NACKed, or
quarantined, why did a circuit breaker trip, why did the controller
rebuild, swap, roll back, or sit on its hands.  Without it the fleet
runs dark — a converged run and a run that silently dropped half its
evidence produce the same final Jaccard.

Completeness is by construction, exactly as in the inlining ledger:

- the collector's **only** :class:`~repro.fleet.collector.ShardAck`
  factory is a helper that appends the verdict to this ledger in the
  same call, so a verdict cannot be issued without being recorded;
- the controller's :meth:`~repro.fleet.controller.ReoptimizeController.consider`
  routes **every** return path through one recording call, so each
  round's decision — including the "did nothing because cooldown"
  non-decisions that are the hardest to debug after the fact — lands
  in the ledger.

Entries carry machine-readable reason *codes* (the first
colon-separated segment of the existing reason strings) with the rest
as free-text detail, so ``repro fleet explain --json`` is queryable
without parsing prose.  Three entry kinds:

========== ============ ==========================================
kind       actor        meaning
========== ============ ==========================================
verdict    collector    one ShardAck (ACK/NACK/quarantine/dedupe)
breaker    collector    a circuit-breaker state transition
decision   controller   one per-round gate/rebuild/swap/rollback
========== ============ ==========================================

Surfaced by ``repro fleet explain`` (text) and ``--json`` /
``--fleet-ledger-out`` (JSONL, one header object then one entry per
line), validated by ``repro.obs.validate --fleet-ledger``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

FLEET_LEDGER_SCHEMA_VERSION = 1

ENTRY_KINDS = ("verdict", "breaker", "decision")

#: Verdict codes the collector can issue (ShardAck reason prefixes).
COLLECTOR_CODES = (
    "accepted",        # merged into its epoch bucket
    "duplicate",       # (source, seq) already seen; ACK to stop resend
    "breaker-open",    # NACKed unread: the source's breaker is OPEN
    "transit",         # frame CRC / framing damage; NACK for retry
    "quarantined",     # ACKed but never merged (see detail)
)

#: Breaker transition codes.
BREAKER_CODES = ("open", "half-open", "close")

#: Per-round controller decision codes (ControllerAction reason prefixes).
CONTROLLER_CODES = (
    "cooldown",                # post-rollback rebuild suppression
    "no-evidence",             # nothing merged yet
    "low-confidence",          # merged evidence below the floor
    "drift-below-threshold",   # evidence fresh but stable
    "swap",                    # rebuilt, canary passed, deployed
    "rollback",                # rebuilt, canary failed (see detail)
)


def split_reason(reason: str) -> Tuple[str, str]:
    """``"transit:crc"`` -> ``("transit", "crc")``; codeless reasons
    get an empty detail."""
    code, _sep, detail = reason.partition(":")
    return code, detail


class FleetDecision:
    """One recorded fleet event (verdict, breaker transition, decision)."""

    __slots__ = (
        "tick", "actor", "kind", "code", "detail",
        "source", "seq", "accepted", "epoch", "build_id",
    )

    def __init__(
        self,
        tick: Optional[int],
        actor: str,
        kind: str,
        code: str,
        detail: str = "",
        source: str = "",
        seq: Optional[int] = None,
        accepted: Optional[bool] = None,
        epoch: Optional[int] = None,
        build_id: Optional[int] = None,
    ):
        self.tick = tick
        self.actor = actor  # 'collector' | 'controller'
        self.kind = kind    # 'verdict' | 'breaker' | 'decision'
        self.code = code
        self.detail = detail
        self.source = source
        self.seq = seq
        self.accepted = accepted
        self.epoch = epoch
        self.build_id = build_id

    def to_dict(self) -> dict:
        record = {
            "tick": self.tick,
            "actor": self.actor,
            "kind": self.kind,
            "code": self.code,
        }
        if self.detail:
            record["detail"] = self.detail
        if self.source:
            record["source"] = self.source
        if self.seq is not None:
            record["seq"] = self.seq
        if self.accepted is not None:
            record["accepted"] = self.accepted
        if self.epoch is not None:
            record["epoch"] = self.epoch
        if self.build_id is not None:
            record["build_id"] = self.build_id
        return record


class NullFleetLedger:
    """Disabled fast path: every record is a no-op."""

    enabled = False
    total = 0

    def verdict(self, tick, source, seq, accepted, reason) -> None:
        pass

    def transition(self, tick, source, state) -> None:
        pass

    def decision(self, tick, epoch, reason, build_id=None) -> None:
        pass


NULL_FLEET_LEDGER = NullFleetLedger()


class FleetLedger:
    """Every collector verdict and controller decision of one fleet run."""

    enabled = True

    def __init__(self) -> None:
        self.entries: List[FleetDecision] = []

    # ------------------------------------------------------------------
    # Recording — one method per decision site family
    # ------------------------------------------------------------------

    def verdict(
        self, tick: int, source: str, seq: int, accepted: bool, reason: str
    ) -> None:
        """One collector ShardAck; ``reason`` is the ack's reason string."""
        code, detail = split_reason(reason)
        self.entries.append(
            FleetDecision(
                tick, "collector", "verdict", code, detail,
                source=source, seq=seq, accepted=accepted,
            )
        )

    def transition(self, tick: int, source: str, state: str) -> None:
        """One circuit-breaker state transition for ``source``."""
        self.entries.append(
            FleetDecision(tick, "collector", "breaker", state, source=source)
        )

    def decision(
        self,
        tick: Optional[int],
        epoch: int,
        reason: str,
        build_id: Optional[int] = None,
    ) -> None:
        """One per-round controller decision (gate, swap, or rollback)."""
        code, detail = split_reason(reason)
        self.entries.append(
            FleetDecision(
                tick, "controller", "decision", code, detail,
                epoch=epoch, build_id=build_id,
            )
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def verdicts(self) -> int:
        return sum(1 for e in self.entries if e.kind == "verdict")

    @property
    def transitions(self) -> int:
        return sum(1 for e in self.entries if e.kind == "breaker")

    @property
    def decisions(self) -> int:
        return sum(1 for e in self.entries if e.kind == "decision")

    def code_counts(self) -> Dict[str, int]:
        """``"<kind>.<code>" -> count`` over all entries."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            key = "{}.{}".format(entry.kind, entry.code)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def header(self) -> dict:
        return {
            "schema": FLEET_LEDGER_SCHEMA_VERSION,
            "kind": "fleet-ledger",
            "entries": self.total,
            "verdicts": self.verdicts,
            "transitions": self.transitions,
            "decisions": self.decisions,
            "codes": self.code_counts(),
        }

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(entry.to_dict(), sort_keys=True) for entry in self.entries
        )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def format_text(self, limit: Optional[int] = None) -> str:
        """The human-readable ``repro fleet explain`` report."""
        codes = self.code_counts()
        lines = [
            "fleet ledger: {} entries ({} collector verdicts, "
            "{} breaker transitions, {} controller decisions)".format(
                self.total, self.verdicts, self.transitions, self.decisions
            )
        ]
        if codes:
            lines.append("by code:")
            for key in sorted(codes, key=lambda k: (-codes[k], k)):
                lines.append("  {:28s} {}".format(key, codes[key]))
        shown = self.entries if limit is None else self.entries[:limit]
        for entry in shown:
            where = entry.source
            if entry.seq is not None:
                where += "#{}".format(entry.seq)
            if entry.epoch is not None:
                where = "epoch {}".format(entry.epoch)
            if entry.build_id is not None:
                where += " build {}".format(entry.build_id)
            tail = ":{}".format(entry.detail) if entry.detail else ""
            lines.append(
                "  tick {:>3} {:10s} {:8s} {:18s}{} {}".format(
                    "-" if entry.tick is None else entry.tick,
                    entry.actor, entry.kind, entry.code + tail,
                    "" if entry.accepted is None else
                    (" ACK" if entry.accepted else " NACK"),
                    where,
                )
            )
        if limit is not None and len(self.entries) > limit:
            lines.append("  ... {} more".format(len(self.entries) - limit))
        return "\n".join(lines)
