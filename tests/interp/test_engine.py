"""The pre-decoded engine: selection, plan caching, capabilities, metrics."""

import pytest

from repro.frontend import compile_program
from repro.interp import (
    DEFAULT_ENGINE,
    ENGINES,
    CountingSink,
    Interpreter,
    RecordingSink,
    run_program,
)
from repro.ir import Imm
from repro.ir.instructions import Ret

from ..conftest import single_proc_program

COUNT_SRC = [("main", """
int helper(int x) { return x * 3 + 1; }
int main() {
  int acc = 0;
  for (int i = 0; i < 20; i++) acc = acc + helper(i);
  print_int(acc);
  return acc % 128;
}
""")]


class TestEngineSelection:
    def test_default_engine_is_fast(self):
        assert DEFAULT_ENGINE == "fast"
        assert Interpreter(single_proc_program(lambda b: b.ret(1))).engine == "fast"

    def test_engines_tuple(self):
        assert set(ENGINES) == {"fast", "codegen", "reference"}

    def test_explicit_reference(self):
        program = single_proc_program(lambda b: b.ret(5))
        interp = Interpreter(program, engine="reference")
        assert interp.engine == "reference"
        assert interp.run().exit_code == 5

    def test_unknown_engine_rejected(self):
        program = single_proc_program(lambda b: b.ret(1))
        with pytest.raises(ValueError):
            Interpreter(program, engine="turbo")

    def test_run_program_engine_kwarg(self):
        program = compile_program(COUNT_SRC)
        fast = run_program(program, engine="fast")
        ref = run_program(program, engine="reference")
        assert fast.behavior() == ref.behavior()
        assert fast.steps == ref.steps


class TestPlanCache:
    def test_plans_cached_across_runs(self):
        program = compile_program(COUNT_SRC)
        first = Interpreter(program)
        first.run()
        assert first.plans_compiled > 0
        second = Interpreter(program)
        second.run()
        assert second.plans_compiled == 0
        assert second.plan_cache_hits > 0

    def test_reference_engine_reports_no_plans(self):
        program = compile_program(COUNT_SRC)
        interp = Interpreter(program, engine="reference")
        interp.run()
        assert interp.plans_compiled == 0
        assert interp.plan_cache_hits == 0

    def test_mutated_procedure_recompiles(self):
        # A stale plan executing would return the old constant; the
        # fingerprint check must notice the IR changed underneath it.
        program = single_proc_program(lambda b: b.ret(7))
        assert run_program(program).exit_code == 7
        proc = program.proc("main")
        for block in proc.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Ret):
                    instr.value = Imm(9)
        result = run_program(program)
        assert result.exit_code == 9

    def test_invalidate_plans_resets_cache(self):
        program = compile_program(COUNT_SRC)
        Interpreter(program).run()
        assert program._plan_cache is not None
        program.invalidate_plans()
        assert program._plan_cache is None
        interp = Interpreter(program)
        interp.run()
        assert interp.plans_compiled > 0

    def test_globals_change_flushes_plans(self):
        # Plans embed resolved global addresses, so a new global (which
        # shifts the layout signature) must flush the whole cache.
        program = compile_program(COUNT_SRC)
        Interpreter(program).run()
        from repro.ir.module import GlobalVar

        mod = next(iter(program.modules.values()))
        mod.globals["late_g"] = GlobalVar("late_g", size=4)
        interp = Interpreter(program)
        interp.run()
        assert interp.plans_compiled > 0
        assert interp.plan_cache_hits == 0

    def test_per_sink_mode_plans(self):
        # A counting sink needs a different specialization than no sink;
        # both plans coexist in the cache under their mode keys.
        program = compile_program(COUNT_SRC)
        no_sink = Interpreter(program)
        no_sink.run()
        counting = Interpreter(program, sink=CountingSink())
        counting.run()
        assert counting.plans_compiled > 0  # not served by the no-sink plans
        again = Interpreter(program, sink=CountingSink())
        again.run()
        assert again.plans_compiled == 0


class TestCapabilityNegotiation:
    def test_counting_sink_batched_results_match(self):
        program = compile_program(COUNT_SRC)
        assert CountingSink.batch_instr is True
        fast_sink, ref_sink = CountingSink(), CountingSink()
        run_program(program, sink=fast_sink, engine="fast")
        run_program(program, sink=ref_sink, engine="reference")
        assert fast_sink.instrs == ref_sink.instrs
        assert fast_sink.branches == ref_sink.branches
        assert fast_sink.calls == ref_sink.calls
        assert fast_sink.returns == ref_sink.returns
        assert fast_sink.mems == ref_sink.mems

    def test_recording_sink_streams_match(self):
        program = compile_program(COUNT_SRC)
        fast_sink, ref_sink = RecordingSink(), RecordingSink()
        run_program(program, sink=fast_sink, engine="fast")
        run_program(program, sink=ref_sink, engine="reference")
        assert fast_sink.events == ref_sink.events

    def test_sampling_sink_declares_capabilities(self):
        from repro.sampling.sampler import SamplingSink

        assert SamplingSink.needs_branch is False
        assert SamplingSink.needs_mem is False
        assert SamplingSink.batch_instr is False  # exact sample placement

    def test_pa8000_parity_across_engines(self):
        from repro.machine.pa8000 import simulate

        program = compile_program(COUNT_SRC)
        fast_metrics, fast_result = simulate(program, engine="fast")
        ref_metrics, ref_result = simulate(program, engine="reference")
        assert fast_result.behavior() == ref_result.behavior()
        assert fast_metrics.cycles == ref_metrics.cycles
        assert fast_metrics.instructions == ref_metrics.instructions


class TestToolchainAndMetrics:
    def test_toolchain_threads_engine(self):
        from repro.linker.toolchain import Toolchain

        fast = Toolchain(COUNT_SRC, train_inputs=[[]]).build("cp")
        ref = Toolchain(COUNT_SRC, train_inputs=[[]], engine="reference").build("cp")
        assert fast.engine == "fast"
        assert ref.engine == "reference"
        assert fast.run()[1].behavior() == ref.run()[1].behavior()

    def test_collect_interp_metrics_names(self):
        from repro.obs.metrics import collect_interp_metrics

        program = compile_program(COUNT_SRC)
        interp = Interpreter(program)
        interp.run()
        reg = collect_interp_metrics(interp, steps_per_sec=123456.7)
        assert reg.value("interp.engine") == "fast"
        assert reg.value("interp.steps") == interp.steps
        assert reg.value("interp.plans_compiled") == interp.plans_compiled
        assert reg.value("interp.plan_cache_hits") == interp.plan_cache_hits
        assert reg.value("interp.steps_per_sec") == 123456.7

    def test_validate_bench_requires_interp_section(self):
        from repro.obs.validate import validate_bench

        report = {
            "schema": 4,
            "workloads": {"w": {"compile_units": 1, "cycles": 2,
                                "wall_s": 0.1, "checksum": "x"}},
            "totals": {}, "build": {}, "cache": {}, "observability": {},
            "sampling": {"rate": 100, "min_overlap": 0.9, "mean_overlap": 1.0,
                         "workloads": {"w": {"overlap": 1.0,
                                             "exact_decisions": 1,
                                             "sampled_decisions": 1,
                                             "confidence": 1.0}}},
            "fleet": {"rounds": 10, "seed": 7, "fault_rate": 0.25,
                      "min_jaccard": 1.0, "mean_jaccard": 1.0,
                      "workloads": {"w": {"jaccard": 1.0, "rebuilds": 2,
                                          "rollbacks": 1, "swaps": 1,
                                          "quarantined_epochs": 1,
                                          "served_rolled_back": 0}}},
        }
        problems = validate_bench(report)
        assert any("interp" in p for p in problems)
        report["interp"] = {
            "engine": "fast", "min_speedup": 2.0, "mean_speedup": 2.4,
            "plans_compiled": 3, "plan_cache_hits": 9,
            "codegen_min_speedup": 2.1, "codegen_mean_speedup": 2.5,
            "codegen_plans_compiled": 3, "codegen_plan_cache_hits": 9,
            "workloads": {"w": {"steps": 100, "steps_per_sec": 5.0,
                                "reference_steps_per_sec": 2.0,
                                "speedup": 2.5,
                                "codegen_steps_per_sec": 12.0,
                                "codegen_speedup": 2.4}},
        }
        problems = validate_bench(report)
        assert any("runtime" in p for p in problems)
        report["runtime"] = {
            "overhead_ratio": 1.0, "max_overhead": 1.02,
            "contexts": 5, "samples": 100, "engines_consistent": True,
        }
        problems = validate_bench(report)
        assert any("serve" in p for p in problems)
        dist = {"count": 8, "p50": 1.0, "p95": 2.0, "p99": 3.0, "max": 4.0}
        report["serve"] = {
            "schema": 1, "clients": 16, "requests": 64, "errors": 0,
            "busy": 0, "wall_s": 1.0, "throughput_rps": 64.0,
            "builds": 3, "result_hits": 16, "dedupe_hits": 13,
            "shed": 0, "timeouts": 0, "server_requests": 65,
            "workloads": ["w"], "artifacts_identical": True,
            "latency_ms": dict(dist), "cold_build_ms": dict(dist),
            "warm_rebuild_ms": dict(dist), "run_ms": dict(dist),
        }
        problems = validate_bench(report)
        assert any("scale" in p for p in problems)
        strategy = {
            "strategy_wall_s": 0.5, "strategy_peak_kb": 100.0,
            "sites_considered": 10, "transforms": 3, "final_size": 200,
        }
        report["scale"] = {
            "tiers": {
                "small": {"n_modules": 10,
                          "strategies": {"global": dict(strategy),
                                         "demand": dict(strategy)}},
                "mega": {"n_modules": 60,
                         "strategies": {"global": dict(strategy),
                                        "demand": dict(strategy)}},
            },
            "ratios": {"wall_growth_ratio": 0.5, "peak_growth_ratio": 0.5,
                       "sites_growth_ratio": 0.1},
            "parity": {"w": {"global_cycles": 100.0, "demand_cycles": 99.0,
                             "ratio": 0.99}},
            "gates": {"sites_sublinear": True, "cycles_parity": True},
        }
        assert validate_bench(report) == []

    def test_bench_check_gates_speedup_regression(self):
        from repro.bench.smoke import check

        baseline = {
            "workloads": {},
            "interp": {"workloads": {"w": {"speedup": 2.5,
                                           "steps_per_sec": 1000.0}}},
        }
        good = {
            "workloads": {},
            "interp": {"workloads": {"w": {"speedup": 2.4,
                                           "steps_per_sec": 100.0}}},
        }
        bad = {
            "workloads": {},
            "interp": {"workloads": {"w": {"speedup": 1.5,
                                           "steps_per_sec": 1000.0}}},
        }
        assert check(good, baseline) == []
        assert any("speedup" in f for f in check(bad, baseline))
        # Absolute steps/sec only gates behind the wall-time flag.
        assert any(
            "steps_per_sec" in f
            for f in check(good, baseline, gate_wall_time=True)
        )
