#!/usr/bin/env python
"""Quickstart: compile a two-module program, run HLO, watch it improve.

This walks the whole pipeline on a tiny program:

1. compile minic sources to IR,
2. run the program on the interpreter (the "workstation"),
3. run HLO (the paper's aggressive inliner/cloner),
4. run again and compare machine-level metrics.

Run:  python examples/quickstart.py
"""

from repro import HLOConfig, compile_program, run_hlo, simulate

MATH_MODULE = """
// A library module: small helpers a caller would love to inline.
static int square(int x) { return x * x; }

int poly(int x) { return square(x) + 3 * x + 1; }

int smooth(int a, int b, int mode) {
  // mode selects the blend; callers pass a constant -> clone bait.
  if (mode == 0) return (a + b) / 2;
  if (mode == 1) return a + (b - a) / 4;
  return b;
}
"""

MAIN_MODULE = """
extern int poly(int x);
extern int smooth(int a, int b, int mode);

int main() {
  int acc = 0;
  for (int i = 0; i < 200; i++) {
    acc = smooth(acc, poly(i), 0);
  }
  print_int(acc);
  return 0;
}
"""


def main() -> None:
    sources = [("mathlib", MATH_MODULE), ("app", MAIN_MODULE)]

    # --- Before HLO -----------------------------------------------------
    program = compile_program(sources)
    before_metrics, before_run = simulate(program)
    print("before HLO: output={} cycles={:.0f} instructions={}".format(
        list(before_run.output), before_metrics.cycles, before_metrics.instructions))

    # --- HLO ------------------------------------------------------------
    program = compile_program(sources)  # fresh IR
    report = run_hlo(program, HLOConfig(budget_percent=400))
    print("\nHLO report:")
    print("  inlines            ", report.inlines)
    print("  clones             ", report.clones)
    print("  clone replacements ", report.clone_replacements)
    print("  routines deleted   ", report.deletions)
    print("  compile cost       {:.0f} -> {:.0f} (limit {:.0f})".format(
        report.initial_cost, report.final_cost, report.budget_limit))

    # --- After HLO ------------------------------------------------------
    after_metrics, after_run = simulate(program)
    assert after_run.behavior() == before_run.behavior(), "behaviour changed!"
    print("\nafter HLO:  output={} cycles={:.0f} instructions={}".format(
        list(after_run.output), after_metrics.cycles, after_metrics.instructions))
    print("\nspeedup: {:.2f}x cycles, {:.2f}x instructions retired".format(
        before_metrics.cycles / after_metrics.cycles,
        before_metrics.instructions / after_metrics.instructions))

    print("\nremaining procedures:", [p.name for p in program.all_procs()])


if __name__ == "__main__":
    main()
