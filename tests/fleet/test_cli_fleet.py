"""`repro fleet run` end to end through the CLI driver."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.validate import validate_metrics


class TestFleetRunCli:
    def test_faultless_run_prints_summary_and_exits_zero(
        self, tmp_path, capsys
    ):
        code = main(
            ["fleet", "run", "compress", "--rounds", "3",
             "--spool", str(tmp_path / "shards.wal"),
             "--assert-convergence"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "convergence jaccard 1.0" in out
        assert "serve build 0 (unprofiled bootstrap)" in out
        assert (tmp_path / "shards.wal").exists()

    def test_json_report_under_the_fault_matrix(self, tmp_path, capsys):
        code = main(
            ["fleet", "run", "compress", "--rounds", "10", "--seed", "7",
             "--fault-rate", "0.25", "--wal-tail", "3",
             "--kill-mid-swap", "1", "--canary-trap", "1",
             "--flap", "inst0",
             "--spool", str(tmp_path / "shards.wal"),
             "--assert-convergence", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["convergence_jaccard"] == 1.0
        assert payload["rollbacks"] >= 1
        assert payload["quarantined_epochs"]
        assert not set(payload["served_builds"]) & set(payload["rolled_back"])
        assert payload["wal"]["truncations"] >= 1

    def test_metrics_out_is_valid_and_carries_fleet_gauges(
        self, tmp_path, capsys
    ):
        metrics_path = tmp_path / "fleet-metrics.json"
        code = main(
            ["fleet", "run", "compress", "--rounds", "3",
             "--spool", str(tmp_path / "shards.wal"),
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        assert validate_metrics(snapshot) == []
        names = {
            name
            for section in snapshot.values()
            if isinstance(section, dict)
            for name in section
        }
        assert "fleet.shards_sent" in names
        assert "fleet.convergence_jaccard" in names

    def test_assert_convergence_exits_one_when_starved(
        self, tmp_path, capsys
    ):
        # A sampling rate far above the step count yields no evidence:
        # the loop keeps serving the unprofiled bootstrap, which for sc
        # does not match the exact-profile decisions.
        code = main(
            ["fleet", "run", "sc", "--rounds", "1", "--rate", "1000000",
             "--spool", str(tmp_path / "shards.wal"),
             "--assert-convergence"]
        )
        assert code == 1
        assert "convergence assertion failed" in capsys.readouterr().err

    def test_unknown_workload_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fleet", "run", "nope"])

    def test_unknown_fault_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown shard fault"):
            main(["fleet", "run", "compress", "--faults", "bogus"])
