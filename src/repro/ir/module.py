"""Modules: one translation unit's globals and procedures."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union

from .procedure import LINK_GLOBAL, Procedure
from .types import Signature


class GlobalVar:
    """A module-level variable of ``size`` memory words.

    ``init`` lists initial word values (shorter than ``size`` means the
    remainder is zero-filled).  Statics are module-scoped like static
    functions and get mangled, module-qualified names from the front end.
    """

    __slots__ = ("name", "size", "init", "module", "linkage")

    def __init__(
        self,
        name: str,
        size: int = 1,
        init: Optional[List[Union[int, float]]] = None,
        module: str = "",
        linkage: str = LINK_GLOBAL,
    ):
        if size < 1:
            raise ValueError("global {} must have size >= 1".format(name))
        self.name = name
        self.size = size
        self.init = list(init) if init else []
        if len(self.init) > size:
            raise ValueError("initializer longer than global {}".format(name))
        self.module = module
        self.linkage = linkage

    def words(self) -> List[Union[int, float]]:
        return self.init + [0] * (self.size - len(self.init))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<GlobalVar ${} [{}]>".format(self.name, self.size)


class Module:
    """One translation unit: globals, procedures, extern declarations.

    ``externs`` records signatures for symbols the module calls but does
    not define (library routines, or procedures from other modules when
    compiling module-at-a-time).  Call-site ids are allocated per module
    so that profile data keyed on ``(module, site_id)`` survives
    recompilation.
    """

    def __init__(self, name: str):
        self.name = name
        self.globals: Dict[str, GlobalVar] = {}
        self.procs: Dict[str, Procedure] = {}
        self.externs: Dict[str, Signature] = {}
        self._site_counter = itertools.count()

    def add_global(self, gvar: GlobalVar) -> GlobalVar:
        if gvar.name in self.globals:
            raise ValueError("duplicate global: {}".format(gvar.name))
        gvar.module = self.name
        self.globals[gvar.name] = gvar
        return gvar

    def add_proc(self, proc: Procedure) -> Procedure:
        if proc.name in self.procs:
            raise ValueError("duplicate procedure: {}".format(proc.name))
        proc.module = self.name
        self.procs[proc.name] = proc
        return proc

    def declare_extern(self, name: str, sig: Signature) -> None:
        self.externs[name] = sig

    def new_site_id(self) -> int:
        return next(self._site_counter)

    def bump_site_counter(self, minimum: int) -> None:
        """Ensure future site ids start at or above ``minimum``."""
        current = next(self._site_counter)
        if current < minimum:
            self._site_counter = itertools.count(minimum)
        else:
            self._site_counter = itertools.count(current)

    def size(self) -> int:
        return sum(p.size() for p in self.procs.values())

    def __str__(self) -> str:
        parts = ['module "{}"'.format(self.name)]
        for name, sig in sorted(self.externs.items()):
            parts.append("extern @{} {}".format(name, sig))
        for gvar in self.globals.values():
            init = " ".join(str(w) for w in gvar.init)
            init = " = {}".format(init) if init else ""
            parts.append(
                "global ${} [{}] {}{}".format(gvar.name, gvar.size, gvar.linkage, init)
            )
        for proc in self.procs.values():
            parts.append(str(proc))
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Module {} ({} procs)>".format(self.name, len(self.procs))
