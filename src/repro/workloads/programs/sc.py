"""``sc`` — a spreadsheet recalculator (analog of SPEC 072.sc).

The paper singles sc out twice: its scope anecdote (7.1s → 6.3s → 5.3s
→ 4.5s across base/c/p/cp) and the "special curses library in which all
curses calls do nothing ... eliminated before inlining because HLO's
interprocedural analysis determines that they have no side effect."
This workload recalculates a formula grid, and every cell update calls
into a curses module whose display routines are empty — exactly the
dead cross-module calls the side-effect analysis must remove.

Inputs: [grid rows, grid cols, recalc passes].
"""

from ..suite import Workload, register

CURSES = """
// The no-op curses library: every routine does nothing (the real sc
// benchmark shipped such a stub library so timing excluded terminal
// I/O).  HLO's side-effect analysis removes calls to all of these.
static int cur_row = 0;
static int cur_col = 0;

int cur_move(int r, int c) { return r * 256 + c; }
int cur_addch(int ch) { return ch; }
int cur_standout() { return 1; }
int cur_standend() { return 0; }
int cur_refresh() { return 0; }
int cur_clrtoeol() { return 0; }
"""

SHEET = """
extern int cur_move(int r, int c);
extern int cur_addch(int ch);
extern int cur_refresh();
extern int cur_clrtoeol();

// Grid of cells: value plus a formula kind.
//   kind 0: constant     kind 1: sum of left and up neighbors
//   kind 2: product mod  kind 3: max of left and up
int cellv[600];
int cellk[600];
int ncols = 20;

void set_cols(int c) { if (c >= 1 && c <= 30) ncols = c; }

int cell_at(int r, int c) { return cellv[r * 30 + c]; }
void poke(int r, int c, int kind, int v) {
  cellk[r * 30 + c] = kind;
  cellv[r * 30 + c] = v;
}

static int neighbor_left(int r, int c) {
  if (c == 0) return 0;
  return cell_at(r, c - 1);
}

static int neighbor_up(int r, int c) {
  if (r == 0) return 0;
  return cell_at(r - 1, c);
}

static void display_cell(int r, int c, int v) {
  cur_move(r, c);
  cur_addch(v % 64 + 32);
  cur_clrtoeol();
}

int recalc_cell(int r, int c) {
  int k = cellk[r * 30 + c];
  int v = cellv[r * 30 + c];
  if (k == 1) v = (neighbor_left(r, c) + neighbor_up(r, c) + 1) % 9973;
  if (k == 2) v = (neighbor_left(r, c) * 3 + neighbor_up(r, c) * 5 + 7) % 9973;
  if (k == 3) {
    int l = neighbor_left(r, c);
    int u = neighbor_up(r, c);
    if (l > u) v = l;
    else v = u;
  }
  cellv[r * 30 + c] = v;
  display_cell(r, c, v);
  return v;
}

int recalc(int rows, int cols) {
  int sum = 0;
  int r;
  int c;
  for (r = 0; r < rows; r++) {
    for (c = 0; c < cols; c++) {
      sum = (sum + recalc_cell(r, c)) % 1000003;
    }
  }
  cur_refresh();
  return sum;
}
"""

MAIN = """
extern void set_cols(int c);
extern void poke(int r, int c, int kind, int v);
extern int recalc(int rows, int cols);

static int seed = 2024;

static int rnd(int m) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) seed = -seed;
  return seed % m;
}

int main() {
  int rows = input(0);
  int cols = input(1);
  int passes = input(2);
  if (rows > 20) rows = 20;
  if (cols > 30) cols = 30;
  set_cols(cols);
  int r;
  int c;
  for (r = 0; r < rows; r++) {
    for (c = 0; c < cols; c++) {
      poke(r, c, rnd(4), rnd(100));
    }
  }
  int check = 0;
  int p;
  for (p = 0; p < passes; p++) {
    check = (check + recalc(rows, cols)) % 1000003;
  }
  print_int(check);
  return check % 97;
}
"""

WORKLOAD = Workload(
    name="sc",
    spec_analog="072.sc (spreadsheet with no-op curses)",
    description="grid recalculation with dead display calls per cell",
    sources=(("curses", CURSES), ("sheet", SHEET), ("scmain", MAIN)),
    train_inputs=((8, 10, 8),),
    ref_input=(14, 20, 16),
    suites=("92",),
)


def register_workload() -> None:
    register(WORKLOAD)
