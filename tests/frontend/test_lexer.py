"""Lexer: token kinds, comments, literals, errors."""

import pytest

from repro.frontend import CompileError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)][:-1]  # drop eof


class TestTokens:
    def test_keywords_vs_names(self):
        toks = kinds("int x while whilex")
        assert toks == [("kw", "int"), ("name", "x"), ("kw", "while"), ("name", "whilex")]

    def test_numbers(self):
        assert kinds("42 0x1F 007") == [("int", "42"), ("int", "0x1F"), ("int", "007")]

    def test_floats(self):
        toks = kinds("1.5 .25 2e3 1.0e-2")
        assert [k for k, _ in toks] == ["float"] * 4

    def test_int_vs_float_disambiguation(self):
        toks = kinds("1 1.0 1e0")
        assert [k for k, _ in toks] == ["int", "float", "float"]

    def test_char_literals_become_ints(self):
        toks = kinds(r"'a' '\n' '\0' '\\'")
        assert toks == [("int", "97"), ("int", "10"), ("int", "0"), ("int", "92")]

    def test_multichar_punctuation(self):
        toks = kinds("a <<= b >> c <= d == e && f ... ++")
        texts = [t for _, t in toks]
        assert "<<=" in texts and ">>" in texts and "<=" in texts
        assert "==" in texts and "&&" in texts and "..." in texts and "++" in texts

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind == "name"}
        assert lines == {"a": 1, "b": 2, "c": 4}


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("name", "a"), ("name", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("name", "a"), ("name", "b")]

    def test_line_tracking_through_block_comment(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2


class TestErrors:
    def test_unknown_char(self):
        with pytest.raises(CompileError) as err:
            tokenize("a ` b", module="m")
        assert "`" in str(err.value)

    def test_bad_escape(self):
        with pytest.raises(CompileError):
            tokenize(r"'\q'")
