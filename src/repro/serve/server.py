"""The build daemon: one warm toolchain behind an asyncio socket.

``ReproServer`` accepts CRC32-framed JSON requests
(:mod:`repro.serve.protocol`), routes build/run work through the
:class:`~repro.serve.scheduler.RequestScheduler`, and keeps every warm
structure — module cache, worker pool, finished-build LRU — on one
shared :class:`~repro.serve.state.ServerState`.

Lifecycle: ``SIGTERM``/``SIGINT`` (or a ``shutdown`` request) starts a
*drain* — the listener closes, in-flight requests finish, then
``serve_until_shutdown`` returns so the CLI can write the
observability artifacts.  A request that raises is answered with a
typed error reply and never takes the daemon down: the resilience
error taxonomy separates bad input (``bad-request``) from an isolated
internal failure (``error``), exactly as the degradation ladder
separates them inside a build.
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Optional

from ..frontend.errors import CompileError
from ..obs import NULL_OBSERVER
from ..obs import names
from ..resilience.errors import FrameFormatError, StrictModeError
from .protocol import MAX_FRAME_CHARS, decode_frame, encode_frame, reply
from .scheduler import BusyError, RequestScheduler, RequestTimeoutError
from .state import BuildRequest, ServerState


class ReproServer:
    """A resident build service over one warm :class:`ServerState`."""

    def __init__(
        self,
        state: Optional[ServerState] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        concurrency: int = 2,
        max_pending: int = 32,
        request_timeout: Optional[float] = None,
        observer=None,
    ):
        self.state = state if state is not None else ServerState()
        self.observer = (
            observer if observer is not None else self.state.observer
        )
        self.host = host
        self.port = port  # rebound to the real port after start()
        self.scheduler = RequestScheduler(
            concurrency=concurrency,
            max_pending=max_pending,
            default_timeout=request_timeout,
            observer=self.observer,
        )
        self.started_at = 0.0
        self.requests = 0  # frames answered (any status)
        self.protocol_errors = 0
        self.connections = 0
        self.drained = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._open_writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_CHARS + 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.perf_counter()

    def request_shutdown(self) -> None:
        """Begin the drain; callable from signal handlers."""
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops

    async def serve_until_shutdown(self) -> dict:
        """Run until a drain completes; returns the final stats snapshot."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        # Drain: stop accepting, let in-flight requests finish.
        self._server.close()
        await self._server.wait_closed()
        finished = await self.scheduler.drain()
        # Hang up on idle keep-alive connections: their handlers see
        # EOF and exit instead of lingering as cancelled tasks.
        for writer in list(self._open_writers):
            writer.close()
        await asyncio.sleep(0)
        self.drained = True
        metrics = self.observer.metrics
        metrics.count(names.SERVE_DRAINS)
        self.scheduler.close()
        self.state.close()
        snapshot = self.stats_snapshot()
        snapshot["drained_inflight"] = finished
        return snapshot

    def stats_snapshot(self) -> dict:
        uptime = (
            time.perf_counter() - self.started_at if self.started_at else 0.0
        )
        return {
            "host": self.host,
            "port": self.port,
            "uptime_s": round(uptime, 3),
            "requests": self.requests,
            "connections": self.connections,
            "protocol_errors": self.protocol_errors,
            "scheduler": self.scheduler.counters(),
            "state": self.state.snapshot(),
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        self.observer.metrics.count(names.SERVE_CONNECTIONS)
        self._open_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):
                    break
                except asyncio.CancelledError:  # pragma: no cover - teardown
                    break
                if not line:
                    break
                response = await self._handle_frame(line)
                if response is None:
                    continue
                writer.write(encode_frame(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            self._open_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_frame(self, line: bytes) -> Optional[dict]:
        metrics = self.observer.metrics
        started = time.perf_counter()
        self.requests += 1
        metrics.count(names.SERVE_REQUESTS)
        request_id = None
        try:
            try:
                payload = decode_frame(line)
            except FrameFormatError as exc:
                self.protocol_errors += 1
                metrics.count(names.SERVE_PROTOCOL_ERRORS)
                return reply(
                    None,
                    "bad-request",
                    error=str(exc),
                    error_type="FrameFormatError",
                    error_kind=exc.kind,
                )
            request_id = payload.get("id")
            response = await self._dispatch(request_id, payload)
            return response
        finally:
            elapsed = time.perf_counter() - started
            metrics.observe(names.SERVE_LATENCY_S, elapsed)
            metrics.record_series(
                names.SERVE_QUEUE_DEPTH, self.requests, self.scheduler.pending
            )
            metrics.record_series(
                names.SERVE_INFLIGHT,
                self.requests,
                self.scheduler.started - self.scheduler.completed,
            )

    async def _dispatch(self, request_id, payload: dict) -> dict:
        metrics = self.observer.metrics
        op = payload.get("op")
        if op == "ping":
            metrics.count(names.SERVE_REQUESTS_OK)
            return reply(request_id, "ok", op="ping")
        if op == "stats":
            metrics.count(names.SERVE_REQUESTS_OK)
            return reply(request_id, "ok", op="stats", stats=self.stats_snapshot())
        if op == "shutdown":
            metrics.count(names.SERVE_REQUESTS_OK)
            self.request_shutdown()
            return reply(request_id, "ok", op="shutdown", draining=True)
        if op not in ("build", "run"):
            metrics.count(names.SERVE_REQUESTS_ERROR)
            return reply(
                request_id,
                "bad-request",
                error="unsupported op {!r}".format(op),
                error_type="ValueError",
            )
        try:
            request = BuildRequest.from_payload(payload)
            fields = await self.scheduler.submit(
                request.key(),
                lambda: self.state.execute(request),
                timeout=request.timeout,
            )
        except BusyError as exc:
            return reply(request_id, "busy", error=str(exc))
        except RequestTimeoutError as exc:
            metrics.count(names.SERVE_REQUESTS_ERROR)
            return reply(request_id, "timeout", error=str(exc))
        except asyncio.CancelledError:
            raise
        except StrictModeError as exc:
            # Strict-mode refusals are *build* errors, not input errors:
            # the same sources would have built with strict off.
            metrics.count(names.SERVE_REQUESTS_ERROR)
            return reply(
                request_id, "error", error=str(exc), error_type=type(exc).__name__
            )
        except (CompileError, ValueError) as exc:
            # Bad input (CompileError, IsomError, ProfileFormatError,
            # malformed payload fields): the client's fault, typed so it
            # can tell.
            metrics.count(names.SERVE_REQUESTS_ERROR)
            return reply(
                request_id,
                "bad-request",
                error=str(exc),
                error_type=type(exc).__name__,
            )
        except Exception as exc:  # crash-of-one-request isolation
            metrics.count(names.SERVE_REQUESTS_ERROR)
            return reply(
                request_id, "error", error=str(exc), error_type=type(exc).__name__
            )
        metrics.count(names.SERVE_REQUESTS_OK)
        return reply(request_id, "ok", **fields)
