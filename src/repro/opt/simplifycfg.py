"""Control-flow graph simplification.

- fold ``br const, A, B`` to ``jmp`` (constprop usually did it already),
- collapse ``br c, A, A`` to ``jmp A``,
- thread jumps through empty forwarding blocks (a block containing only
  ``jmp``),
- merge a block into its unique successor when that successor has a
  unique predecessor,
- delete unreachable blocks.

Inlining splices bodies with glue jumps everywhere; this pass is what
re-forms the long straight-line regions the back end then schedules.
"""

from __future__ import annotations

from typing import Dict

from ..ir.instructions import Branch, Jump
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import Imm


def simplify_cfg(program: Program, proc: Procedure) -> bool:
    changed = False
    for _ in range(10):
        if not _one_round(proc):
            break
        changed = True
    return changed


def _one_round(proc: Procedure) -> bool:
    changed = False

    # Fold constant and degenerate branches.
    for block in proc.blocks.values():
        term = block.terminator
        if isinstance(term, Branch):
            if isinstance(term.cond, Imm):
                target = term.then_target if term.cond.value else term.else_target
                block.instrs[-1] = Jump(target)
                changed = True
            elif term.then_target == term.else_target:
                block.instrs[-1] = Jump(term.then_target)
                changed = True

    # Thread jumps through empty forwarding blocks.
    forwarding: Dict[str, str] = {}
    for label, block in proc.blocks.items():
        if len(block.instrs) == 1 and isinstance(block.instrs[0], Jump):
            forwarding[label] = block.instrs[0].target

    def resolve(label: str) -> str:
        seen = set()
        while label in forwarding and label not in seen:
            seen.add(label)
            label = forwarding[label]
        return label

    if forwarding:
        mapping = {label: resolve(label) for label in forwarding}
        # A self-loop of empty blocks resolves to itself; skip those.
        mapping = {k: v for k, v in mapping.items() if k != v}
        if mapping:
            for block in proc.blocks.values():
                term = block.terminator
                if term is not None and any(t in mapping for t in term.targets()):
                    term.retarget(mapping)
                    changed = True
            if proc.entry in mapping:
                # Keep the entry block itself; only its jump threads.
                pass

    # Remove unreachable blocks.
    reachable = proc.reachable_labels()
    for label in [l for l in proc.blocks if l not in reachable]:
        proc.remove_block(label)
        changed = True

    # Merge straight-line pairs: A ends in jmp B, B has exactly one
    # predecessor (A), and B is not the entry.
    preds = proc.predecessors()
    for label in list(proc.blocks):
        block = proc.blocks.get(label)
        if block is None:
            continue
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        succ_label = term.target
        if succ_label == label or succ_label == proc.entry:
            continue
        if len(preds.get(succ_label, [])) != 1:
            continue
        succ = proc.blocks[succ_label]
        block.instrs = block.instrs[:-1] + succ.instrs
        # Profile counts: the merged block executes as often as A did.
        proc.remove_block(succ_label)
        preds = proc.predecessors()
        changed = True

    return changed
