"""Parallel builds must be byte-identical to serial builds.

The acceptance bar for the pipeline: ``--jobs 4`` and ``--jobs 1``
produce byte-identical isoms and behaviorally identical executables,
for every scope, cold or warm cache.  The pipeline earns this by
routing every module through its isom text at a single normalization
point, so worker count and completion order can't leak into the
output.
"""

from __future__ import annotations

import pytest

from repro.linker.toolchain import Toolchain
from repro.parallel import compile_sources

from .conftest import REF_INPUT, TRAIN_INPUTS, isoms


@pytest.mark.parametrize("scope", ["base", "cp"])
def test_jobs_do_not_change_output(sources, scope):
    serial = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=1).build(scope)
    wide = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=4).build(scope)
    assert isoms(serial) == isoms(wide)
    behavior_serial = serial.run(REF_INPUT)[1].behavior()
    behavior_wide = wide.run(REF_INPUT)[1].behavior()
    assert behavior_serial == behavior_wide


def test_cache_does_not_change_output(sources, tmp_path):
    uncached = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=1).build("cp")
    cold = Toolchain(
        sources, train_inputs=TRAIN_INPUTS, cache_dir=str(tmp_path)
    ).build("cp")
    warm = Toolchain(
        sources, train_inputs=TRAIN_INPUTS, cache_dir=str(tmp_path)
    ).build("cp")
    assert isoms(uncached) == isoms(cold) == isoms(warm)


def test_compile_sources_merge_order_is_source_order(sources):
    serial, _stats = compile_sources(sources, jobs=1)
    wide, _stats = compile_sources(sources, jobs=3)
    assert list(serial.modules) == [name for name, _text in sources]
    assert list(wide.modules) == list(serial.modules)
    from repro.linker.isom import to_isom_text

    for name in serial.modules:
        assert to_isom_text(serial.modules[name]) == to_isom_text(wide.modules[name])


def test_legacy_default_path_behavior_unchanged(sources):
    """No --jobs / --cache-dir: the pre-pipeline compile path runs."""
    legacy = Toolchain(sources, train_inputs=TRAIN_INPUTS)
    piped = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=1)
    result_legacy = legacy.build("cp")
    result_piped = piped.build("cp")
    assert not result_legacy.diagnostics.cache_enabled
    assert result_piped.diagnostics.cache_enabled
    behavior_legacy = result_legacy.run(REF_INPUT)[1].behavior()
    behavior_piped = result_piped.run(REF_INPUT)[1].behavior()
    assert behavior_legacy == behavior_piped
