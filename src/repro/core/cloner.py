"""The cloning pass (Figure 3 of the paper).

For every clonable direct call site, intersect what the caller supplies
(the *calling-context descriptor*: constant actual arguments — "in our
current implementation, only caller-supplied constants are considered
interesting") with what the callee can exploit (the *parameter-usage
descriptor*: per-parameter interest weights, with "special emphasis
... on parameter values that reach the function position at an indirect
call site").  A non-empty intersection is a *clone spec*; the cloner
then greedily forms a *clone group* of all compatible sites, estimates
the group's run-time benefit, ranks groups, and creates clones within
the staged budget.  Clones and their specs are recorded in a database
so later passes reuse rather than re-create them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.manager import AnalysisManager

from ..analysis.callgraph import CallGraph, CallSite
from ..analysis.freq import context_block_freqs, entry_counts, site_weight
from ..ir.instructions import Branch, Call, ICall
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import FuncRef, GlobalRef, Imm, Operand, Reg
from ..obs import NULL_OBSERVER
from ..obs.ledger import record_decision
from ..opt.pass_manager import optimize_proc
from .benefit import cached_block_freqs
from .budget import Budget
from .config import HLOConfig
from .legality import clone_blocker
from .report import HLOReport
from .transplant import copy_into_new_proc, subtract_moved_counts, transfer_ratio

SpecKey = Tuple[str, Tuple[Tuple[int, Tuple], ...]]


def operand_key(op: Operand) -> Tuple:
    """A hashable identity for a constant operand."""
    if isinstance(op, Imm):
        return ("imm", op.type.value, repr(op.value))
    if isinstance(op, FuncRef):
        return ("func", op.name)
    if isinstance(op, GlobalRef):
        return ("glob", op.name)
    raise TypeError("not a constant operand: {!r}".format(op))


def spec_key(callee: str, spec: Dict[int, Operand]) -> SpecKey:
    return (callee, tuple((pos, operand_key(op)) for pos, op in sorted(spec.items())))


class CloneDatabase:
    """Cross-pass record of (clonee, spec) -> clone name (Section 2.3).

    "If a given clone exists in the database then it is simply reused;
    otherwise the clone must be created."

    The database also owns clone *naming*: a name, once allocated, is
    never recycled within an HLO run even if its clone is deleted as
    unreachable.  (Recycling would let a stale (spec -> name) entry
    silently resolve to a newer clone with a different signature.)
    """

    def __init__(self) -> None:
        self._entries: Dict[SpecKey, str] = {}
        self._allocated: set = set()
        self.hits = 0

    def lookup(self, key: SpecKey) -> Optional[str]:
        name = self._entries.get(key)
        if name is not None:
            self.hits += 1
        return name

    def record(self, key: SpecKey, clone_name: str) -> None:
        self._entries[key] = clone_name
        self._allocated.add(clone_name)

    def fresh_name(self, program: Program, base: str) -> str:
        """A clone name unused by the program *and* this run's history."""
        counter = 1
        while True:
            candidate = "{}.c{}".format(base, counter)
            if candidate not in self._allocated and program.proc(candidate) is None:
                self._allocated.add(candidate)
                return candidate
            counter += 1

    def __len__(self) -> int:
        return len(self._entries)

    def mark(self) -> tuple:
        """Checkpoint for stage rollback: a failed clone pass must not
        leave (spec -> name) entries pointing at clones that the IR
        rollback removed."""
        return (dict(self._entries), set(self._allocated), self.hits)

    def rollback_to(self, mark: tuple) -> None:
        entries, allocated, hits = mark
        self._entries = dict(entries)
        self._allocated = set(allocated)
        self.hits = hits


def param_usage_weights(
    proc: Procedure,
    config: HLOConfig,
    freq_cache: Optional[Dict[str, Dict[str, float]]] = None,
    rel: Optional[Dict[str, float]] = None,
) -> List[float]:
    """Interest weight per parameter position (the callee-side analysis).

    Each use of a parameter register is weighed by the profile count of
    its block relative to the routine entry (or the static heuristic
    without data), times a kind multiplier: plain data uses, uses that
    steer control flow, and — weighted highest — parameter values that
    reach the function position of an indirect call.

    ``rel`` overrides the relative block frequencies — the
    context-sensitive path hands in the callee's frequencies *as seen
    from one caller* (:func:`~repro.analysis.freq.context_block_freqs`)
    so a parameter whose uses sit in a loop that only spins for that
    caller is weighed accordingly.
    """
    if rel is None:
        rel = cached_block_freqs(proc, config.use_profile, freq_cache)
    names = {name: i for i, (name, _t) in enumerate(proc.params)}
    weights = [0.0] * len(proc.params)
    if not names:
        return weights

    for label, block in proc.blocks.items():
        block_rel = rel.get(label, 0.0)
        if block_rel <= 0.0:
            block_rel = 0.01  # unexecuted-in-training uses still count a little
        for instr in block.instrs:
            if isinstance(instr, ICall) and isinstance(instr.func, Reg):
                pos = names.get(instr.func.name)
                if pos is not None:
                    weights[pos] += config.indirect_call_bonus * block_rel
            if isinstance(instr, Branch) and isinstance(instr.cond, Reg):
                pos = names.get(instr.cond.name)
                if pos is not None:
                    weights[pos] += config.branch_use_weight * block_rel
            for op in instr.uses():
                if isinstance(op, Reg):
                    pos = names.get(op.name)
                    if pos is not None:
                        weights[pos] += config.plain_use_weight * block_rel
    return weights


def calling_context(instr: Call) -> Dict[int, Operand]:
    """Constant actuals by position — the caller-side descriptor."""
    context: Dict[int, Operand] = {}
    for pos, arg in enumerate(instr.args):
        if isinstance(arg, (Imm, FuncRef, GlobalRef)):
            context[pos] = arg
    return context


def make_clone_spec(
    site: CallSite, usage: List[float]
) -> Dict[int, Operand]:
    """Intersect caller-supplied constants with interesting parameters."""
    context = calling_context(site.instr)  # type: ignore[arg-type]
    return {
        pos: op
        for pos, op in context.items()
        if pos < len(usage) and usage[pos] > 0.0
    }


def context_matches(instr: Call, spec: Dict[int, Operand]) -> bool:
    """Does this site supply the spec's constants at the spec's positions?"""
    for pos, expected in spec.items():
        if pos >= len(instr.args):
            return False
        actual = instr.args[pos]
        if not isinstance(actual, (Imm, FuncRef, GlobalRef)):
            return False
        if operand_key(actual) != operand_key(expected):
            return False
    return True


@dataclass
class CloneGroup:
    callee: Procedure
    spec: Dict[int, Operand]
    sites: List[CallSite]
    benefit: float = 0.0
    deletes_clonee: bool = False

    @property
    def key(self) -> SpecKey:
        return spec_key(self.callee.name, self.spec)


def build_clone_groups(
    program: Program,
    graph: CallGraph,
    config: HLOConfig,
    site_counts: Optional[Dict[Tuple[str, int], int]],
    manager: Optional["AnalysisManager"] = None,
    obs=NULL_OBSERVER,
    report: Optional[HLOReport] = None,
    pass_number: int = 0,
    context_counts=None,
) -> List[CloneGroup]:
    """Form ranked clone groups; rejected seeds land on the ledger.

    Every site iterated here gets exactly one fate: a legality /
    no-context / benefit rejection recorded immediately, or membership
    in a returned group (whose accept-or-reject decision the budget
    selection in :func:`clone_pass` records).

    ``context_counts`` (from a context-sensitive profile database's
    :meth:`~repro.profile.ProfileDatabase.context_view`) sharpens the
    benefit estimate: each member site's value is computed against the
    callee's block frequencies *as observed from that caller* rather
    than the all-callers aggregate, so a hot loop that only spins for
    one caller neither dilutes that caller's benefit nor inflates the
    others'.
    """
    counts = site_counts if config.use_profile else None
    ctx_counts = context_counts if config.use_profile else None
    if manager is not None:
        entry = manager.entry_counts(counts)
        freq_cache = manager.freq_cache()
    else:
        entry = entry_counts(program, graph, counts)
        freq_cache = {}
    usage_cache: Dict[str, List[float]] = {}
    ctx_usage_cache: Dict[Tuple[str, str], Optional[List[float]]] = {}
    address_taken = _address_taken(program)

    def member_value(callee: Procedure, member: CallSite, spec, aggregate: float) -> float:
        """The group value as seen from one member's caller."""
        if ctx_counts is None:
            return aggregate
        cache_key = (callee.name, member.caller.name)
        if cache_key not in ctx_usage_cache:
            rel_ctx = context_block_freqs(callee, member.caller.name, ctx_counts)
            ctx_usage_cache[cache_key] = (
                param_usage_weights(callee, config, rel=rel_ctx)
                if rel_ctx is not None
                else None
            )
        ctx_usage = ctx_usage_cache[cache_key]
        if ctx_usage is None:  # no evidence from this caller: use aggregate
            return aggregate
        return sum(ctx_usage[pos] for pos in spec)

    groups: List[CloneGroup] = []
    grouped_sites: Set[Tuple[str, int]] = set()

    for site in graph.sites:
        if site.key in grouped_sites:
            continue
        blocker = clone_blocker(
            program, site, config.cross_module, config.local_modules
        )
        if blocker is not None:
            record_decision(
                obs, report, "clone", pass_number, site, "rejected", blocker,
            )
            continue
        callee = site.callee
        assert callee is not None
        usage = usage_cache.get(callee.name)
        if usage is None:
            usage = param_usage_weights(callee, config, freq_cache)
            usage_cache[callee.name] = usage
        spec = make_clone_spec(site, usage)
        if not spec:
            record_decision(
                obs, report, "clone", pass_number, site, "rejected",
                "no caller-supplied constant meets an interesting parameter",
                reason_class="benefit",
            )
            continue

        # Greedily absorb every compatible site into the group.
        members = [site]
        if config.clone_groups:
            for other in graph.callers_of(callee.name):
                if other.key == site.key or other.key in grouped_sites:
                    continue
                if clone_blocker(
                    program, other, config.cross_module, config.local_modules
                ) is not None:
                    continue
                if context_matches(other.instr, spec):  # type: ignore[arg-type]
                    members.append(other)

        value = sum(usage[pos] for pos in spec)
        benefit = sum(
            site_weight(m, entry, counts, config.use_profile)
            * member_value(callee, m, spec, value)
            for m in members
        )
        if benefit <= config.min_clone_benefit:
            # Only the seed: ungrouped members get their own iteration.
            record_decision(
                obs, report, "clone", pass_number, site, "rejected",
                "benefit below threshold", reason_class="benefit",
                benefit=benefit,
            )
            continue

        incoming = graph.callers_of(callee.name)
        member_keys = {m.key for m in members}
        covers_all = all(s.key in member_keys for s in incoming)
        deletes = (
            covers_all
            and callee.name not in address_taken
            and callee.name != "main"
        )
        group = CloneGroup(callee, spec, members, benefit, deletes)
        groups.append(group)
        for m in members:
            grouped_sites.add(m.key)

    groups.sort(key=lambda g: (-g.benefit, g.callee.name))
    return groups


def _address_taken(program: Program) -> Set[str]:
    taken: Set[str] = set()
    for proc in program.all_procs():
        for instr in proc.instructions():
            for op in instr.uses():
                if isinstance(op, FuncRef):
                    taken.add(op.name)
    return taken


def clone_pass(
    program: Program,
    config: HLOConfig,
    budget: Budget,
    report: HLOReport,
    pass_number: int,
    database: CloneDatabase,
    site_counts: Optional[Dict[Tuple[str, int], int]] = None,
    manager: Optional["AnalysisManager"] = None,
    obs=NULL_OBSERVER,
    context_counts=None,
) -> int:
    """Run one cloning pass; returns the number of sites retargeted."""
    graph = manager.callgraph() if manager is not None else CallGraph(program)
    groups = build_clone_groups(
        program, graph, config, site_counts, manager, obs, report, pass_number,
        context_counts=context_counts,
    )

    # Select within the stage's allotment (Figure 3: "select clones").
    stage = budget.stage_limit(pass_number)
    projected = budget.current
    accepted: List[CloneGroup] = []
    for group in groups:
        exists = config.clone_database and database.lookup(group.key) is not None
        cost = 0.0 if exists else Budget.clone_delta(
            group.callee.size(), group.deletes_clonee
        )
        if projected + cost <= stage:
            accepted.append(group)
            projected += cost
        else:
            for member in group.sites:
                record_decision(
                    obs, report, "clone", pass_number, member, "rejected",
                    "staged budget exhausted", reason_class="budget",
                    benefit=group.benefit,
                )
    # Any group not handled in this pass is discarded; it may be
    # recreated and cloned in a later pass (Section 2.3).

    replaced = 0
    touched: Set[str] = set()
    mutated: Set[str] = set()
    for group_index, group in enumerate(accepted):
        if config.stop_after is not None and report.transform_count >= config.stop_after:
            for later in accepted[group_index:]:
                for member in later.sites:
                    record_decision(
                        obs, report, "clone", pass_number, member, "rejected",
                        "stop-after limit reached", reason_class="budget",
                        benefit=later.benefit,
                    )
            break
        clone_name = database.lookup(group.key) if config.clone_database else None
        if clone_name is not None and program.proc(clone_name) is None:
            clone_name = None  # the recorded clone has since been deleted
        if clone_name is None:
            clone_name = database.fresh_name(program, group.callee.name)
            group_count = _group_traffic(group, site_counts)
            ratio = transfer_ratio(group_count, _entry_count(group.callee))
            with obs.tracer.span(
                "clone:{}".format(clone_name) if obs.tracer.enabled else "",
                cat="transform", clonee=group.callee.name,
            ):
                clone = copy_into_new_proc(
                    program,
                    group.callee,
                    program.modules[group.callee.module],
                    clone_name,
                    group.spec,
                    ratio,
                    on_promote=report.record_promotion,
                )
                program.modules[group.callee.module].add_proc(clone)
                subtract_moved_counts(group.callee, ratio)
                # The clonee's counts just migrated into the clone.
                mutated.add(group.callee.name)
                mutated.add(clone_name)
                report.clones += 1
                if config.clone_database:
                    database.record(group.key, clone_name)
                touched.add(clone_name)
                if config.reoptimize:
                    # Optimize the clone immediately so the bound constants
                    # propagate into its own call sites before the in-clone
                    # retarget scan below (the recursive pass-through case).
                    optimize_proc(program, clone)

        for member_index, member in enumerate(group.sites):
            if config.stop_after is not None and report.transform_count >= config.stop_after:
                for later in group.sites[member_index:]:
                    record_decision(
                        obs, report, "clone", pass_number, later, "rejected",
                        "stop-after limit reached", reason_class="budget",
                        benefit=group.benefit,
                    )
                break
            if _retarget_site(member, group.spec, clone_name):
                replaced += 1
                record_decision(
                    obs, report, "clone", pass_number, member, "cloned",
                    "call site retargeted to clone", reason_class="accepted",
                    benefit=group.benefit,
                )
                report.record_clone_replacement(
                    pass_number,
                    member.caller.name,
                    clone_name,
                    member.instr.site_id,
                    group.callee.name,
                )
                touched.add(member.caller.name)
                mutated.add(member.caller.name)
            else:
                record_decision(
                    obs, report, "clone", pass_number, member, "rejected",
                    "call site changed before retargeting",
                    reason_class="mechanical",
                )

        # The clone body may itself contain group-compatible recursive
        # sites (copied from the clonee); retarget those too so a fully
        # covered clonee really does become unreachable.
        clone = program.proc(clone_name)
        if clone is not None:
            for block, index, instr in clone.call_sites():
                if (
                    isinstance(instr, Call)
                    and instr.callee == group.callee.name
                    and context_matches(instr, group.spec)
                ):
                    instr.callee = clone_name
                    instr.args = [
                        a for i, a in enumerate(instr.args) if i not in group.spec
                    ]
                    replaced += 1
                    mutated.add(clone_name)
                    report.record_clone_replacement(
                        pass_number, clone_name, clone_name, instr.site_id, group.callee.name
                    )
                    # Not a graph site (it was born with the clone this
                    # pass), but it is an evaluation with an outcome.
                    report.sites_considered += 1
                    if obs.ledger.enabled:
                        obs.ledger.record(
                            "clone", pass_number, clone_name, clone_name,
                            instr.site_id, "cloned",
                            "recursive site inside clone retargeted",
                            "accepted", group.benefit,
                        )

    if config.reoptimize:
        for name in sorted(touched):
            proc = program.proc(name)
            if proc is not None:
                optimize_proc(program, proc)
    budget.recalibrate(program)
    if manager is not None and mutated:
        manager.invalidate_procs(mutated)
    return replaced


def _retarget_site(site: CallSite, spec: Dict[int, Operand], clone_name: str) -> bool:
    """Point one call site at the clone, editing specialized actuals out."""
    instr = site.instr
    if not isinstance(instr, Call):
        return False
    # The site may have been transformed since the graph was built;
    # verify it still calls the clonee with a matching context.
    if site.callee is None or instr.callee != site.callee.name:
        return False
    if not context_matches(instr, spec):
        return False
    instr.callee = clone_name
    instr.args = [a for i, a in enumerate(instr.args) if i not in spec]
    return True


def _group_traffic(
    group: CloneGroup, site_counts: Optional[Dict[Tuple[str, int], int]]
) -> Optional[int]:
    if site_counts is None:
        return None
    total = 0
    seen = False
    for member in group.sites:
        if member.key in site_counts:
            total += site_counts[member.key]
            seen = True
    return total if seen else None


def _entry_count(proc: Procedure) -> Optional[int]:
    if proc.entry is None:
        return None
    block = proc.blocks.get(proc.entry)
    return block.profile_count if block is not None else None
