"""Process-parallel module compilation with a deterministic merge.

``compile_sources`` is the parallel/incremental counterpart of
:func:`repro.frontend.driver.compile_program`.  It splits a program
into per-module compile jobs (frontend -> lower -> isom serialization),
consults the :class:`~repro.parallel.cache.ModuleCache` first, fans the
misses out over a ``ProcessPoolExecutor`` in heaviest-first order, and
then assembles the program **in the original source order**, so the
merged output is byte-for-byte independent of worker count and
completion order.

Every module in this pipeline — serial or parallel, cached or fresh —
is routed through its isom text before linking.  That single
normalization point is what makes ``--jobs 1`` and ``--jobs 4`` (and
cold vs. warm cache) produce identical programs: fresh-name counters
and other ephemeral front-end state never leak into the build.

Worker *infrastructure* failures (a broken pool, a killed worker, an
unpicklable result) degrade to serial in-process compilation with a
diagnostic — the build completes, just without the speedup.  Genuine
input errors (:class:`~repro.frontend.errors.CompileError`) propagate
exactly as they would from a serial build.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..frontend.driver import compile_module, link_check
from ..frontend.errors import CompileError
from ..ir.module import Module
from ..ir.program import Program
from ..ir.verifier import verify_program
from ..obs import NULL_OBSERVER
from ..obs.tracer import worker_span
from ..resilience.errors import IsomError
from .cache import ModuleCache
from .scheduler import heaviest_first

SourceList = Union[Dict[str, str], Sequence[Tuple[str, str]]]

# Exceptions that indicate bad *input* rather than broken machinery;
# these propagate instead of triggering the serial fallback.
_INPUT_ERRORS = (CompileError, IsomError, ValueError)


@dataclass
class MapOutcome:
    """How one ``parallel_map`` call went (beyond its results)."""

    fell_back: bool = False
    timeouts: int = 0  # items abandoned to the serial retry by the watchdog
    errors: List[str] = field(default_factory=list)  # exception class names

    def __bool__(self) -> bool:  # truthy exactly when the pool degraded
        return self.fell_back


@dataclass
class CompileStats:
    """What the parallel/incremental pipeline did for one compile."""

    jobs: int = 1
    compiled: int = 0  # modules actually (re)compiled
    from_cache: int = 0  # modules served from the cache
    serial_fallback: bool = False
    fallback_reason: str = ""
    compile_timeouts: int = 0  # modules the watchdog gave up waiting for
    worker_errors: List[str] = field(default_factory=list)


def default_jobs() -> int:
    """A sensible worker count for this host."""
    return max(1, os.cpu_count() or 1)


# Tasks one worker process runs before it is retired and replaced.
DEFAULT_MAX_TASKS_PER_CHILD = 64


class PersistentPool:
    """A reusable worker pool for long-lived processes.

    ``parallel_map`` normally creates and destroys a
    ``ProcessPoolExecutor`` per call — right for a one-shot CLI build,
    wasteful for a resident daemon that compiles thousands of modules.
    A ``PersistentPool`` keeps the executor alive across calls and
    retires each worker after ``max_tasks_per_child`` tasks, so
    worker-process memory growth is bounded no matter how long the
    daemon runs (``max_tasks_per_child`` selects a non-fork start
    method; Python >= 3.11).

    The executor is discarded — and lazily rebuilt on next use —
    whenever the machinery misbehaves (watchdog timeout, pool
    breakage), so one stuck worker can never wedge every later build.
    ``executor()``/``discard()`` are thread-safe; the pool may be
    shared by a server's concurrent build sessions.
    """

    def __init__(
        self, jobs: int, max_tasks_per_child: int = DEFAULT_MAX_TASKS_PER_CHILD
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.max_tasks_per_child = max(1, int(max_tasks_per_child))
        self.submitted = 0  # tasks handed to any generation of the pool
        self.generations = 0  # executors created over the pool's lifetime
        self.discards = 0  # executors dropped after breakage or timeout
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    max_tasks_per_child=self.max_tasks_per_child,
                )
                self.generations += 1
            return self._executor

    def discard(self, wait: bool = False) -> None:
        """Throw the current executor away; the next use builds anew."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            self.discards += 1
            executor.shutdown(wait=wait, cancel_futures=True)

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


def _compile_to_isom(pair: Tuple[str, str]) -> Tuple[str, str]:
    """Worker body: one module's frontend compile, serialized to isom."""
    from ..linker.isom import to_isom_text

    name, source = pair
    return name, to_isom_text(compile_module(source, name))


def _compile_to_isom_traced(pair: Tuple[str, str]):
    """Worker body under tracing: same compile, plus a span record.

    The span is timed with wall-clock (``time.time``), not the worker's
    ``perf_counter`` — perf_counter epochs differ per process, so wall
    time is the only clock the parent can place on its own timeline
    (see :func:`repro.obs.tracer.worker_span`).
    """
    import time

    name, _source = pair
    start = time.time()
    result = _compile_to_isom(pair)
    span = worker_span(
        "module:{}".format(name), start, time.time(), os.getpid(),
        cat="frontend", args={"module": name},
    )
    return result[0], result[1], span


def parallel_map(
    func: Callable,
    items: Sequence,
    jobs: int = 1,
    warn: Optional[Callable[[str], None]] = None,
    timeout: Optional[float] = None,
    pool: Optional[PersistentPool] = None,
) -> Tuple[list, MapOutcome]:
    """Apply ``func`` across ``items``, results in input order.

    Returns ``(results, outcome)``.  With ``jobs <= 1`` or a single
    item this is a plain serial map.  Infrastructure failures retry the
    incomplete items serially in-process; exceptions raised *by the
    function* propagate unchanged (re-raised by the serial retry when
    the pool machinery obscured them).

    ``timeout`` is a per-module watchdog: seconds of *no progress* (no
    future completing) before the pool is declared stuck and the
    incomplete items are retried serially.  It is deliberately not a
    per-future deadline measured from submission — with fewer workers
    than items, a module queued behind others would trip such a clock
    without ever having run.  The watchdog re-arms on every completion,
    so it bounds the slowest in-flight compile, which is what a hung
    worker actually looks like.

    ``pool`` reuses a :class:`PersistentPool` across calls instead of
    creating a fresh executor; a timeout or breakage discards the
    shared executor (stuck workers must not leak into later calls),
    and the call still degrades serially exactly as without one.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items], MapOutcome()

    outcome = MapOutcome()
    results: Dict[int, object] = {}
    pending: set = set()
    try:
        if pool is not None:
            executor = pool.executor()
            pool.submitted += len(items)
        else:
            executor = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
        try:
            futures = {
                executor.submit(func, item): index for index, item in enumerate(items)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:  # watchdog expired with nothing finishing
                    outcome.timeouts = len(pending)
                    break
                for future in done:
                    results[futures[future]] = future.result()
        finally:
            if pool is None:
                # Never block on a stuck worker: leave it to die with
                # the process group, cancel what never started.
                executor.shutdown(wait=not outcome.timeouts, cancel_futures=True)
            elif outcome.timeouts:
                pool.discard(wait=False)
            else:
                for future in pending:
                    future.cancel()
    except _INPUT_ERRORS:
        raise
    except Exception as exc:  # pool breakage, pickling, OS limits, ...
        outcome.errors.append(type(exc).__name__)
        if pool is not None:
            pool.discard(wait=False)
        if warn is not None:
            warn(
                "parallel workers unavailable ({}: {}); "
                "compiling serially".format(type(exc).__name__, exc)
            )
        outcome.fell_back = True
    if outcome.timeouts:
        if warn is not None:
            warn(
                "parallel compile stalled ({} module(s) exceeded the "
                "{:.1f}s watchdog); compiling serially".format(
                    outcome.timeouts, timeout
                )
            )
        outcome.fell_back = True
    if outcome.fell_back:
        for index, item in enumerate(items):
            if index not in results:
                results[index] = func(item)
    return [results[index] for index in range(len(items))], outcome


def compile_sources(
    sources: SourceList,
    jobs: int = 1,
    cache: Optional[ModuleCache] = None,
    fingerprint: str = "",
    profile: Optional[object] = None,
    warn: Optional[Callable[[str], None]] = None,
    observer=NULL_OBSERVER,
    timeout: Optional[float] = None,
    pool: Optional[PersistentPool] = None,
) -> Tuple[Program, CompileStats]:
    """Compile a multi-module program, in parallel and incrementally.

    ``fingerprint`` is the :meth:`HLOConfig.fingerprint` of the build
    configuration — part of every cache key, so a config change
    invalidates.  ``profile`` (a ProfileDatabase, when available)
    steers the heaviest-first schedule.

    With a tracing ``observer``, each worker times its own compile in
    wall-clock and ships the record back with its result; the parent
    absorbs them into the main timeline keyed by worker pid, so a
    ``--jobs 4`` trace shows four concurrent module rows.
    """
    if isinstance(sources, dict):
        pairs: List[Tuple[str, str]] = list(sources.items())
    else:
        pairs = list(sources)
    stats = CompileStats(jobs=max(1, jobs))

    modules: Dict[str, Module] = {}
    keys: Dict[str, str] = {}
    pending: List[Tuple[str, str]] = []
    for name, text in pairs:
        if cache is not None:
            key = cache.key_for(name, text, fingerprint)
            keys[name] = key
            cached = cache.fetch(name, key)
            if cached is not None:
                modules[name] = cached
                stats.from_cache += 1
                continue
        pending.append((name, text))

    if pending:
        from ..linker.isom import from_isom_text

        ordered = heaviest_first(pending, profile)
        traced = observer.tracer.enabled
        body = _compile_to_isom_traced if traced else _compile_to_isom
        compiled, outcome = parallel_map(
            body, ordered, jobs=jobs, warn=warn, timeout=timeout, pool=pool
        )
        stats.serial_fallback = outcome.fell_back
        stats.compile_timeouts = outcome.timeouts
        stats.worker_errors = list(outcome.errors)
        if outcome.fell_back:
            stats.fallback_reason = (
                "compile timeout" if outcome.timeouts else "worker pool unavailable"
            )
        spans = []
        for item in compiled:
            if traced:
                name, isom_text, span = item
                spans.append(span)
                observer.metrics.observe(
                    "frontend.module_compile_s", span["end"] - span["start"]
                )
            else:
                name, isom_text = item
            modules[name] = from_isom_text(isom_text)
            stats.compiled += 1
            if cache is not None:
                cache.store(name, keys[name], isom_text)
        if spans:
            observer.tracer.absorb_worker_spans(spans)

    # Deterministic merge: original source order, not completion order.
    program = Program()
    for name, _text in pairs:
        program.add_module(modules[name])
    link_check(program)
    verify_program(program)
    return program, stats
