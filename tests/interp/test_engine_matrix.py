"""Engine × sink matrix: all three engines under every sink family.

The differential suite pins the optimized engines against the
reference with no sink and a recording sink; this file sweeps the full
capability matrix CI's ``engine-matrix`` job runs — each engine in
``ENGINES`` under no sink, :class:`CountingSink` (batched ``on_instr``),
:class:`SamplingSink` (jittered sampling state, call/return exact), and
the :class:`~repro.machine.pa8000.PA8000Model` (every callback live) —
asserting the complete outcome *and* the sink's accumulated state are
identical across engines.  Sink state is the sharp edge: a sink's
counters diverge the moment an engine batches, reorders, or skips a
callback the reference delivers, even when program output matches.

The scheduled deep-fuzz (``python -m repro.interp.fuzz``) is the wide
version of this file: same observation machinery, hundreds of seeds.
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_program
from repro.interp.fuzz import SINK_KINDS, fuzz_one, observe
from repro.interp.interpreter import ENGINES
from repro.workloads.generator import generate_sources
from repro.workloads.suite import get_workload

OPTIMIZED = tuple(e for e in ENGINES if e != "reference")
MATRIX_SEEDS = (0, 3, 9, 14, 23, 31, 42)


@pytest.mark.parametrize("kind", SINK_KINDS)
@pytest.mark.parametrize("engine", OPTIMIZED)
class TestGeneratedMatrix:
    def test_generated_seeds_identical(self, engine, kind):
        failures = []
        for seed in MATRIX_SEEDS:
            failures.extend(fuzz_one(seed, [engine], [kind]))
        assert not failures, failures[0]


@pytest.mark.parametrize("kind", SINK_KINDS)
@pytest.mark.parametrize("name", ["compress", "sc"])
class TestWorkloadMatrix:
    def test_workload_identical_across_engines(self, name, kind):
        workload = get_workload(name)
        program = workload.compile()
        inputs = list(workload.train_inputs[0])
        observations = {
            engine: observe(program, inputs, engine, kind)
            for engine in ENGINES
        }
        want = observations["reference"]
        for engine in OPTIMIZED:
            assert observations[engine] == want, (
                "{} diverges from reference on {} under {!r} sink".format(
                    engine, name, kind
                )
            )


@pytest.mark.parametrize("kind", SINK_KINDS)
class TestTrapMatrix:
    # Sinks must see identical prefixes even when the run traps or the
    # step limit expires mid-callback-window.
    TRAP = """
    int helper(int x) { return 100 / x; }
    int main() {
      int i = 3;
      while (i > 0 - 2) { print_int(helper(i)); i = i - 1; }
      return 0;
    }
    """

    def test_trap_mid_run(self, kind):
        program = compile_program([("m", self.TRAP)])
        want = observe(program, [], "reference", kind)
        assert want[0][0] == "execerror"
        for engine in OPTIMIZED:
            assert observe(program, [], engine, kind) == want

    def test_step_limit_mid_run(self, kind):
        program = compile_program([("m", self.TRAP)])
        for max_steps in (1, 7, 19):
            want = observe(program, [], "reference", kind, max_steps)
            assert want[0][0] == "steplimit"
            for engine in OPTIMIZED:
                got = observe(program, [], engine, kind, max_steps)
                assert got == want, "max_steps={}".format(max_steps)


def test_fuzz_entrypoint_runs_clean():
    # The scheduled CI job shells out to the module; keep a smoke-sized
    # invocation of the real entry point green in tier-1.
    from repro.interp.fuzz import run_fuzz

    assert run_fuzz(range(5), progress_every=0) == []


def test_generator_sources_are_deterministic():
    # Artifact reproduction depends on seed -> sources being stable.
    assert generate_sources(17) == generate_sources(17)
