"""A whole-program IR interpreter (the reproduction's "workstation").

Runs a :class:`~repro.ir.Program` on an input vector, producing an
output vector, an exit code, and dynamic counts.  It is the substrate
for three paper workflows:

- the *training run* of the PGO pipeline (executing instrumented code
  and harvesting ``probe`` counters),
- the *run time* measurements (step counts, or cycle counts when an
  event sink feeds the PA8000 machine model),
- the semantics oracle for the property-test suite (any HLO or
  optimizer transform must leave ``Result.behavior()`` unchanged).

The interpreter maintains an explicit frame stack, so deeply recursive
workloads do not consume Python stack.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Jump,
    Load,
    Mov,
    Probe,
    Ret,
    Store,
    UnOp,
)
from ..ir.ops import EvalError, eval_binop, eval_unop, wrap_int
from ..ir.procedure import ATTR_VARARGS, Procedure
from ..ir.program import Program
from ..ir.values import FuncRef, GlobalRef, Imm, Operand, Reg
from .errors import ExecError, StepLimitExceeded
from .events import EventSink
from .memory import GLOBAL_BASE, STACK_BASE, CodePtr, Memory, Word

DEFAULT_MAX_STEPS = 50_000_000
STACK_LIMIT_FRAMES = 8_000

# Execution engines.  "fast" is the pre-decoded threaded-dispatch engine
# (repro.interp.engine); "reference" is the direct-over-IR loop below,
# kept as the semantics oracle the fast engine is differentially tested
# against.
ENGINES = ("fast", "codegen", "reference")
DEFAULT_ENGINE = "fast"


class _Exit(Exception):
    """Internal: raised by the ``exit`` builtin."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(code)


class Result:
    """Outcome of one program run."""

    __slots__ = (
        "exit_code",
        "output",
        "steps",
        "probe_counts",
        "site_counts",
        "block_counts",
        "call_count",
    )

    def __init__(
        self,
        exit_code: int,
        output: List[Union[int, float]],
        steps: int,
        probe_counts: Dict[int, int],
        site_counts: Dict[Tuple[str, int], int],
        block_counts: Dict[Tuple[str, str], int],
        call_count: int,
    ):
        self.exit_code = exit_code
        self.output = output
        self.steps = steps
        self.probe_counts = probe_counts
        self.site_counts = site_counts
        self.block_counts = block_counts
        self.call_count = call_count

    def behavior(self) -> Tuple[int, Tuple[Union[int, float], ...]]:
        """The externally observable behaviour: exit code and output."""
        return (self.exit_code, tuple(self.output))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Result exit={} |output|={} steps={}>".format(
            self.exit_code, len(self.output), self.steps
        )


class _Frame:
    __slots__ = ("proc", "label", "index", "regs", "dest", "saved_stack", "varargs")

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.label = proc.entry
        self.index = 0
        self.regs: Dict[str, Word] = {}
        self.dest: Optional[Reg] = None  # caller register awaiting our return value
        self.saved_stack = 0
        self.varargs: List[Word] = []


class Interpreter:
    """Executes a program; see module docstring for the three roles."""

    def __init__(
        self,
        program: Program,
        inputs: Sequence[Union[int, float]] = (),
        sink: Optional[EventSink] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        collect_site_counts: bool = False,
        collect_block_counts: bool = False,
        engine: str = DEFAULT_ENGINE,
    ):
        if engine not in ENGINES:
            raise ValueError(
                "unknown engine {!r}; expected one of {}".format(engine, ENGINES)
            )
        self.program = program
        self.inputs = list(inputs)
        self.sink = sink
        self.max_steps = max_steps
        self.collect_site_counts = collect_site_counts
        self.collect_block_counts = collect_block_counts
        self.engine = engine

        self.memory = Memory()
        self.output: List[Union[int, float]] = []
        self.steps = 0
        self.call_count = 0
        self.probe_counts: Dict[int, int] = Counter()
        self.site_counts: Dict[Tuple[str, int], int] = Counter()
        self.block_counts: Dict[Tuple[str, str], int] = Counter()
        # Plan-cache accounting for the fast engine (obs `interp.*` metrics).
        self.plans_compiled = 0
        self.plan_cache_hits = 0

        # Sink capability negotiation: both engines honour the sink's
        # declared needs_* flags, so a sink that does not consume a
        # callback never pays for it (and both engines deliver the same
        # stream for any given sink, which the differential harness
        # checks).
        if sink is None:
            self._sink_instr = self._sink_branch = False
            self._sink_call = self._sink_return = self._sink_mem = False
        else:
            self._sink_instr = sink.needs_instr
            self._sink_branch = sink.needs_branch
            self._sink_call = sink.needs_call
            self._sink_return = sink.needs_return
            self._sink_mem = sink.needs_mem

        self._procs: Dict[str, Procedure] = {p.name: p for p in program.all_procs()}
        self._global_addrs: Dict[str, int] = {}
        self._stack_top = STACK_BASE
        self._frames: List[_Frame] = []
        self._layout_globals()

        self._builtins = {
            "print_int": self._bi_print_int,
            "print_flt": self._bi_print_flt,
            "input": self._bi_input,
            "input_len": self._bi_input_len,
            "exit": self._bi_exit,
            "abs": self._bi_abs,
            "sbrk": self._bi_sbrk,
            "va_arg": self._bi_va_arg,
            "va_count": self._bi_va_count,
        }

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _layout_globals(self) -> None:
        addr = GLOBAL_BASE
        for gvar in self.program.all_globals():
            self._global_addrs[gvar.name] = addr
            for offset, word in enumerate(gvar.init):
                if word != 0:
                    self.memory.store(addr + offset, word)
            addr += gvar.size

    def global_addr(self, name: str) -> int:
        try:
            return self._global_addrs[name]
        except KeyError:
            raise ExecError("unknown global ${}".format(name))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence[Word] = ()) -> Result:
        """Execute from ``entry`` until it returns or ``exit`` is called."""
        proc = self._procs.get(entry)
        if proc is None:
            raise ExecError("entry procedure @{} not found".format(entry))
        if self.engine == "fast":
            from .engine import execute

            return execute(self, proc, list(args))
        if self.engine == "codegen":
            from .codegen import execute as execute_codegen

            return execute_codegen(self, proc, list(args))
        frame = self._push_frame(proc, list(args), dest=None)
        exit_code = 0
        try:
            ret = self._loop(frame)
            if isinstance(ret, int):
                exit_code = wrap_int(ret)
        except _Exit as ex:
            exit_code = wrap_int(ex.code)
        return Result(
            exit_code,
            self.output,
            self.steps,
            self.probe_counts,
            self.site_counts,
            self.block_counts,
            self.call_count,
        )

    def _push_frame(self, proc: Procedure, args: List[Word], dest: Optional[Reg]) -> _Frame:
        if len(self._frames) >= STACK_LIMIT_FRAMES:
            raise ExecError("call stack overflow in @{}".format(proc.name))
        frame = _Frame(proc)
        frame.dest = dest
        frame.saved_stack = self._stack_top

        fixed = len(proc.params)
        if ATTR_VARARGS in proc.attrs:
            if len(args) < fixed:
                raise ExecError("too few args for varargs @{}".format(proc.name))
            frame.varargs = args[fixed:]
            args = args[:fixed]
        elif len(args) != fixed:
            raise ExecError(
                "arity mismatch calling @{}: {} args for {} params".format(
                    proc.name, len(args), fixed
                )
            )
        for (name, _ty), value in zip(proc.params, args):
            frame.regs[name] = value
        self._frames.append(frame)
        return frame

    def _pop_frame(self) -> _Frame:
        frame = self._frames.pop()
        self._stack_top = frame.saved_stack
        return frame

    def _loop(self, root: _Frame) -> Optional[Word]:
        """Run until ``root`` returns; returns its return value."""
        frames = self._frames
        sink = self.sink
        depth0 = len(frames) - 1

        # Hot-path locals: every name resolved per instruction in the
        # inner loop is bound once here.  ``steps`` is kept local and
        # written back in the ``finally`` so _Exit / trap unwinds still
        # leave ``self.steps`` exact.
        max_steps = self.max_steps
        memory = self.memory
        eval_ = self._eval
        probe_counts = self.probe_counts
        block_counts = self.block_counts
        collect_block = self.collect_block_counts
        on_instr = sink.on_instr if self._sink_instr else None
        on_branch = sink.on_branch if self._sink_branch else None
        on_mem = sink.on_mem if self._sink_mem else None
        steps = self.steps

        try:
            while True:
                frame = frames[-1]
                proc = frame.proc
                block = proc.blocks.get(frame.label)
                if block is None:
                    raise ExecError(
                        "jump to missing block", proc.name, str(frame.label), 0
                    )
                if frame.index == 0 and collect_block:
                    block_counts[(proc.name, frame.label)] += 1

                instrs = block.instrs
                regs = frame.regs
                n_instrs = len(instrs)
                while frame.index < n_instrs:
                    idx = frame.index
                    instr = instrs[idx]
                    steps += 1
                    if steps > max_steps:
                        raise StepLimitExceeded(
                            "step limit {} exceeded".format(max_steps),
                            proc.name,
                            block.label,
                            idx,
                        )
                    if on_instr is not None:
                        on_instr(proc, block.label, idx, instr)

                    cls = instr.__class__
                    if cls is BinOp:
                        regs[instr.dest.name] = self._binop(frame, instr, proc, block, idx)
                        frame.index = idx + 1
                    elif cls is Mov:
                        regs[instr.dest.name] = eval_(frame, instr.src)
                        frame.index = idx + 1
                    elif cls is UnOp:
                        src = eval_(frame, instr.src)
                        try:
                            regs[instr.dest.name] = eval_unop(instr.op, src)
                        except (EvalError, TypeError) as ex:
                            raise ExecError(str(ex), proc.name, block.label, idx)
                        frame.index = idx + 1
                    elif cls is Load:
                        addr = eval_(frame, instr.addr)
                        value = memory.load(addr)
                        if on_mem is not None:
                            on_mem(addr, False)
                        regs[instr.dest.name] = value
                        frame.index = idx + 1
                    elif cls is Store:
                        addr = eval_(frame, instr.addr)
                        value = eval_(frame, instr.value)
                        memory.store(addr, value)
                        if on_mem is not None:
                            on_mem(addr, True)
                        frame.index = idx + 1
                    elif cls is Branch:
                        cond = eval_(frame, instr.cond)
                        taken = bool(cond)
                        target = instr.then_target if taken else instr.else_target
                        if on_branch is not None:
                            on_branch(proc, block.label, idx, "cond", taken, target)
                        frame.label = target
                        frame.index = 0
                        break
                    elif cls is Jump:
                        if on_branch is not None:
                            on_branch(proc, block.label, idx, "jump", True, instr.target)
                        frame.label = instr.target
                        frame.index = 0
                        break
                    elif cls is Ret:
                        value = eval_(frame, instr.value) if instr.value is not None else None
                        done = self._do_return(frame, value)
                        if done:
                            return value
                        break
                    elif cls is Call or cls is ICall:
                        entered = self._do_call(frame, proc, block, idx, instr)
                        frame.index = idx + 1
                        if entered:
                            break
                    elif cls is Alloca:
                        size = eval_(frame, instr.size)
                        if not isinstance(size, int) or size < 0:
                            raise ExecError(
                                "bad alloca size {!r}".format(size), proc.name, block.label, idx
                            )
                        self._stack_top -= size
                        regs[instr.dest.name] = self._stack_top
                        frame.index = idx + 1
                    elif cls is Probe:
                        probe_counts[instr.counter_id] += 1
                        frame.index = idx + 1
                    else:  # pragma: no cover - unreachable with a verified program
                        raise ExecError(
                            "unknown instruction {!r}".format(instr), proc.name, block.label, idx
                        )
                else:
                    raise ExecError(
                        "fell off the end of block", proc.name, block.label, len(instrs)
                    )

                if len(frames) == depth0:
                    raise ExecError("internal: frame stack underflow")  # pragma: no cover
        finally:
            self.steps = steps

    # ------------------------------------------------------------------
    # Instruction helpers
    # ------------------------------------------------------------------

    def _binop(self, frame: _Frame, instr: BinOp, proc, block, idx) -> Word:
        lhs = self._eval(frame, instr.lhs)
        rhs = self._eval(frame, instr.rhs)
        if isinstance(lhs, CodePtr) or isinstance(rhs, CodePtr):
            if instr.op == "eq":
                return 1 if lhs == rhs else 0
            if instr.op == "ne":
                return 0 if lhs == rhs else 1
            raise ExecError(
                "arithmetic on code pointer", proc.name, block.label, idx
            )
        try:
            return eval_binop(instr.op, lhs, rhs)
        except (EvalError, TypeError) as ex:
            raise ExecError(str(ex), proc.name, block.label, idx)

    def _eval(self, frame: _Frame, op: Operand) -> Word:
        cls = op.__class__
        if cls is Reg:
            try:
                return frame.regs[op.name]
            except KeyError:
                raise ExecError(
                    "read of unset register %{} in @{}".format(op.name, frame.proc.name)
                )
        if cls is Imm:
            return op.value
        if cls is GlobalRef:
            return self.global_addr(op.name)
        if cls is FuncRef:
            return CodePtr(op.name)
        raise ExecError("unknown operand {!r}".format(op))  # pragma: no cover

    def _do_call(self, frame: _Frame, proc, block, idx, instr) -> bool:
        """Execute a call.  Returns True when a new frame was entered."""
        if instr.__class__ is ICall:
            target = self._eval(frame, instr.func)
            if not isinstance(target, CodePtr):
                raise ExecError(
                    "indirect call through non-code value {!r}".format(target),
                    proc.name,
                    block.label,
                    idx,
                )
            callee_name = target.name
            kind = "indirect"
        else:
            callee_name = instr.callee
            kind = "direct"

        args = [self._eval(frame, a) for a in instr.args]
        self.call_count += 1
        if self.collect_site_counts:
            self.site_counts[(proc.module, instr.site_id)] += 1

        callee = self._procs.get(callee_name)
        if callee is not None:
            if self._sink_call:
                self.sink.on_call(proc, callee_name, kind, len(args))
            self._push_frame(callee, args, dest=instr.dest)
            return True

        builtin = self._builtins.get(callee_name)
        if builtin is None:
            raise ExecError(
                "call to unresolved external @{}".format(callee_name),
                proc.name,
                block.label,
                idx,
            )
        if self._sink_call:
            self.sink.on_call(proc, callee_name, "builtin", len(args))
        result = builtin(args)
        if instr.dest is not None:
            frame.regs[instr.dest.name] = result
        return False

    def _do_return(self, frame: _Frame, value: Optional[Word]) -> bool:
        """Pop ``frame``; returns True when it was the root frame."""
        self._pop_frame()
        if not self._frames:
            return True
        caller = self._frames[-1]
        if self._sink_return:
            self.sink.on_return(frame.proc.name, caller.proc)
        if frame.dest is not None:
            if value is None:
                raise ExecError(
                    "void return into a result register from @{}".format(frame.proc.name)
                )
            caller.regs[frame.dest.name] = value
        return False

    # ------------------------------------------------------------------
    # Builtins (the runtime library)
    # ------------------------------------------------------------------

    def _bi_print_int(self, args: List[Word]) -> None:
        self._expect_args("print_int", args, 1)
        value = args[0]
        if not isinstance(value, int):
            raise ExecError("print_int of non-integer {!r}".format(value))
        self.output.append(value)

    def _bi_print_flt(self, args: List[Word]) -> None:
        self._expect_args("print_flt", args, 1)
        value = args[0]
        if not isinstance(value, float):
            raise ExecError("print_flt of non-float {!r}".format(value))
        self.output.append(value)

    def _bi_input(self, args: List[Word]) -> int:
        self._expect_args("input", args, 1)
        index = args[0]
        if not isinstance(index, int):
            raise ExecError("input index must be an integer")
        if 0 <= index < len(self.inputs):
            value = self.inputs[index]
            if isinstance(value, float):
                raise ExecError("input({}) holds a float; use inputs of int".format(index))
            return value
        return 0

    def _bi_input_len(self, args: List[Word]) -> int:
        self._expect_args("input_len", args, 0)
        return len(self.inputs)

    def _bi_exit(self, args: List[Word]) -> None:
        self._expect_args("exit", args, 1)
        code = args[0]
        if not isinstance(code, int):
            raise ExecError("exit code must be an integer")
        raise _Exit(code)

    def _bi_abs(self, args: List[Word]) -> int:
        self._expect_args("abs", args, 1)
        value = args[0]
        if not isinstance(value, int):
            raise ExecError("abs of non-integer {!r}".format(value))
        return wrap_int(abs(value))

    def _bi_sbrk(self, args: List[Word]) -> int:
        self._expect_args("sbrk", args, 1)
        words = args[0]
        if not isinstance(words, int):
            raise ExecError("sbrk size must be an integer")
        return self.memory.sbrk(words)

    def _bi_va_arg(self, args: List[Word]) -> Word:
        self._expect_args("va_arg", args, 1)
        frame = self._frames[-1]
        index = args[0]
        if not isinstance(index, int):
            raise ExecError("va_arg index must be an integer")
        if 0 <= index < len(frame.varargs):
            return frame.varargs[index]
        return 0

    def _bi_va_count(self, args: List[Word]) -> int:
        self._expect_args("va_count", args, 0)
        return len(self._frames[-1].varargs)

    @staticmethod
    def _expect_args(name: str, args: List[Word], count: int) -> None:
        if len(args) != count:
            raise ExecError(
                "builtin @{} expects {} args, got {}".format(name, count, len(args))
            )


def run_program(
    program: Program,
    inputs: Sequence[Union[int, float]] = (),
    entry: str = "main",
    sink: Optional[EventSink] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    collect_site_counts: bool = False,
    collect_block_counts: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> Result:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(
        program,
        inputs,
        sink=sink,
        max_steps=max_steps,
        collect_site_counts=collect_site_counts,
        collect_block_counts=collect_block_counts,
        engine=engine,
    )
    return interp.run(entry)
