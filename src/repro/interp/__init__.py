"""IR interpreter: execution engine, events, memory, errors."""

from .errors import ExecError, StepLimitExceeded
from .events import CountingSink, EventSink
from .interpreter import DEFAULT_MAX_STEPS, Interpreter, Result, run_program
from .memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE, CodePtr, Memory

__all__ = [
    "CodePtr",
    "CountingSink",
    "DEFAULT_MAX_STEPS",
    "EventSink",
    "ExecError",
    "GLOBAL_BASE",
    "HEAP_BASE",
    "Interpreter",
    "Memory",
    "Result",
    "STACK_BASE",
    "StepLimitExceeded",
    "run_program",
]
