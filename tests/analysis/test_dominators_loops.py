"""Dominators and natural loops."""

from repro.analysis import (
    dominates,
    find_loops,
    immediate_dominators,
    loop_depths,
    loop_stats,
)
from repro.frontend import compile_module


def proc_of(source, name="f"):
    mod = compile_module(source, "m")
    return mod.procs[name]


class TestDominators:
    def test_diamond(self):
        proc = proc_of("int f(int x) { int r; if (x) r = 1; else r = 2; return r; }")
        idom = immediate_dominators(proc)
        entry = proc.entry
        assert idom[entry] is None
        # The join is dominated by the entry, not by either arm.
        join = [l for l in proc.blocks if l.startswith("if.join")][0]
        assert idom[join] == entry
        assert dominates(idom, entry, join)
        then_block = [l for l in proc.blocks if l.startswith("if.then")][0]
        assert not dominates(idom, then_block, join)

    def test_linear_chain(self):
        proc = proc_of("int f() { int a = 1; { int b = 2; } return a; }")
        idom = immediate_dominators(proc)
        for label in proc.reachable_labels():
            assert label in idom

    def test_loop_header_dominates_body(self):
        proc = proc_of("int f(int n) { int s = 0; while (n) { s += n; n--; } return s; }")
        idom = immediate_dominators(proc)
        head = [l for l in proc.blocks if l.startswith("while.head")][0]
        body = [l for l in proc.blocks if l.startswith("while.body")][0]
        assert dominates(idom, head, body)


class TestLoops:
    def test_single_loop(self):
        proc = proc_of("int f(int n) { int s = 0; while (n) { n--; } return s; }")
        loops = find_loops(proc)
        assert len(loops) == 1
        head = [l for l in proc.blocks if l.startswith("while.head")][0]
        assert loops[0].header == head

    def test_no_loops(self):
        proc = proc_of("int f(int x) { if (x) return 1; return 0; }")
        assert find_loops(proc) == []
        assert loop_stats(proc) == (0, 0)

    def test_nested_depths(self):
        proc = proc_of(
            """
            int f(int n) {
              int s = 0;
              for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                  s += j;
                }
              }
              return s;
            }
            """
        )
        depths = loop_depths(proc)
        assert max(depths.values()) == 2
        assert depths[proc.entry] == 0
        count, deepest = loop_stats(proc)
        assert count == 2 and deepest == 2

    def test_do_while_loop_found(self):
        proc = proc_of("int f(int n) { do { n--; } while (n); return n; }")
        assert len(find_loops(proc)) == 1
