"""Fleet instances: serve the optimized build, sample the stable image.

Each :class:`FleetInstance` owns one input chunk (one training vector)
and does two things per round:

1. **serve** — run its chunk on the currently deployed optimized
   build (the thing continuous profiling exists to keep fast);
2. **sample** — run the same chunk on the *profiling image* under the
   sampling profiler and ship the evidence to the collector as a
   CRC-framed shard.

The two images are deliberately distinct, AutoFDO-style.  The serving
build is whatever the controller last swapped in — inlined, cloned,
block-renamed by the HLO.  Samples taken on it would carry keys and
fingerprints from a shape that changes on every rebuild, so each swap
would orphan all prior evidence.  The profiling image is the plain
front-end compile: a stable anchor whose (proc, label) space never
moves, so evidence from every round and every epoch merges cleanly and
the steady-state merge converges on what exact instrumentation would
have measured.

Delivery is at-least-once: a shard stays in the instance's
retransmission window until the collector ACKs it, with jittered
exponential backoff between attempts (the jitter is seeded — the whole
loop is deterministic).  The supervisor handles the control plane:
restarting flapped instances and fanning a hot swap across the fleet,
including the mid-swap crash the fault matrix requires surviving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..interp.errors import ExecError
from ..interp.interpreter import DEFAULT_ENGINE, DEFAULT_MAX_STEPS, run_program
from ..ir.program import Program
from ..obs import NULL_METRICS
from ..obs import names
from ..resilience.faults import FaultInjector
from ..sampling.sampler import (
    DEFAULT_CONTEXT_DEPTH,
    SampledProfile,
    sample_run,
)
from .shard import ProfileShard
from .transport import ShardTransport

DEFAULT_RETRY_BASE = 1  # ticks before the first retransmission
DEFAULT_RETRY_CAP = 8  # backoff ceiling, in ticks


@dataclass
class _Pending:
    shard: ProfileShard
    attempts: int = 0
    next_send: int = 0


@dataclass
class ServedBuild:
    """What an instance is currently executing: a build generation."""

    build_id: int
    program: Program


class FleetInstance:
    """One workload chunk: serve, sample, ship, retry."""

    def __init__(
        self,
        source: str,
        inputs: Sequence,
        profiling_image: Program,
        served: ServedBuild,
        rate: int,
        context_depth: int = DEFAULT_CONTEXT_DEPTH,
        seed: int = 0,
        engine: str = DEFAULT_ENGINE,
        max_steps: int = DEFAULT_MAX_STEPS,
        injector: Optional[FaultInjector] = None,
        retry_base: int = DEFAULT_RETRY_BASE,
        retry_cap: int = DEFAULT_RETRY_CAP,
        metrics=NULL_METRICS,
        epoch: int = 0,
    ):
        self.source = source
        self.inputs = list(inputs)
        self.profiling_image = profiling_image
        self.served = served
        self.epoch = epoch
        self.rate = rate
        self.context_depth = context_depth
        self.seed = seed
        self.engine = engine
        self.max_steps = max_steps
        self.injector = injector
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.metrics = metrics
        self.seq = 0
        self.rounds = 0
        self.pending: Dict[int, _Pending] = {}
        self.serve_traps = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------

    def step(self, tick: int, transport: ShardTransport) -> None:
        self._serve()
        self._sample_and_enqueue(tick)
        self._flush(tick, transport)
        self.rounds += 1

    def _serve(self) -> None:
        try:
            run_program(
                self.served.program, self.inputs, max_steps=self.max_steps,
                engine=self.engine,
            )
        except ExecError:
            # A trap while serving must never take the instance (or the
            # loop) down; it is counted and shows up in canary checks.
            self.serve_traps += 1
            self.metrics.count(names.FLEET_SERVE_TRAPS)

    def _sample_and_enqueue(self, tick: int) -> None:
        profile = SampledProfile(
            rate=self.rate, context_depth=self.context_depth,
            # Distinct sample placements per (instance, round); the
            # derivation is pure so a replayed round resamples the
            # same points.
            seed=self.seed * 1_000_003 + self.rounds * 7919,
        )
        sample_run(
            self.profiling_image, self.inputs, profile=profile,
            max_steps=self.max_steps, engine=self.engine,
        )
        payload = profile.to_database(self.profiling_image).to_text()
        if self.injector is not None:
            payload = self.injector.poison_payload(payload, self.source, self.seq)
        shard = ProfileShard(
            source=self.source, seq=self.seq, epoch=self.epoch,
            payload=payload,
        )
        self.pending[self.seq] = _Pending(shard, attempts=0, next_send=tick)
        self.seq += 1

    def _flush(self, tick: int, transport: ShardTransport) -> None:
        for pending in sorted(self.pending.values(), key=lambda p: p.shard.seq):
            if pending.next_send > tick:
                continue
            if pending.attempts > 0:
                self.retries += 1
                self.metrics.count(names.FLEET_SHARDS_RETRIED)
            transport.send(pending.shard, tick, attempt=pending.attempts)
            pending.attempts += 1
            pending.next_send = tick + self._backoff(pending)

    def _backoff(self, pending: _Pending) -> int:
        """Jittered exponential backoff, seeded per (shard, attempt)."""
        base = min(self.retry_cap, self.retry_base * (2 ** (pending.attempts - 1)))
        rng = random.Random(
            "{}|{}|{}|{}".format(self.seed, self.source,
                                 pending.shard.seq, pending.attempts)
        )
        return base + rng.randrange(0, 2)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def ack(self, seq: int, accepted: bool) -> None:
        if accepted:
            self.pending.pop(seq, None)
        # NACK: leave it pending; the backoff timer already scheduled
        # the retransmission.

    def swap(self, build: ServedBuild) -> None:
        self.served = build

    def set_epoch(self, epoch: int) -> None:
        """Stamp future shards with a new collection epoch.

        The epoch is the controller's rebuild-attempt counter, not the
        build id: quarantine granularity follows rebuild attempts, so
        evidence gathered before and after a failed rebuild lands in
        different buckets and only the offending bucket is discarded.
        """
        self.epoch = epoch


class FleetSupervisor:
    """Owns the instances: stepping, restarts, and fleet-wide swaps."""

    def __init__(
        self,
        instances: List[FleetInstance],
        injector: Optional[FaultInjector] = None,
        metrics=NULL_METRICS,
    ):
        self.instances = instances
        self.injector = injector
        self.metrics = metrics
        self.restarts = 0
        self.served_build_ids = {inst.served.build_id for inst in instances}

    def step(self, tick: int, transport: ShardTransport) -> None:
        for index, inst in enumerate(self.instances):
            if self.injector is not None and self.injector.flap(inst.source, tick):
                # The instance died this round: it produces nothing and
                # comes back empty-handed (in-flight retransmission
                # state is process state and is lost with the process).
                self.instances[index] = self._restart(inst, inst.served)
                continue
            inst.step(tick, transport)

    def _restart(self, dead: FleetInstance, build: ServedBuild) -> FleetInstance:
        self.restarts += 1
        self.metrics.count(names.FLEET_INSTANCE_RESTARTS)
        fresh = FleetInstance(
            source=dead.source, inputs=dead.inputs,
            profiling_image=dead.profiling_image, served=build,
            rate=dead.rate, context_depth=dead.context_depth, seed=dead.seed,
            engine=dead.engine, max_steps=dead.max_steps,
            injector=dead.injector, retry_base=dead.retry_base,
            retry_cap=dead.retry_cap, metrics=dead.metrics, epoch=dead.epoch,
        )
        # Sequence numbers must not restart at 0 — the collector's
        # dedupe would silently eat the reborn instance's first shards.
        fresh.seq = dead.seq
        fresh.rounds = dead.rounds
        return fresh

    def apply_acks(self, acks) -> None:
        by_source = {inst.source: inst for inst in self.instances}
        for ack in acks:
            inst = by_source.get(ack.source)
            if inst is not None:
                inst.ack(ack.seq, ack.accepted)

    def swap_all(self, build: ServedBuild) -> None:
        """Deploy a canaried build fleet-wide, surviving a mid-swap crash.

        Old programs' plan caches are flushed (stale pre-decoded plans
        must not outlive the build they encode), and an instance the
        injector kills partway through is restarted *on the new build*
        — exactly what a real supervisor does: the restart policy's
        target is the current deployment, so a mid-swap crash can delay
        convergence but never produce a mixed fleet.
        """
        kill_index = None
        if self.injector is not None and self.injector.kill_mid_swap(
            build.build_id
        ):
            kill_index = len(self.instances) // 2
        for index, inst in enumerate(self.instances):
            old = inst.served.program
            if index == kill_index:
                self.instances[index] = self._restart(inst, build)
            else:
                inst.swap(build)
            if old is not build.program:
                old.invalidate_plans()
        self.served_build_ids.add(build.build_id)
        self.metrics.count(names.FLEET_SWAPS)

    def set_epoch(self, epoch: int) -> None:
        for inst in self.instances:
            inst.set_epoch(epoch)

    def serve_traps(self) -> int:
        return sum(inst.serve_traps for inst in self.instances)

    def retries(self) -> int:
        return sum(inst.retries for inst in self.instances)
