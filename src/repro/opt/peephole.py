"""Peephole algebraic simplification and strength reduction.

Identities are applied only when the constant operand is an integer
immediate, which (with a typed front end) implies the register operand
is an integer too — float identities like ``x + 0.0`` are unsound in
the presence of negative zero and NaN, so they are never applied.
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import BinOp, Instr, Mov
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.types import Type
from ..ir.values import Imm, Operand, Reg


def _int_imm(op: Operand) -> Optional[int]:
    if isinstance(op, Imm) and op.type is Type.INT:
        return op.value
    return None


def _simplify(instr: BinOp) -> Optional[Instr]:
    op = instr.op
    lhs, rhs = instr.lhs, instr.rhs
    lc, rc = _int_imm(lhs), _int_imm(rhs)

    # Canonical forms with the constant on the right for commutative ops.
    if lc is not None and rc is None and op in ("add", "mul", "and", "or", "xor"):
        lhs, rhs = rhs, lhs
        lc, rc = rc, lc

    if rc is not None:
        if op == "add" and rc == 0:
            return Mov(instr.dest, lhs)
        if op == "sub" and rc == 0:
            return Mov(instr.dest, lhs)
        if op == "mul":
            if rc == 0:
                return Mov(instr.dest, Imm(0))
            if rc == 1:
                return Mov(instr.dest, lhs)
            if rc > 1 and rc & (rc - 1) == 0:
                shift = rc.bit_length() - 1
                return BinOp(instr.dest, "shl", lhs, Imm(shift))
        if op == "div" and rc == 1:
            return Mov(instr.dest, lhs)
        if op == "mod" and rc == 1:
            return Mov(instr.dest, Imm(0))
        if op in ("shl", "shr") and rc == 0:
            return Mov(instr.dest, lhs)
        if op == "and" and rc == 0:
            return Mov(instr.dest, Imm(0))
        if op == "or" and rc == 0:
            return Mov(instr.dest, lhs)
        if op == "xor" and rc == 0:
            return Mov(instr.dest, lhs)

    # Same-register identities.  These hold for integers; for floats
    # ``x != x`` on NaN breaks them, so they only apply when one side is
    # an integer immediate — which same-register forms never are.  We
    # allow the bitwise pair (sound on any bit pattern of equal type)
    # and skip comparisons entirely.
    if isinstance(lhs, Reg) and isinstance(rhs, Reg) and lhs.name == rhs.name:
        if op == "and" or op == "or":
            return Mov(instr.dest, lhs)
        if op == "sub" or op == "xor":
            # x - x is 0 for ints; x could be float (x - x of NaN is
            # NaN), so restrict to xor, which is int-only by typing.
            if op == "xor":
                return Mov(instr.dest, Imm(0))
    return None


def peephole(program: Program, proc: Procedure) -> bool:
    changed = False
    for block in proc.blocks.values():
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, BinOp):
                replacement = _simplify(instr)
                if replacement is not None:
                    block.instrs[index] = replacement
                    changed = True
    return changed
