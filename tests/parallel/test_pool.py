"""The persistent worker pool: reuse across calls, bounded worker lives."""

from __future__ import annotations

import os

import pytest

from repro.parallel import DEFAULT_MAX_TASKS_PER_CHILD, PersistentPool
from repro.parallel.executor import parallel_map


def _pid(_item):
    return os.getpid()


def _square(item):
    return item * item


def _reject(item):
    raise ValueError("bad input {}".format(item))


def test_pool_survives_across_calls():
    pool = PersistentPool(jobs=2)
    try:
        first, outcome_a = parallel_map(_square, [1, 2, 3, 4], jobs=2, pool=pool)
        second, outcome_b = parallel_map(_square, [5, 6, 7, 8], jobs=2, pool=pool)
    finally:
        pool.close()
    assert first == [1, 4, 9, 16]
    assert second == [25, 36, 49, 64]
    assert not outcome_a.fell_back and not outcome_b.fell_back
    # One executor served both calls; nothing was torn down between them.
    assert pool.generations == 1
    assert pool.discards == 0
    assert pool.submitted == 8


def test_pool_reuses_the_same_workers():
    pool = PersistentPool(jobs=2)
    try:
        first, _ = parallel_map(_pid, list(range(8)), jobs=2, pool=pool)
        second, _ = parallel_map(_pid, list(range(8)), jobs=2, pool=pool)
    finally:
        pool.close()
    # Default recycling is generous, so the second call runs on the
    # first call's worker processes — the whole point of the pool.
    assert set(second) <= set(first)
    assert len(set(first)) <= 2


def test_worker_recycling_bounds_process_lifetime():
    pool = PersistentPool(jobs=2, max_tasks_per_child=1)
    try:
        pids, outcome = parallel_map(_pid, list(range(6)), jobs=2, pool=pool)
    finally:
        pool.close()
    assert not outcome.fell_back
    # Every worker retires after one task, so fresh processes keep
    # appearing: far more distinct pids than the two pool slots.
    assert len(set(pids)) >= 3
    assert pool.max_tasks_per_child == 1
    assert pool.submitted == 6


def test_discard_rebuilds_lazily():
    pool = PersistentPool(jobs=2)
    try:
        parallel_map(_square, [1, 2], jobs=2, pool=pool)
        pool.discard()
        assert pool.discards == 1
        results, outcome = parallel_map(_square, [3, 4], jobs=2, pool=pool)
    finally:
        pool.close()
    assert results == [9, 16]
    assert not outcome.fell_back
    assert pool.generations == 2


def test_serial_path_leaves_the_pool_untouched():
    pool = PersistentPool(jobs=2)
    try:
        results, _ = parallel_map(_square, [3], jobs=2, pool=pool)
    finally:
        pool.close()
    assert results == [9]
    assert pool.generations == 0  # single item: no executor ever built
    assert pool.submitted == 0


def test_input_errors_propagate_without_discarding():
    pool = PersistentPool(jobs=2)
    try:
        with pytest.raises(ValueError):
            parallel_map(_reject, [1, 2], jobs=2, pool=pool)
        # Bad input is the caller's problem, not pool breakage: the
        # executor survives for the next build.
        assert pool.discards == 0
        results, outcome = parallel_map(_square, [3, 4], jobs=2, pool=pool)
    finally:
        pool.close()
    assert results == [9, 16]
    assert not outcome.fell_back
    assert pool.generations == 1


def test_defaults_are_sane():
    pool = PersistentPool(jobs=0, max_tasks_per_child=0)
    assert pool.jobs == 1
    assert pool.max_tasks_per_child == 1
    assert DEFAULT_MAX_TASKS_PER_CHILD >= 1
