"""Profile pipeline: instrumentation, database, annotation, training."""

import pytest

from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import Probe
from repro.profile import (
    ProfileDatabase,
    annotate_program,
    clear_annotations,
    instrument_program,
    strip_probes,
    train,
)

SOURCES = [
    (
        "m",
        """
        int leaf(int x) { return x * 2; }
        int main() {
          int total = 0;
          for (int i = 0; i < input(0); i++) {
            if (i % 2) total += leaf(i);
          }
          print_int(total);
          return 0;
        }
        """,
    )
]


def probe_count(program):
    return sum(
        isinstance(i, Probe) for p in program.all_procs() for i in p.instructions()
    )


class TestInstrumentation:
    def test_one_probe_per_block(self):
        program = compile_program(SOURCES)
        blocks = sum(len(p.blocks) for p in program.all_procs())
        probe_map = instrument_program(program)
        assert probe_count(program) == blocks
        assert len(probe_map) == blocks

    def test_instrumentation_preserves_behavior(self):
        program = compile_program(SOURCES)
        before = run_program(program, [6]).behavior()
        instrument_program(program)
        assert run_program(program, [6]).behavior() == before

    def test_strip_probes(self):
        program = compile_program(SOURCES)
        instrument_program(program)
        removed = strip_probes(program)
        assert removed > 0
        assert probe_count(program) == 0

    def test_probe_counts_match_block_execution(self):
        program = compile_program(SOURCES)
        probe_map = instrument_program(program)
        result = run_program(program, [6], collect_block_counts=True)
        for counter_id, (proc, label) in probe_map.items():
            assert result.probe_counts.get(counter_id, 0) == result.block_counts.get(
                (proc, label), 0
            )


class TestDatabase:
    def make_db(self, inputs=(6,)):
        program = compile_program(SOURCES)
        probe_map = instrument_program(program)
        result = run_program(program, list(inputs))
        return ProfileDatabase.from_training_run(
            program, probe_map, result.probe_counts, result.steps
        )

    def test_block_counts_recorded(self):
        db = self.make_db()
        assert db.block_count("main", "entry") == 1
        assert db.block_count("leaf", "entry") == 3  # i in {1,3,5}

    def test_site_counts_derived_from_blocks(self):
        db = self.make_db()
        site_totals = sum(
            count for (mod, _site), count in db.site_counts.items() if mod == "m"
        )
        assert site_totals > 0
        leaf_counts = [c for c in db.site_counts.values() if c == 3]
        assert leaf_counts  # the leaf call site executed 3 times

    def test_merge_accumulates_runs(self):
        program = compile_program(SOURCES)
        probe_map = instrument_program(program)
        db = ProfileDatabase()
        for inputs in ([4], [8]):
            result = run_program(program, inputs)
            db.merge_run(program, probe_map, result.probe_counts, result.steps)
        assert db.training_runs == 2
        assert db.block_count("main", "entry") == 2

    def test_text_roundtrip(self):
        db = self.make_db()
        text = db.to_text()
        loaded = ProfileDatabase.from_text(text)
        assert loaded.block_counts == db.block_counts
        assert loaded.site_counts == db.site_counts
        assert loaded.training_steps == db.training_steps

    def test_save_load(self, tmp_path):
        db = self.make_db()
        path = str(tmp_path / "prof.db")
        db.save(path)
        assert ProfileDatabase.load(path).block_counts == db.block_counts

    def test_bad_text_rejected(self):
        with pytest.raises(ValueError):
            ProfileDatabase.from_text("not a db")
        with pytest.raises(ValueError):
            ProfileDatabase.from_text("profiledb 1\nbogus line here")


class TestAnnotation:
    def test_fresh_compile_annotated(self):
        db = TestDatabase().make_db()
        program = compile_program(SOURCES)  # fresh, unprobed compile
        annotated = annotate_program(program, db)
        assert annotated > 0
        main = program.proc("main")
        assert main.blocks[main.entry].profile_count == 1

    def test_stale_keys_skipped(self):
        db = TestDatabase().make_db()
        db.block_counts[("ghost_proc", "entry")] = 99
        program = compile_program(SOURCES)
        annotate_program(program, db)  # must not raise

    def test_clear_annotations(self):
        db = TestDatabase().make_db()
        program = compile_program(SOURCES)
        annotate_program(program, db)
        clear_annotations(program)
        assert all(
            b.profile_count is None
            for p in program.all_procs()
            for b in p.blocks.values()
        )


class TestTrain:
    def test_train_runs_pipeline(self):
        db = train(SOURCES, [[4], [8]])
        assert db.training_runs == 2
        assert db.training_steps > 0
        assert not db.is_empty()


class TestCombination:
    """Section 5 extension: profiles from a variety of sources."""

    def make_db(self, inputs):
        program = compile_program(SOURCES)
        probe_map = instrument_program(program)
        result = run_program(program, inputs)
        return ProfileDatabase.from_training_run(
            program, probe_map, result.probe_counts, result.steps
        )

    def test_scaled(self):
        db = self.make_db([6])
        doubled = db.scaled(2.0)
        assert doubled.block_count("leaf", "entry") == 2 * db.block_count("leaf", "entry")
        assert doubled.training_steps == 2 * db.training_steps
        # The original is untouched.
        assert db.block_count("leaf", "entry") == 3

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            self.make_db([6]).scaled(-1.0)

    def test_unweighted_combine_adds(self):
        a = self.make_db([6])
        b = self.make_db([10])
        merged = ProfileDatabase.combine([a, b])
        assert merged.block_count("leaf", "entry") == (
            a.block_count("leaf", "entry") + b.block_count("leaf", "entry")
        )
        assert merged.training_runs == 2

    def test_weighted_combine_equalizes_sources(self):
        short = self.make_db([4])
        long = self.make_db([40])
        # Unweighted, the long run dominates the hot-site ratio.
        dominated = ProfileDatabase.combine([short, long])
        # Equal weights normalize by run length first.
        balanced = ProfileDatabase.combine([short, long], weights=[1.0, 1.0])
        key = ("leaf", "entry")
        ratio_dom = dominated.block_counts[key] / max(dominated.block_counts[("main", "entry")], 1)
        ratio_bal = balanced.block_counts[key] / max(balanced.block_counts[("main", "entry")], 1)
        assert ratio_bal < ratio_dom  # the short run pulled the mix down

    def test_weight_arity_checked(self):
        with pytest.raises(ValueError):
            ProfileDatabase.combine([self.make_db([4])], weights=[1.0, 2.0])

    def test_combine_empty(self):
        merged = ProfileDatabase.combine([])
        assert merged.is_empty()
