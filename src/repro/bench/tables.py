"""Plain-text table formatting for the experiment harness."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def fmt_cell(value: Cell) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "{:.0f}".format(value)
        if abs(value) >= 10:
            return "{:.1f}".format(value)
        return "{:.3f}".format(value)
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render an aligned ASCII table (right-aligned numeric columns)."""
    str_rows = [[fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's overall SPEC ratio aggregation)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
