"""Fixtures for the continuous-profiling fleet tests.

One small multi-module program with a hot helper (so cp builds make
real inline decisions), plus shard-payload helpers on its profiling
image.
"""

from __future__ import annotations

import pytest

from repro.frontend.driver import compile_program
from repro.sampling.sampler import SampledProfile, sample_run

SOURCES = [
    (
        "util",
        "int weigh(int x) { return x * 3 + 1; }\n"
        "int heavy(int x) { int i = 0; int acc = 0;\n"
        "  while (i < 8) { acc = acc + weigh(x + i); i = i + 1; }\n"
        "  return acc; }\n",
    ),
    (
        "main",
        "extern int heavy(int x);\n"
        "int main() { int n = input(0); int i = 0; int acc = 0;\n"
        "  while (i < 12) { acc = acc + heavy(n + i); i = i + 1; }\n"
        "  print_int(acc); return 0; }\n",
    ),
]

TRAIN_INPUTS = [[3], [9]]
REF_INPUT = [5]


@pytest.fixture
def sources():
    return [(name, text) for name, text in SOURCES]


@pytest.fixture
def profiling_image():
    return compile_program(SOURCES)


def sampled_payload(program, inputs=(3,), rate=4, seed=0) -> str:
    """A well-formed sampled profiledb payload for ``program``."""
    profile = SampledProfile(rate=rate, context_depth=2, seed=seed)
    sample_run(program, list(inputs), profile=profile)
    return profile.to_database(program).to_text()
