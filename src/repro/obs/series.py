"""Bounded time-series metrics: how a number evolved, not just its end.

Counters and gauges (:mod:`repro.obs.metrics`) answer "what was the
total"; the fleet loop needs "what happened over the epochs" — drift
climbing toward the rebuild threshold, confidence recovering after an
epoch quarantine, the Jaccard-vs-exact trajectory converging to 1.0.
:class:`Series` is a bounded ring buffer of ``(tick, value)`` points;
:class:`SeriesBank` is the named collection a
:class:`~repro.obs.metrics.MetricsRegistry` carries, sampled once per
fleet tick by :meth:`~repro.fleet.loop.FleetLoop.run`.

The bound matters: a fleet is meant to run indefinitely, and an
observability layer that grows without limit is itself a production
incident.  When a series is full the *oldest* point is evicted and the
eviction is counted (``dropped``), so an exported file is explicit
about being a suffix of the full history.

Export is JSONL (``--series-out``): one header object (schema, the
per-series point/drop/capacity accounting) and then one object per
point, validated by ``repro.obs.validate --series``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

SERIES_SCHEMA_VERSION = 1

#: Default ring capacity — comfortably above any smoke-test round
#: count while keeping a runaway loop's memory bounded.
DEFAULT_SERIES_CAPACITY = 1024


class Series:
    """One named ring buffer of ``(tick, value)`` points."""

    __slots__ = ("name", "capacity", "dropped", "_points", "_start")

    def __init__(self, name: str, capacity: int = DEFAULT_SERIES_CAPACITY):
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self._points: List[Tuple[int, float]] = []
        self._start = 0  # ring head when the buffer is saturated

    def __len__(self) -> int:
        return len(self._points)

    def append(self, tick: int, value: float) -> None:
        point = (int(tick), float(value))
        if len(self._points) < self.capacity:
            self._points.append(point)
            return
        # Saturated: overwrite the oldest slot in place (true ring —
        # no O(n) list shifting on the hot path).
        self._points[self._start] = point
        self._start = (self._start + 1) % self.capacity
        self.dropped += 1

    def points(self) -> List[Tuple[int, float]]:
        """The retained points, oldest first."""
        return self._points[self._start:] + self._points[: self._start]

    def last(self) -> Optional[Tuple[int, float]]:
        return self.points()[-1] if self._points else None


class SeriesBank:
    """The named series a metrics registry carries."""

    def __init__(self, capacity: int = DEFAULT_SERIES_CAPACITY):
        self.capacity = capacity
        self._series: Dict[str, Series] = {}

    def record(self, name: str, tick: int, value: float,
               capacity: Optional[int] = None) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series(
                name, capacity if capacity is not None else self.capacity
            )
        series.append(tick, value)

    def get(self, name: str) -> Optional[Series]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    # -- Export ---------------------------------------------------------

    def header(self) -> dict:
        return {
            "schema": SERIES_SCHEMA_VERSION,
            "kind": "series",
            "series": {
                name: {
                    "points": len(series),
                    "dropped": series.dropped,
                    "capacity": series.capacity,
                }
                for name, series in sorted(self._series.items())
            },
        }

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        for name in self.names():
            for tick, value in self._series[name].points():
                lines.append(
                    json.dumps(
                        {"series": name, "tick": tick, "value": value},
                        sort_keys=True,
                    )
                )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
