"""Configuration knobs for an HLO run.

The defaults mirror the paper: a 100% compile-time budget ("by default
the inliner will try to limit compile-time increases to 100% over no
inlining"), four alternating clone/inline passes, profile use when data
is present, and both transforms enabled.  The ablation benchmarks and
Figure 8 sweep these knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple


@dataclass
class HLOConfig:
    # Budget control (Figure 2 / Figure 8).
    budget_percent: float = 100.0
    pass_limit: int = 4

    # Which transforms run (Figure 6 compares the four combinations).
    enable_inlining: bool = True
    enable_cloning: bool = True

    # Optimization scope (Table 1's base / c rows): with cross_module
    # off, HLO refuses sites whose caller and callee live in different
    # modules, modelling module-at-a-time compilation.
    cross_module: bool = True

    # Profile-directed feedback (Table 1's p rows): with use_profile
    # off, annotated counts are ignored and static heuristics rank sites.
    use_profile: bool = True

    # Inline heuristics.
    inline_recursive: bool = True
    cold_penalty: float = 0.25  # benefit multiplier for colder-than-entry sites
    min_inline_benefit: float = 1e-9

    # Clone heuristics: use-kind weights for the callee-side analysis.
    plain_use_weight: float = 1.0
    branch_use_weight: float = 3.0
    indirect_call_bonus: float = 10.0
    min_clone_benefit: float = 1e-9
    clone_groups: bool = True  # greedy sharing of clones across sites
    clone_database: bool = True  # cross-pass clone reuse

    # Re-run the scalar optimizer over transformed routines between
    # passes (Figures 3/4: "optimize ... and recalibrate").
    reoptimize: bool = True

    # Figure 8's validation knob: stop after N inlines + replacements.
    stop_after: Optional[int] = None

    # Aggressive outlining (the paper's Section 5 future work): extract
    # cold blocks into fresh procedures before the clone/inline loop,
    # shrinking hot bodies and freeing quadratic budget for hot-path
    # inlining.  Off by default, as it was for the paper.
    enable_outlining: bool = False
    outline_cold_ratio: float = 0.05
    outline_min_block_size: int = 4

    # ------------------------------------------------------------------
    # Resilience (docs/resilience.md): the guarded pass manager.
    # ------------------------------------------------------------------

    # Isolate every pass behind snapshot/rollback.  On by default: a
    # healthy build pays one procedure copy per pass application and
    # nothing else; an unhealthy build degrades instead of aborting.
    guarded: bool = True

    # Turn every degradation (pass rollback, quarantine) into a hard
    # error — the CI / debugging mode.
    strict: bool = False

    # Verify IR after each guarded pass application, not only at HLO
    # exit.  Slower; catches corruption at the corrupting pass.
    verify_each_pass: bool = False

    # Failures of one pass before the guard quarantines it.
    max_pass_failures: int = 2

    # Modules forced back to module-at-a-time scope (their isoms were
    # corrupt or version-skewed); inline/clone never crosses their
    # boundary even in a cross_module build.
    local_modules: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Performance (docs/performance.md): analysis memoization.
    # ------------------------------------------------------------------

    # Reuse call graph / frequency / entry-count analyses across HLO
    # stages and passes, invalidating only what a transform mutated.
    # Off = recompute everything from scratch every stage (the ablation
    # and equivalence-testing mode).
    memoize_analyses: bool = True

    # ------------------------------------------------------------------
    # Inlining strategy (docs/performance.md "Inlining strategies").
    # ------------------------------------------------------------------

    # "global" is the paper's whole-program multi-pass loop; "demand"
    # forms profile-hot regions (Way & Pollock) and walks only
    # region-interior call sites under per-region budgets, so compile
    # work scales with the hot footprint instead of program size.
    strategy: str = "global"

    # Demand-strategy region formation: a procedure (or block) is hot
    # when its absolute heat reaches this fraction of the hottest
    # procedure's entry count.  Regions grow along dominator / loop
    # structure through hot call sites until the summed member size
    # reaches region_size_cap; at most region_limit regions form, so
    # planner work is bounded regardless of program size.
    region_hot_fraction: float = 0.001
    region_size_cap: int = 200
    region_limit: int = 64

    # Per-region compile-cost allowance, as a percentage of the
    # region's own quadratic cost (the region-local analogue of
    # budget_percent).  Higher than the global default on purpose: the
    # global budget pools slack from every cold routine, while a region
    # budget has only its own (capped) footprint to draw on — the
    # quadratic delta of merging two similar-size routines exceeds a
    # 100% allowance of their summed cost, so parity with the global
    # strategy on hot code needs a few multiples of the (much smaller)
    # regional base.  Total growth stays bounded by the hot footprint,
    # not program size.
    region_budget_percent: float = 300.0

    def fingerprint(self) -> str:
        """A stable digest of every knob, for incremental-cache keys.

        Two configs with equal fields fingerprint identically; any
        field change — even one irrelevant to the frontend — derives a
        new digest, so cached objects are never shared across configs.
        """
        import hashlib
        from dataclasses import fields

        digest = hashlib.sha256()
        for spec in sorted(fields(self), key=lambda f: f.name):
            digest.update(spec.name.encode("utf-8"))
            digest.update(b"=")
            digest.update(repr(getattr(self, spec.name)).encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def with_scope(self, cross_module: bool, use_profile: bool) -> "HLOConfig":
        """A copy configured for one of Table 1's scope rows."""
        return replace(self, cross_module=cross_module, use_profile=use_profile)

    def with_strategy(self, strategy: str) -> "HLOConfig":
        """A copy using ``strategy`` ("global" or "demand")."""
        return replace(self, strategy=strategy)

    def with_strict(self) -> "HLOConfig":
        """A copy with every degradation promoted to a hard error."""
        return replace(self, strict=True)

    def with_local_modules(self, modules) -> "HLOConfig":
        """A copy with ``modules`` pinned to module-at-a-time scope."""
        return replace(self, local_modules=tuple(modules))

    def inline_only(self) -> "HLOConfig":
        return replace(self, enable_cloning=False, enable_inlining=True)

    def clone_only(self) -> "HLOConfig":
        return replace(self, enable_inlining=False, enable_cloning=True)

    def neither(self) -> "HLOConfig":
        return replace(self, enable_inlining=False, enable_cloning=False)
