#!/usr/bin/env python
"""Staged devirtualization: cloning + inlining turn indirect calls direct.

Section 3.1 of the paper: "HLO will aggressively clone at sites where
the caller passes a pointer to a procedure and the callee uses the
value of a formal variable in an indirect call.  Subsequent constant
propagation of this code pointer to the call site will then provide
the information needed to turn the indirect call into a direct call,
which can then be inlined or cloned in a later pass.  This sort of
staged optimization would be much more difficult to accomplish in a
single inlining pass."

This example builds exactly that shape — an event loop dispatching
through a handler-table accessor — and shows the indirect-call count
falling across HLO passes while behaviour stays fixed.

Run:  python examples/devirtualization.py
"""

from repro import HLOConfig, compile_program, run_hlo, run_program
from repro.ir import ICall

HANDLERS = """
// Handlers are file statics: devirtualizing across modules also forces
// promotion to global scope (Section 2.3's promotion machinery).
static int on_add(int v) { return v + 10; }
static int on_mul(int v) { return v * 3; }
static int on_neg(int v) { return -v; }

int handler_for(int event) {
  if (event == 0) return &on_add;
  if (event == 1) return &on_mul;
  return &on_neg;
}
"""

LOOP = """
extern int handler_for(int event);

int dispatch(int event, int value) {
  int h = handler_for(event);
  return h(value);
}

int main() {
  int acc = 1;
  for (int i = 0; i < 50; i++) {
    acc = dispatch(0, acc) % 1000;
    acc = dispatch(1, acc) % 1000;
  }
  print_int(acc);
  return 0;
}
"""


def count_icalls(program) -> int:
    return sum(
        isinstance(instr, ICall)
        for proc in program.all_procs()
        for instr in proc.instructions()
    )


def main() -> None:
    sources = [("handlers", HANDLERS), ("loop", LOOP)]

    raw = compile_program(sources)
    reference = run_program(raw)
    print("raw program:  {} indirect call sites, output {}".format(
        count_icalls(raw), list(reference.output)))

    for passes in (1, 2, 4):
        program = compile_program(sources)
        report = run_hlo(program, HLOConfig(budget_percent=1000, pass_limit=passes))
        result = run_program(program)
        assert result.behavior() == reference.behavior()
        print(
            "pass_limit={}: {} indirect sites remain | inlines={} clones={} "
            "devirtualized={} promotions={}".format(
                passes,
                count_icalls(program),
                report.inlines,
                report.clones,
                report.devirtualized,
                report.promotions,
            )
        )

    print("\nWith enough passes the dispatch chain collapses: the accessor")
    print("inlines, the code-pointer constant reaches the indirect site,")
    print("constant propagation rewrites it to a direct call, and the")
    print("handler itself becomes an inline candidate for the next pass.")


if __name__ == "__main__":
    main()
