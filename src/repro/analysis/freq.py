"""Execution frequency estimation.

The inline/clone heuristics consume two frequency notions (Section 2.4):

- **relative** block frequency within a procedure — the count of a block
  relative to the routine entry.  "Sites that occur in blocks executed
  less frequently than the routine entry block are assigned a penalty."
  With PBO data this is the measured ratio; without it, the loop-depth
  heuristic guesses (10x per nesting level, halved per dominating
  conditional is approximated simply by branch fan-out splitting).
- **absolute** call-site weight across the program — used to rank inline
  candidates program-wide.  With PBO data these are measured call-site
  counts; without, we propagate an entry count of 1 from ``main``
  through the call graph to a damped fixed point.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.procedure import Procedure
from ..ir.program import Program
from .callgraph import CallGraph
from .loops import loop_depths

LOOP_MULTIPLIER = 10.0
MAX_PROPAGATION_ROUNDS = 10
RECURSION_DAMPING = 0.5


def static_block_freqs(proc: Procedure) -> Dict[str, float]:
    """Heuristic per-block frequency relative to entry (entry = 1.0).

    freq(b) = LOOP_MULTIPLIER ** depth(b) * branch_factor(b), where the
    branch factor splits flow evenly at conditionals and propagates only
    between blocks at the *same* loop depth.  Crossing a depth boundary
    (entering or leaving a loop) resets the factor to 1, so code after a
    loop is estimated at entry frequency again rather than inheriting
    the loop's amplification.  This is intentionally a heuristic in the
    paper's spirit ("without such data it uses heuristics to guess at
    the relative importance").
    """
    depths = loop_depths(proc)
    factors: Dict[str, float] = {}
    preds = proc.predecessors()
    rpo = proc.rpo_labels()
    for label in rpo:
        if label == proc.entry:
            factors[label] = 1.0
            continue
        flow = 0.0
        seen_forward_same_depth = False
        for pred in preds[label]:
            if depths.get(pred) != depths[label]:
                continue  # depth boundary: contributes a reset, not flow
            if pred not in factors:
                continue  # back edge: handled by the loop multiplier
            seen_forward_same_depth = True
            succs = proc.blocks[pred].successors()
            flow += factors[pred] / max(len(set(succs)), 1)
        if not seen_forward_same_depth:
            flow = 1.0  # entered a new depth region (loop header or exit)
        factors[label] = min(max(flow, 1e-6), 1.0)
    return {
        label: (LOOP_MULTIPLIER ** depths[label]) * factor
        for label, factor in factors.items()
    }


def profile_block_freqs(proc: Procedure) -> Optional[Dict[str, float]]:
    """Measured per-block frequency relative to entry, if annotated."""
    entry_block = proc.blocks.get(proc.entry) if proc.entry else None
    if entry_block is None or entry_block.profile_count is None:
        return None
    entry_count = max(entry_block.profile_count, 1)
    freqs: Dict[str, float] = {}
    for label, block in proc.blocks.items():
        count = block.profile_count
        freqs[label] = (count / entry_count) if count is not None else 0.0
    return freqs


def block_freqs(proc: Procedure, use_profile: bool = True) -> Dict[str, float]:
    """Relative block frequencies, preferring profile data when present."""
    if use_profile:
        measured = profile_block_freqs(proc)
        if measured is not None:
            return measured
    return static_block_freqs(proc)


def entry_counts(
    program: Program,
    graph: CallGraph,
    site_counts: Optional[Dict[Tuple[str, int], int]] = None,
) -> Dict[str, float]:
    """Absolute entry count per procedure.

    With measured ``site_counts`` (keyed by ``(module, site_id)``) the
    entry count is simply the sum of counts of incoming sites (plus 1
    for ``main``).  Without, propagate static estimates from ``main``
    through the call graph, damping recursive edges so the fixed point
    converges.
    """
    counts: Dict[str, float] = {p.name: 0.0 for p in program.all_procs()}
    if "main" in counts:
        counts["main"] = 1.0

    if site_counts is not None:
        for name in counts:
            incoming = graph.callers_of(name)
            total = sum(site_counts.get(site.key, 0) for site in incoming)
            if name == "main":
                total = max(total, 1)
            counts[name] = float(total)
        return counts

    rel_cache: Dict[str, Dict[str, float]] = {}

    def rel(proc: Procedure, label: str) -> float:
        if proc.name not in rel_cache:
            rel_cache[proc.name] = static_block_freqs(proc)
        return rel_cache[proc.name].get(label, 0.0)

    for _ in range(MAX_PROPAGATION_ROUNDS):
        new_counts = {name: 0.0 for name in counts}
        if "main" in new_counts:
            new_counts["main"] = 1.0
        for site in graph.sites:
            if site.callee is None:
                continue
            weight = counts[site.caller.name] * rel(site.caller, site.block.label)
            if site.category == "recursive":
                weight *= RECURSION_DAMPING
            new_counts[site.callee.name] += weight
        delta = max(
            abs(new_counts[n] - counts[n]) for n in counts
        ) if counts else 0.0
        counts = new_counts
        if delta < 1e-9:
            break
    return counts


def site_weight(
    site,
    entry: Dict[str, float],
    site_counts: Optional[Dict[Tuple[str, int], int]] = None,
    use_profile: bool = True,
) -> float:
    """Absolute execution weight of one call site."""
    if use_profile and site_counts is not None and site.key in site_counts:
        return float(site_counts[site.key])
    rel = block_freqs(site.caller, use_profile=use_profile).get(site.block.label, 0.0)
    return entry.get(site.caller.name, 0.0) * rel


def context_block_freqs(
    proc: Procedure,
    caller: str,
    context_counts: Dict[Tuple[str, str], Dict[Tuple[str, ...], int]],
) -> Optional[Dict[str, float]]:
    """Per-block frequency of ``proc`` *when called from* ``caller``.

    ``context_counts`` is a sampled profile's context attribution
    (``(proc, label) -> {calling context -> estimated count}``, nearest
    caller first — see :mod:`repro.sampling`).  Selecting the contexts
    whose nearest caller is ``caller`` isolates the procedure's
    behaviour along that edge: a callee whose hot loop only spins for
    one of its callers shows entry-relative frequencies under that
    caller that the context-blind aggregate dilutes away.  Returns
    ``None`` when the entry block carries no evidence for this caller
    (the consumer falls back to the aggregate estimate).
    """
    if proc.entry is None:
        return None

    def in_context(key: Tuple[str, str]) -> float:
        total = 0.0
        for ctx, count in context_counts.get(key, {}).items():
            if ctx and ctx[0] == caller:
                total += count
        return total

    entry_count = in_context((proc.name, proc.entry))
    if entry_count <= 0.0:
        return None
    return {
        label: in_context((proc.name, label)) / entry_count
        for label in proc.blocks
    }
