"""Shared test fixtures and program-building helpers."""

from __future__ import annotations

import pytest

from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import IRBuilder, Module, Program, Type, verify_program


def build_program(*module_specs):
    """Build a Program from (name, builder_fn) pairs.

    Each builder_fn receives the Module and adds procedures to it.
    """
    modules = []
    for name, fn in module_specs:
        mod = Module(name)
        fn(mod)
        modules.append(mod)
    return Program(modules)


def single_proc_program(body_fn, params=(), ret=Type.INT, name="main"):
    """A one-module, one-procedure program; body_fn(builder)."""
    mod = Module("m")
    builder = IRBuilder(mod, name, list(params), ret)
    body_fn(builder)
    return Program([mod])


def compile_and_run(sources, inputs=(), max_steps=2_000_000):
    """Compile minic sources and run; returns the interp Result."""
    program = compile_program(sources)
    return run_program(program, inputs, max_steps=max_steps)


def run_main(source, inputs=(), max_steps=2_000_000):
    """Compile a single 'main' module and run it."""
    return compile_and_run([("main", source)], inputs, max_steps)


@pytest.fixture
def two_module_sources():
    """A small cross-module program used by many pipeline tests."""
    lib = """
    static int cache[16];

    int helper(int x) {
      if (x < 0) return 0;
      return x * 2 + 1;
    }

    int cached(int x) {
      int i = x & 15;
      if (cache[i]) return cache[i];
      cache[i] = helper(x) + 1;
      return cache[i];
    }
    """
    main = """
    extern int helper(int x);
    extern int cached(int x);

    int main() {
      int total = 0;
      int i;
      for (i = 0; i < 20; i++) {
        total += helper(i) + cached(i);
      }
      print_int(total);
      return total % 97;
    }
    """
    return [("lib", lib), ("main", main)]
