"""The example scripts must stay runnable (fast subset).

``pgo_pipeline.py`` and ``budget_explorer.py`` sweep full workloads and
take minutes; they are exercised by the benchmark suite's equivalent
runners instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "devirtualization.py",
    "multi_source_profiles.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate their results"


def test_all_examples_exist_and_have_docstrings():
    expected = {
        "quickstart.py",
        "pgo_pipeline.py",
        "devirtualization.py",
        "budget_explorer.py",
        "outlining.py",
        "multi_source_profiles.py",
    }
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert expected <= present
    for name in expected:
        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            head = handle.read(400)
        assert '"""' in head, name
