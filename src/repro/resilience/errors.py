"""Typed errors for the resilience subsystem.

The degradation ladder (docs/resilience.md) needs to tell *recoverable*
input problems apart from compiler bugs: a corrupted isom or profile is
an input-quality issue the driver can route around (module-at-a-time
compilation, static frequency estimates), while an exception escaping a
pass is a bug whose blast radius the guarded pass manager contains.

``IsomError`` and ``ProfileFormatError`` subclass :class:`ValueError`
so call sites that predate the typed hierarchy (and tests written
against them) keep working.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for every error the resilience layer raises."""


class IsomError(ResilienceError, ValueError):
    """An isom file is truncated, corrupted, version-skewed, or unparseable.

    ``kind`` classifies the failure for degradation decisions and build
    reports: ``"truncated"``, ``"corrupted"``, ``"version-skew"``,
    ``"malformed"``, or ``"not-isom"``.
    """

    def __init__(self, message: str, kind: str = "malformed", path: str = ""):
        self.kind = kind
        self.path = path
        if path:
            message = "{}: {}".format(path, message)
        super().__init__(message)


class ProfileFormatError(ResilienceError, ValueError):
    """A profile database is truncated, corrupted, or version-skewed.

    Carries the 1-based ``lineno`` and offending ``line`` text when the
    failure is localized to one input line.
    """

    def __init__(
        self, message: str, kind: str = "malformed", lineno: int = 0, line: str = ""
    ):
        self.kind = kind
        self.lineno = lineno
        self.line = line
        if lineno:
            message = "line {}: {} ({!r})".format(lineno, message, line)
        super().__init__(message)


class ProfileConfidenceError(ResilienceError, ValueError):
    """A sampled profile's statistical evidence is too thin to trust.

    Raised by :func:`repro.sampling.require_confident` (and by the
    driver under ``--strict``) when a sampled database's
    evidence-weighted confidence falls below the minimum.  The default
    behaviour is the degradation-ladder rung instead: warn and fall
    back to static frequency estimates (docs/resilience.md).
    """

    def __init__(self, message: str, confidence: float = 0.0, minimum: float = 0.0):
        self.confidence = confidence
        self.minimum = minimum
        super().__init__(message)


class ShardFormatError(ResilienceError, ValueError):
    """A profile shard's wire frame is truncated, corrupted, or malformed.

    The transit twin of :class:`ProfileFormatError`: raised by
    :func:`repro.fleet.shard.ProfileShard.from_wire` when the CRC32
    frame around a shard does not check out.  ``kind`` is
    ``"truncated"``, ``"corrupted"``, or ``"malformed"``.
    """

    def __init__(self, message: str, kind: str = "malformed"):
        self.kind = kind
        super().__init__(message)


class FrameFormatError(ResilienceError, ValueError):
    """A serve-protocol frame is truncated, corrupted, or malformed.

    The request/response twin of :class:`ShardFormatError`: raised by
    :mod:`repro.serve.protocol` when the CRC32 frame around an RPC
    payload does not check out.  ``kind`` is ``"truncated"``,
    ``"corrupted"``, ``"version-skew"``, or ``"malformed"``.
    """

    def __init__(self, message: str, kind: str = "malformed"):
        self.kind = kind
        super().__init__(message)


class InjectedFault(ResilienceError):
    """Raised by the fault injector's crashing passes (never by real code)."""

    def __init__(self, message: str = "injected fault"):
        super().__init__(message)


class StrictModeError(ResilienceError):
    """A degradation occurred while ``--strict`` forbids degrading."""
