"""The compiler driver: Figure 1's two compile paths, end to end.

``Toolchain`` builds a multi-module minic program under one of the four
scope configurations Table 1 compares:

========  ============================  =======================
scope     inline/clone across modules?  profile feedback?
========  ============================  =======================
``base``  no (module at a time)         no
``c``     yes (isom / link-time path)   no
``p``     no                            yes (train, recompile)
``cp``    yes                           yes
========  ============================  =======================

Profile builds perform the full two-compile workflow: instrumenting
compile, training run(s) on the training inputs, then a fresh compile
annotated with the harvested database.  Cross-module builds route every
module through the isom serialization (Section 2.1) before linking, so
the link-time HLO sees exactly what a real isom pipeline would.

"Compile time" is reported in deterministic *cost units*: the quadratic
back-end model (Σ size²) summed over every compile the build performs,
plus a charge for the training run — so a ``p`` build is more expensive
to compile than ``base`` even when it transforms less, matching the
paper's observation that profile compiles cost the extra instrumenting
compile and training run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.budget import program_cost
from ..core.config import HLOConfig
from ..core.hlo import run_hlo
from ..core.report import HLOReport
from ..frontend.driver import SourceList, compile_program
from ..interp.interpreter import DEFAULT_MAX_STEPS, run_program
from ..ir.program import Program
from ..machine.metrics import MachineMetrics
from ..machine.pa8000 import MachineConfig, simulate
from ..profile.annotate import annotate_program
from ..profile.database import ProfileDatabase
from ..profile.instrument import instrument_program
from .isom import roundtrip_modules
from .linker import link_modules

SCOPES = ("base", "c", "p", "cp")

# One interpreted training step costs this many compile-time units
# (training runs are cheap relative to the quadratic back end, but not
# free — the paper folds them into the profile-compile times).
TRAIN_STEP_UNITS = 0.05

InputVector = Sequence[Union[int, float]]


@dataclass
class BuildStats:
    """Table 1's compile-side columns, plus code-size accounting.

    ``compile_units`` is the deterministic cost-model proxy the
    experiments report; ``wall_seconds`` is the actual time this build
    took on the host, for informal comparison with the paper's compile
    seconds (it is *not* used in any benchmark assertion).
    """

    scope: str
    compile_units: float
    train_steps: int
    train_runs: int
    code_size_instrs: int
    annotated_blocks: int = 0
    wall_seconds: float = 0.0


@dataclass
class BuildResult:
    """A finished executable plus everything measured while building it."""

    program: Program
    report: HLOReport
    stats: BuildStats
    profile: Optional[ProfileDatabase] = None

    def run(
        self,
        inputs: InputVector = (),
        machine: Optional[MachineConfig] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> Tuple[MachineMetrics, "object"]:
        """Execute on the machine model; returns (metrics, interp result)."""
        return simulate(self.program, inputs, config=machine, max_steps=max_steps)


def scope_flags(scope: str) -> Tuple[bool, bool]:
    """(cross_module, use_profile) for a Table 1 scope name."""
    if scope not in SCOPES:
        raise ValueError("unknown scope {!r}; expected one of {}".format(scope, SCOPES))
    return scope in ("c", "cp"), scope in ("p", "cp")


class Toolchain:
    """Compiles one program's sources under the four scope configs."""

    def __init__(
        self,
        sources: SourceList,
        train_inputs: Sequence[InputVector] = (),
        config: Optional[HLOConfig] = None,
        max_train_steps: int = DEFAULT_MAX_STEPS,
    ):
        if isinstance(sources, dict):
            self.sources: List[Tuple[str, str]] = list(sources.items())
        else:
            self.sources = list(sources)
        self.train_inputs = [list(v) for v in train_inputs]
        self.base_config = config or HLOConfig()
        self.max_train_steps = max_train_steps
        self._profile_cache: Optional[Tuple[ProfileDatabase, float]] = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self, scope: str = "cp", config: Optional[HLOConfig] = None) -> BuildResult:
        import time

        started = time.perf_counter()
        cross_module, use_profile = scope_flags(scope)
        cfg = (config or self.base_config).with_scope(cross_module, use_profile)
        compile_units = 0.0

        profile: Optional[ProfileDatabase] = None
        if use_profile:
            if not self.train_inputs:
                raise ValueError(
                    "scope {!r} needs training inputs for the PGO pipeline".format(scope)
                )
            profile, train_units = self._train()
            compile_units += train_units

        # The final compile: front end, then (for cross-module scopes)
        # the isom round trip and link, then HLO.
        program = self._frontend()
        if cross_module:
            program = link_modules(roundtrip_modules(program.modules.values()))

        annotated = 0
        site_counts = None
        if profile is not None:
            annotated = annotate_program(program, profile)
            site_counts = profile.site_counts

        report = run_hlo(program, cfg, site_counts=site_counts)
        compile_units += report.final_cost

        stats = BuildStats(
            scope=scope,
            compile_units=compile_units,
            train_steps=profile.training_steps if profile else 0,
            train_runs=profile.training_runs if profile else 0,
            code_size_instrs=program.size(),
            annotated_blocks=annotated,
            wall_seconds=time.perf_counter() - started,
        )
        return BuildResult(program, report, stats, profile)

    def build_all_scopes(
        self, config: Optional[HLOConfig] = None
    ) -> Dict[str, BuildResult]:
        """All four Table 1 rows for this program."""
        return {scope: self.build(scope, config) for scope in SCOPES}

    # ------------------------------------------------------------------
    # PGO pipeline pieces
    # ------------------------------------------------------------------

    def _frontend(self) -> Program:
        return compile_program(self.sources)

    def _train(self) -> Tuple[ProfileDatabase, float]:
        """Instrumenting compile + training runs (cached per toolchain)."""
        if self._profile_cache is not None:
            return self._profile_cache
        db = ProfileDatabase()
        units = 0.0
        for index, inputs in enumerate(self.train_inputs):
            program = self._frontend()
            probe_map = instrument_program(program)
            if index == 0:
                units += program_cost(program)  # one instrumenting compile
            result = run_program(program, inputs, max_steps=self.max_train_steps)
            db.merge_run(program, probe_map, result.probe_counts, result.steps)
        units += db.training_steps * TRAIN_STEP_UNITS
        self._profile_cache = (db, units)
        return self._profile_cache
