"""Budget model (Figure 2): quadratic cost, staging, deltas."""

import pytest

from repro.core import Budget, program_cost, routine_cost
from repro.frontend import compile_program


@pytest.fixture
def program():
    return compile_program(
        [
            (
                "m",
                """
                int f(int x) { return x + 1; }
                int main() { return f(1); }
                """,
            )
        ]
    )


class TestCostModel:
    def test_routine_cost_is_quadratic(self, program):
        proc = program.proc("f")
        assert routine_cost(proc) == float(proc.size()) ** 2

    def test_program_cost_sums(self, program):
        assert program_cost(program) == sum(
            routine_cost(p) for p in program.all_procs()
        )

    def test_inline_delta_difference_of_squares(self):
        assert Budget.inline_delta(10, 5) == 15 ** 2 - 10 ** 2

    def test_clone_delta(self):
        assert Budget.clone_delta(10, deletes_clonee=False) == 100
        # "a clone group that ensures that the clonee will be deleted is
        # considered to have no compile time impact"
        assert Budget.clone_delta(10, deletes_clonee=True) == 0


class TestStaging:
    def test_default_percent_doubles(self, program):
        budget = Budget(program, budget_percent=100)
        assert budget.limit == pytest.approx(2 * budget.initial_cost)

    def test_stage_thresholds_rise_from_20_percent(self, program):
        budget = Budget(program, budget_percent=100, pass_limit=4)
        c, b = budget.initial_cost, budget.allowance
        assert budget.stages[0] == pytest.approx(c + 0.2 * b)
        assert budget.stages[-1] == pytest.approx(c + b)
        assert budget.stages == sorted(budget.stages)

    def test_single_pass_gets_everything(self, program):
        budget = Budget(program, budget_percent=100, pass_limit=1)
        assert budget.stages == [budget.limit]

    def test_stage_limit_clamps_pass_number(self, program):
        budget = Budget(program, pass_limit=2)
        assert budget.stage_limit(99) == budget.stages[-1]

    def test_fits_and_charge(self, program):
        budget = Budget(program, budget_percent=100, pass_limit=1)
        headroom = budget.limit - budget.current
        assert budget.fits(headroom, 0)
        assert not budget.fits(headroom + 1, 0)
        budget.charge(headroom)
        assert budget.exhausted()

    def test_zero_budget_is_exhausted_immediately(self, program):
        budget = Budget(program, budget_percent=0)
        assert budget.exhausted()

    def test_recalibrate_tracks_reality(self, program):
        budget = Budget(program)
        budget.charge(10_000)
        budget.recalibrate(program)
        assert budget.current == program_cost(program)

    def test_invalid_arguments(self, program):
        with pytest.raises(ValueError):
            Budget(program, budget_percent=-1)
        with pytest.raises(ValueError):
            Budget(program, pass_limit=0)
