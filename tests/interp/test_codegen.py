"""Structural tests for the codegen engine's emitted plans.

The differential suite (``tests/interp/test_engine_diff.py``) proves
the codegen engine is observably identical to the reference; this file
pins the *shape* of what it emits — the properties
``docs/performance.md`` documents and the speedup depends on:

- small straight-line procedures compile without the label-dispatch
  loop (``plan.dispatch is False``);
- single-in-edge branch successors are inlined under their branch as
  superinstructions (``plan.inlined``) instead of bouncing through
  dispatch;
- call-free, fixed-arity procedures additionally compile a plain
  function fast path (``plan.leaf_fn``) that direct call sites invoke
  without a trampoline round trip;
- plans are keyed by sink capability mode, so observed and unobserved
  runs never share specialized code;
- Programs with warm plan caches still pickle (``exec``-compiled code
  objects don't); workers on the far side of the sharded bench
  runner's process boundary rebuild plans from source.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench.sharded import run_sharded
from repro.frontend import compile_program
from repro.interp.codegen import emitted_source
from repro.interp.events import CountingSink
from repro.interp.interpreter import run_program
from repro.workloads.suite import get_workload

LOOPY = """
int add(int a, int b) { return a + b; }
int spread(int base, ...) {
  int acc = base;
  for (int k = 0; k < va_count(); k++) acc += va_arg(k);
  return acc;
}
int main() {
  int i = 0; int acc = 0;
  while (i < 5) { acc = acc + add(acc, i); i = i + 1; }
  print_int(spread(acc, 1, 2));
  return acc;
}
"""


def _program():
    return compile_program([("m", LOOPY)])


def _plans_by_name(program):
    return {plan.procname: plan for plan in program._codegen_cache.plans.values()}


class TestEmittedShape:
    def test_straight_line_proc_skips_dispatch(self):
        program = _program()
        source = emitted_source(program, "add")
        plan = _plans_by_name(program)["add"]
        assert plan.dispatch is False
        assert "while 1:" not in source
        assert "_L = " not in source

    def test_branchy_proc_uses_label_dispatch(self):
        program = _program()
        source = emitted_source(program, "main")
        plan = _plans_by_name(program)["main"]
        assert plan.dispatch is True
        assert "while 1:" in source

    def test_single_edge_successors_become_superinstructions(self):
        # The loop body and exit block each have one in-edge; they must
        # be emitted inline under the branch, not as dispatch arms.
        program = _program()
        emitted_source(program, "main")
        plan = _plans_by_name(program)["main"]
        assert set(plan.inlined)
        proc = program.modules["m"].procs["main"]
        assert set(plan.inlined) <= set(proc.blocks)

    def test_direct_calls_are_pre_resolved(self):
        program = _program()
        source = emitted_source(program, "main")
        # Per-activation call-site cache: resolved once, reused.
        assert "_fc0" in source
        assert "st.resolve('add')" in source


class TestLeafFastPath:
    def test_call_free_proc_gets_leaf_function(self):
        program = _program()
        emitted_source(program, "add")
        plan = _plans_by_name(program)["add"]
        assert plan.leaf_fn is not None
        assert "def _leaf(st, A):" in plan.source

    def test_calling_proc_has_no_leaf_function(self):
        program = _program()
        emitted_source(program, "main")
        assert _plans_by_name(program)["main"].leaf_fn is None

    def test_varargs_proc_has_no_leaf_function(self):
        # Leaf entry skips the trampoline's varargs split, so varargs
        # procedures must never advertise one.
        program = _program()
        emitted_source(program, "spread")
        plan = _plans_by_name(program)["spread"]
        assert plan.is_varargs
        assert plan.leaf_fn is None


class TestModeKeying:
    def test_sink_modes_get_distinct_plans(self):
        program = _program()
        run_program(program, engine="codegen")
        unobserved = len(program._codegen_cache.plans)
        run_program(program, sink=CountingSink(), engine="codegen")
        assert len(program._codegen_cache.plans) > unobserved
        modes = {mode for (_, mode) in program._codegen_cache.plans}
        assert len(modes) == 2

    def test_same_mode_hits_cache(self):
        program = _program()
        run_program(program, engine="codegen")
        cache = program._codegen_cache
        compiled = cache.plans_compiled
        hits = cache.cache_hits
        run_program(program, engine="codegen")
        assert cache.plans_compiled == compiled
        assert cache.cache_hits > hits


class TestPickling:
    def test_warm_program_pickles_with_caches_stripped(self):
        program = _program()
        want = run_program(program, engine="codegen")
        assert program._codegen_cache.plans  # warm: holds code objects
        clone = pickle.loads(pickle.dumps(program))
        assert clone._codegen_cache is None
        assert clone._plan_cache is None
        got = run_program(clone, engine="codegen")
        assert got.output == want.output
        assert got.steps == want.steps
        assert clone._codegen_cache.plans_compiled > 0

    @pytest.mark.parametrize("engine", ["fast", "codegen"])
    def test_sharded_workers_rebuild_plans(self, engine):
        # The sharded runner pickles the Program into each worker; the
        # workers' nonzero plans_compiled proves the caches were
        # stripped in transit and rebuilt from source on the far side.
        name = "compress"
        report = run_sharded([name], engine=engine, jobs=2)
        entry = report["workloads"][name]
        workload = get_workload(name)
        assert entry["runs"] == len(workload.train_inputs) + 1
        assert entry["plans_compiled"] > 0
        serial = sum(
            run_program(workload.compile(), list(inputs), engine=engine).steps
            for inputs in list(workload.train_inputs) + [workload.ref_input]
        )
        assert entry["steps"] == serial
