"""Analysis memoization with explicit invalidation.

The HLO driver is a *multi-pass* loop: every clone stage, inline
stage, and unreachable-routine sweep historically rebuilt the program
call graph, re-propagated entry counts, and re-derived per-procedure
block frequencies from scratch — even when the preceding stage changed
nothing (common in late passes, whose budget stages mostly reject).

:class:`AnalysisManager` caches those results and makes invalidation
the *transform's* responsibility: the inliner and cloner report
exactly which procedures they mutated (callers spliced into, clonees
whose counts were migrated, freshly created clones), and only those
entries — plus the program-level analyses, which any mutation can
perturb — are dropped.  A stage that performs zero transforms leaves
every cache warm for the next one.

Correctness contract: a cached result is returned only while the IR it
was derived from is unchanged.  Anything that mutates procedures
outside the inliner/cloner protocol (scalar re-optimization stages,
guarded-pass rollbacks, which may replace procedure *objects*) must
call :meth:`invalidate_all`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..ir.program import Program
from .callgraph import CallGraph
from .freq import entry_counts as _entry_counts

SiteCounts = Dict[Tuple[str, int], int]


class AnalysisManager:
    """Per-HLO-run cache of call graph, entry counts, and block freqs."""

    def __init__(self, program: Program):
        self.program = program
        self._graph: Optional[CallGraph] = None
        # Keyed by whether measured site counts were applied; within
        # one HLO run the site-count table itself never changes.
        self._entry: Dict[bool, Dict[str, float]] = {}
        # proc name -> relative block frequencies; shared with the
        # passes' ``cached_block_freqs`` helper, which fills it lazily.
        self._freqs: Dict[str, Dict[str, float]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Cached analyses
    # ------------------------------------------------------------------

    def callgraph(self) -> CallGraph:
        if self._graph is None:
            self.misses += 1
            self._graph = CallGraph(self.program)
        else:
            self.hits += 1
        return self._graph

    def entry_counts(self, site_counts: Optional[SiteCounts]) -> Dict[str, float]:
        key = site_counts is not None
        cached = self._entry.get(key)
        if cached is None:
            graph = self.callgraph()
            self.misses += 1
            cached = _entry_counts(self.program, graph, site_counts)
            self._entry[key] = cached
        else:
            self.hits += 1
        return cached

    def freq_cache(self) -> Dict[str, Dict[str, float]]:
        """The shared per-procedure block-frequency memo table."""
        return self._freqs

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate_procs(self, names: Iterable[str]) -> None:
        """IR changed inside ``names``: drop their entries and every
        program-level analysis (any mutation can reshape the graph)."""
        self.invalidations += 1
        self._graph = None
        self._entry.clear()
        for name in names:
            self._freqs.pop(name, None)

    def invalidate_region(self, names: Iterable[str]) -> None:
        """Region-scoped invalidation (the demand strategy's contract).

        Drops only the named procedures' block-frequency memos, leaving
        the rest of the memo pool — and the planner's call-graph /
        entry-count snapshot — warm.  The demand planner treats the
        graph and entry counts as a frozen plan-time view (regions and
        their interior sites were enumerated before any mutation), so
        one region's transforms must not flush analyses the remaining
        regions are about to read.  The planner ends its stage with a
        full :meth:`invalidate_procs` over everything it mutated so
        later consumers (the unreachable sweep, the output stage) see
        fresh program-level state.
        """
        self.invalidations += 1
        for name in names:
            self._freqs.pop(name, None)

    def invalidate_all(self) -> None:
        """Drop everything — the blunt hammer for stages that cannot
        enumerate what they touched (scalar pipelines, rollbacks)."""
        self.invalidations += 1
        self._graph = None
        self._entry.clear()
        self._freqs.clear()
