"""Side-effect analysis: which procedures are removable when unused."""

from repro.analysis import CallGraph, side_effect_free_procs
from repro.frontend import compile_program


def free_set(source):
    program = compile_program([("m", source)])
    return side_effect_free_procs(program, CallGraph(program))


BASE = "int main() { return 0; }\n"


class TestSideEffectFree:
    def test_pure_arithmetic(self):
        free = free_set(BASE + "int f(int x) { return x * 2 + 1; }")
        assert "f" in free

    def test_pure_reader_of_globals(self):
        free = free_set(BASE + "int g[4]; int f(int i) { return g[i & 3]; }")
        assert "f" in free

    def test_store_blocks(self):
        free = free_set(BASE + "int g; int f(int x) { g = x; return x; }")
        assert "f" not in free

    def test_print_blocks(self):
        free = free_set(BASE + "int f(int x) { print_int(x); return x; }")
        assert "f" not in free

    def test_sbrk_blocks(self):
        free = free_set(BASE + "int f() { return sbrk(4); }")
        assert "f" not in free

    def test_pure_builtin_allowed(self):
        free = free_set(BASE + "int f(int i) { return input(i) + abs(i); }")
        assert "f" in free

    def test_loop_blocks_termination_proof(self):
        free = free_set(BASE + "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }")
        assert "f" not in free

    def test_recursion_blocks(self):
        free = free_set(BASE + "int f(int n) { if (n <= 0) return 0; return f(n - 1); }")
        assert "f" not in free

    def test_transitive_purity(self):
        free = free_set(
            BASE
            + "int inner(int x) { return x + 1; }\n"
            + "int outer(int x) { return inner(x) * 2; }"
        )
        assert {"inner", "outer"} <= free

    def test_transitive_impurity(self):
        free = free_set(
            BASE
            + "int g;\n"
            + "int inner(int x) { g = x; return x; }\n"
            + "int outer(int x) { return inner(x) * 2; }"
        )
        assert "outer" not in free

    def test_indirect_call_blocks(self):
        free = free_set(
            BASE
            + "int id(int x) { return x; }\n"
            + "int f(int x) { int g = &id; return g(x); }"
        )
        assert "f" not in free

    def test_curses_stub_shape(self):
        # The paper's 072.sc anecdote: no-op display routines are free.
        free = free_set(
            BASE
            + "int cur_move(int r, int c) { return r * 256 + c; }\n"
            + "int cur_refresh() { return 0; }"
        )
        assert {"cur_move", "cur_refresh"} <= free
