"""Link step: assemble modules into a program image and resolve symbols."""

from __future__ import annotations

from typing import Iterable, List

from ..ir.module import Module
from ..ir.program import RUNTIME_BUILTINS, Program


class LinkError(Exception):
    """Unresolved or inconsistent symbols at link time."""


def link_modules(modules: Iterable[Module], entry: str = "main") -> Program:
    """Build a :class:`Program` and check symbol resolution.

    Every extern declared by a module must resolve to a definition in
    some module or to a runtime builtin; the entry procedure must exist
    and be externally visible.
    """
    program = Program(list(modules))
    errors: List[str] = []

    for mod in program.modules.values():
        for name, sig in mod.externs.items():
            target = program.proc(name)
            if target is None:
                if name not in RUNTIME_BUILTINS:
                    errors.append(
                        "undefined symbol @{} referenced by module {}".format(
                            name, mod.name
                        )
                    )
                continue
            if target.signature() != sig:
                errors.append(
                    "signature mismatch for @{}: {} (in {}) vs {} (defined in {})".format(
                        name, sig, mod.name, target.signature(), target.module
                    )
                )

    entry_proc = program.proc(entry)
    if entry_proc is None:
        errors.append("undefined entry point @{}".format(entry))
    elif entry_proc.linkage == "static":
        errors.append("entry point @{} has static linkage".format(entry))

    if errors:
        raise LinkError("; ".join(errors))
    return program
