"""Scheduler policy: in-flight dedupe, cancellation safety, load shed."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.scheduler import (
    BusyError,
    RequestScheduler,
    RequestTimeoutError,
    submit_nowait,
)


def _gated_thunk(gate: threading.Event, calls: list, value="built"):
    """A build stand-in that blocks until the test opens the gate."""

    def thunk():
        calls.append(threading.get_ident())
        gate.wait(10)
        return value

    return thunk


def test_identical_requests_build_once():
    """Two concurrent submits with one key: one execution, one dedupe hit."""

    async def main():
        scheduler = RequestScheduler(concurrency=2)
        gate = threading.Event()
        calls = []
        first = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        second = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        await asyncio.sleep(0.05)  # both submits reach the scheduler
        gate.set()
        results = await asyncio.gather(first, second)
        scheduler.close()
        return scheduler, calls, results

    scheduler, calls, results = asyncio.run(main())
    assert results == ["built", "built"]
    assert len(calls) == 1  # the thunk ran exactly once
    assert scheduler.started == 1
    assert scheduler.dedupe_hits == 1
    assert scheduler.completed == 1


def test_distinct_keys_do_not_dedupe():
    async def main():
        scheduler = RequestScheduler(concurrency=2)
        results = await asyncio.gather(
            scheduler.submit("a", lambda: "ra"),
            scheduler.submit("b", lambda: "rb"),
        )
        scheduler.close()
        return scheduler, results

    scheduler, results = asyncio.run(main())
    assert results == ["ra", "rb"]
    assert scheduler.started == 2
    assert scheduler.dedupe_hits == 0


def test_cancelled_waiter_does_not_poison_the_shared_future():
    """A client hanging up mid-build must not cancel the other waiters."""

    async def main():
        scheduler = RequestScheduler(concurrency=1)
        gate = threading.Event()
        calls = []
        survivor = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        quitter = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        await asyncio.sleep(0.05)
        quitter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await quitter
        gate.set()
        result = await survivor
        # The build result stays reachable for later identical requests
        # until the task retires; a third waiter still joins cleanly.
        scheduler.close()
        return scheduler, calls, result

    scheduler, calls, result = asyncio.run(main())
    assert result == "built"
    assert len(calls) == 1
    assert scheduler.cancelled == 1
    assert scheduler.dedupe_hits == 1
    assert scheduler.completed == 1


def test_saturated_queue_sheds_with_busy():
    """Past max_pending, a distinct request is shed; a dupe still joins."""

    async def main():
        scheduler = RequestScheduler(concurrency=1, max_pending=1)
        gate = threading.Event()
        calls = []
        running = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        await asyncio.sleep(0.05)
        with pytest.raises(BusyError):
            await scheduler.submit("other", lambda: "never")
        # Dedupe joins add no work, so they are never shed.
        joined = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        await asyncio.sleep(0.05)
        gate.set()
        results = await asyncio.gather(running, joined)
        scheduler.close()
        return scheduler, results

    scheduler, results = asyncio.run(main())
    assert results == ["built", "built"]
    assert scheduler.shed == 1
    assert scheduler.started == 1
    assert scheduler.dedupe_hits == 1


def test_deadline_fires_but_the_build_survives():
    """A waiter's timeout gives up the wait, not the build."""

    async def main():
        scheduler = RequestScheduler(concurrency=1)
        gate = threading.Event()
        calls = []
        with pytest.raises(RequestTimeoutError):
            await scheduler.submit(
                "k", _gated_thunk(gate, calls), timeout=0.05
            )
        # The underlying task is still in flight; a new waiter joins it.
        late = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        await asyncio.sleep(0.01)
        gate.set()
        result = await late
        scheduler.close()
        return scheduler, calls, result

    scheduler, calls, result = asyncio.run(main())
    assert result == "built"
    assert len(calls) == 1
    assert scheduler.timeouts == 1
    assert scheduler.dedupe_hits == 1


def test_thunk_exception_reaches_every_waiter_and_clears():
    async def main():
        scheduler = RequestScheduler(concurrency=1)

        def boom():
            raise RuntimeError("isolated failure")

        first = submit_nowait(scheduler, "k", boom)
        second = submit_nowait(scheduler, "k", boom)
        await asyncio.sleep(0.05)
        for waiter in (first, second):
            with pytest.raises(RuntimeError):
                await waiter
        # The failure does not wedge the key: a retry runs fresh.
        retry = await scheduler.submit("k", lambda: "recovered")
        scheduler.close()
        return scheduler, retry

    scheduler, retry = asyncio.run(main())
    assert retry == "recovered"
    assert scheduler.started == 2
    assert scheduler.pending == 0


def test_drain_waits_for_inflight():
    async def main():
        scheduler = RequestScheduler(concurrency=2)
        gate = threading.Event()
        calls = []
        task = submit_nowait(scheduler, "k", _gated_thunk(gate, calls))
        await asyncio.sleep(0.05)
        gate.set()
        finished = await scheduler.drain()
        result = await task
        scheduler.close()
        return finished, result

    finished, result = asyncio.run(main())
    assert finished == 1
    assert result == "built"
