"""Dead-call elimination and the full optimizer pipeline."""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import Call, verify_program
from repro.opt import eliminate_dead_calls, optimize_program
from repro.workloads.generator import generate_sources


def call_count(program, callee):
    return sum(
        1
        for proc in program.all_procs()
        for instr in proc.instructions()
        if isinstance(instr, Call) and instr.callee == callee
    )


class TestDeadCalls:
    CURSES = [
        (
            "curses",
            """
            int cur_move(int r, int c) { return r * 80 + c; }
            int cur_refresh() { return 0; }
            """,
        ),
        (
            "main",
            """
            extern int cur_move(int r, int c);
            extern int cur_refresh();
            int g = 0;
            int main() {
              for (int i = 0; i < 5; i++) {
                cur_move(i, i + 1);
                g = g + i;
              }
              cur_refresh();
              print_int(g);
              return 0;
            }
            """,
        ),
    ]

    def test_unused_pure_calls_removed(self):
        program = compile_program(self.CURSES)
        before = run_program(program).behavior()
        assert call_count(program, "cur_move") == 1
        assert eliminate_dead_calls(program)
        assert call_count(program, "cur_move") == 0
        assert call_count(program, "cur_refresh") == 0
        assert run_program(program).behavior() == before

    def test_used_results_kept(self):
        sources = [
            (
                "m",
                """
                int pure(int x) { return x * 2; }
                int main() { print_int(pure(4)); return 0; }
                """,
            )
        ]
        program = compile_program(sources)
        eliminate_dead_calls(program)
        assert call_count(program, "pure") == 1

    def test_impure_calls_kept(self):
        sources = [
            (
                "m",
                """
                int g = 0;
                int bump() { g = g + 1; return g; }
                int main() { bump(); print_int(g); return 0; }
                """,
            )
        ]
        program = compile_program(sources)
        before = run_program(program).behavior()
        eliminate_dead_calls(program)
        assert call_count(program, "bump") == 1
        assert run_program(program).behavior() == before


class TestPipeline:
    def test_optimize_program_preserves_behavior(self, two_module_sources):
        program = compile_program(two_module_sources)
        before = run_program(program).behavior()
        optimize_program(program)
        verify_program(program)
        assert run_program(program).behavior() == before

    def test_optimize_is_idempotent_at_fixpoint(self, two_module_sources):
        program = compile_program(two_module_sources)
        optimize_program(program)
        # After reaching the fixed point, a rerun changes nothing.
        assert not optimize_program(program)

    def test_optimization_shrinks_constant_code(self):
        sources = [
            (
                "m",
                """
                int main() {
                  int a = 3;
                  int b = a * 4 + 2;
                  int c;
                  if (b > 10) c = 1; else c = 2;
                  print_int(b + c);
                  return 0;
                }
                """,
            )
        ]
        program = compile_program(sources)
        size_before = program.size()
        optimize_program(program)
        assert program.size() < size_before
        assert run_program(program).output == [15]

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_behavior_preserved(self, seed):
        sources = generate_sources(seed)
        program = compile_program(sources)
        before = run_program(program, max_steps=1_000_000).behavior()
        optimize_program(program)
        verify_program(program)
        after = run_program(program, max_steps=1_000_000).behavior()
        assert before == after
