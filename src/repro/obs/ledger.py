"""The inlining-decision ledger: why HLO did (or didn't) transform.

Figure 5 of the paper classifies every call site the optimizer looked
at; Table 1 counts what it did; Figure 8 validates the budget that
stopped it.  All three need the same raw record, which the pipeline
never kept: each evaluation of a call site by the inliner or cloner,
with its outcome.

:class:`InliningLedger` records one :class:`Decision` per evaluation —
``inlined``, ``cloned``, or ``rejected`` — with the reason and its
class:

- a legality class — one of the Section 2.4 screens (``indirect``,
  ``external``, ``varargs``, ``arity-mismatch``, ``fp-reassoc``,
  ``alloca``, ``user-directive``, ``recursion``, ``scope``,
  ``isom-fallback``, ``entry-point``);
- ``benefit`` — the site passed the screens but its run-time figure of
  merit fell at or below the configured threshold (or, for cloning, no
  caller-supplied constant met an interesting parameter);
- ``budget`` — viable, but the staged compile-time budget was
  exhausted before the site's turn (includes the Figure 8
  ``stop_after`` validation knob);
- ``mechanical`` — scheduled, but the site vanished before the
  transform ran (its caller was deleted or an earlier transform
  rewrote it).

A site evaluated in several passes (or by both transforms) gets one
decision per evaluation; the invariant the acceptance test pins is
``len(entries) == HLOReport.sites_considered`` — both sides are
incremented by the same :func:`record_decision` call.  Guarded-stage
rollbacks truncate the ledger exactly as they roll the report back.

Surfaced by ``--explain-inlining`` as human-readable text and by
``--explain-inlining-out`` as JSONL (one decision object per line).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

LEDGER_SCHEMA_VERSION = 1

DECISIONS = ("inlined", "cloned", "rejected")


class Decision:
    """One evaluation of one call site by one transform pass."""

    __slots__ = (
        "phase", "pass_number", "caller", "callee", "site_id",
        "decision", "reason", "reason_class", "benefit", "region",
    )

    def __init__(
        self,
        phase: str,
        pass_number: int,
        caller: str,
        callee: str,
        site_id: int,
        decision: str,
        reason: str,
        reason_class: str,
        benefit: Optional[float] = None,
        region: str = "",
    ):
        self.phase = phase  # 'inline' | 'clone'
        self.pass_number = pass_number
        self.caller = caller
        self.callee = callee
        self.site_id = site_id
        self.decision = decision
        self.reason = reason
        self.reason_class = reason_class
        self.benefit = benefit
        # Demand-strategy provenance: which hot region requested this
        # evaluation.  Empty for the global strategy.
        self.region = region

    def to_dict(self) -> dict:
        record = {
            "phase": self.phase,
            "pass": self.pass_number,
            "caller": self.caller,
            "callee": self.callee,
            "site_id": self.site_id,
            "decision": self.decision,
            "reason": self.reason,
            "reason_class": self.reason_class,
        }
        if self.benefit is not None:
            record["benefit"] = round(self.benefit, 6)
        if self.region:
            record["region"] = self.region
        return record


class NullLedger:
    """Disabled fast path: every record is a no-op."""

    enabled = False

    def record(self, *args, **kwargs) -> None:
        pass

    def mark(self) -> int:
        return 0

    def rollback_to(self, mark: int) -> None:
        pass

    def truncate_region(self, region: str) -> int:
        return 0


NULL_LEDGER = NullLedger()


class InliningLedger:
    """Every call-site evaluation of one HLO run, in order."""

    enabled = True

    def __init__(self) -> None:
        self.entries: List[Decision] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        phase: str,
        pass_number: int,
        caller: str,
        callee: str,
        site_id: int,
        decision: str,
        reason: str,
        reason_class: str,
        benefit: Optional[float] = None,
        region: str = "",
    ) -> None:
        self.entries.append(
            Decision(phase, pass_number, caller, callee, site_id,
                     decision, reason, reason_class, benefit, region)
        )

    def mark(self) -> int:
        """Checkpoint for guarded-stage rollback (parallel to
        HLOReport.mark): a rolled-back stage's decisions are phantoms."""
        return len(self.entries)

    def rollback_to(self, mark: int) -> None:
        del self.entries[mark:]

    def truncate_region(self, region: str) -> int:
        """Drop every decision tagged with ``region``; returns the count.

        The demand strategy's guarded rollback truncates by mark (its
        region's decisions are contiguous), then calls this as the
        belt-and-braces sweep so no phantom decision for a rolled-back
        region can survive, whatever the interleaving.
        """
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.region != region]
        return before - len(self.entries)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    @property
    def considered(self) -> int:
        return len(self.entries)

    def decision_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in DECISIONS}
        for entry in self.entries:
            counts[entry.decision] = counts.get(entry.decision, 0) + 1
        return counts

    def rejection_classes(self) -> Dict[str, int]:
        """Rejected evaluations bucketed by reason class (Figure 5)."""
        classes: Dict[str, int] = {}
        for entry in self.entries:
            if entry.decision == "rejected":
                classes[entry.reason_class] = classes.get(entry.reason_class, 0) + 1
        return classes

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        lines = [
            json.dumps({"schema": LEDGER_SCHEMA_VERSION,
                        "considered": self.considered,
                        "decisions": self.decision_counts(),
                        "rejection_classes": self.rejection_classes()},
                       sort_keys=True)
        ]
        lines.extend(
            json.dumps(entry.to_dict(), sort_keys=True) for entry in self.entries
        )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def format_text(self, limit: Optional[int] = None) -> str:
        """The human-readable ``--explain-inlining`` report."""
        counts = self.decision_counts()
        lines = [
            "inlining ledger: {} call-site evaluations "
            "({} inlined, {} cloned, {} rejected)".format(
                self.considered, counts["inlined"], counts["cloned"],
                counts["rejected"],
            )
        ]
        classes = self.rejection_classes()
        if classes:
            lines.append("rejections by class:")
            for clazz in sorted(classes, key=lambda c: (-classes[c], c)):
                lines.append("  {:18s} {}".format(clazz, classes[clazz]))
        shown = self.entries if limit is None else self.entries[:limit]
        for entry in shown:
            tail = ""
            if entry.benefit is not None:
                tail = " (benefit {:.3f})".format(entry.benefit)
            lines.append(
                "  pass {} {:6s} @{} -> @{} site {}: {:8s} {}{}".format(
                    entry.pass_number, entry.phase, entry.caller,
                    entry.callee, entry.site_id, entry.decision,
                    entry.reason, tail,
                )
            )
        if limit is not None and len(self.entries) > limit:
            lines.append("  ... {} more".format(len(self.entries) - limit))
        return "\n".join(lines)


def site_names(site) -> "tuple":
    """(caller, callee, site_id) labels for a call-graph site."""
    caller = site.caller.name
    if site.callee is not None:
        callee = site.callee.name
    else:
        callee = getattr(site.instr, "callee", None) or "<indirect>"
    return caller, callee, site.instr.site_id


def record_decision(
    obs,
    report,
    phase: str,
    pass_number: int,
    site,
    decision: str,
    reason: str,
    reason_class: Optional[str] = None,
    benefit: Optional[float] = None,
    region: str = "",
) -> None:
    """Count one call-site evaluation on the report *and* the ledger.

    Incrementing ``report.sites_considered`` here — the same call that
    appends the ledger entry — is what keeps the acceptance invariant
    (ledger total == sites considered) true by construction.
    """
    if report is not None:
        report.sites_considered += 1
    if obs.ledger.enabled:
        # Imported here, not at module top: repro.core.* imports this
        # module for record_decision, so a top-level core import would
        # be circular.
        from ..core.legality import classify_blocker

        caller, callee, site_id = site_names(site)
        obs.ledger.record(
            phase, pass_number, caller, callee, site_id, decision, reason,
            reason_class if reason_class is not None else classify_blocker(reason),
            benefit,
            region,
        )
