"""A trace-driven PA8000-style machine model.

The paper explains its Figure 7 simulation results through five machine
effects, all modelled here:

- **retired instructions** drop when calls are inlined, because the
  call-convention overhead (caller-save stores/reloads, outgoing
  argument traffic) disappears with the call;
- **D-cache accesses** drop for the same reason ("a big part of this
  dramatic drop is the elimination of caller and callee register save
  operations at call sites that have been inlined");
- **I-cache** behaviour reflects the code expansion: a bigger image
  raises the miss *rate* even as total accesses fall;
- **branches** include calls and returns; the PA8000 "always
  mispredicts procedure return branches", and conditional branches use
  a PC-indexed two-bit predictor subject to collisions;
- **cycles** combine issue-limited execution with miss and
  misprediction penalties.

Capacities are scaled to our workload sizes (DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..interp.events import EventSink
from ..interp.interpreter import (
    DEFAULT_ENGINE,
    DEFAULT_MAX_STEPS,
    Interpreter,
    Result,
)
from ..ir.program import Program
from .branch import TwoBitPredictor
from .cache import DirectMappedCache
from .layout import CodeLayout
from .metrics import MachineMetrics

WORD_BYTES = 8
SIM_STACK_BASE = 0x3000_0000 * WORD_BYTES
FRAME_BYTES = 64


@dataclass
class MachineConfig:
    """Machine parameters (defaults approximate a scaled-down PA8000)."""

    icache_bytes: int = 8192
    dcache_bytes: int = 8192
    line_bytes: int = 32
    predictor_entries: int = 256
    issue_width: float = 2.0
    icache_miss_penalty: float = 20.0
    dcache_miss_penalty: float = 20.0
    mispredict_penalty: float = 5.0
    # Calling convention: registers saved/restored around a call, and
    # the register-argument budget beyond which arguments go to memory.
    max_save_regs: int = 6
    reg_args: int = 4
    # Cost of a runtime-library (builtin) call body, in instructions.
    builtin_instrs: int = 4
    # Register pressure: routines whose virtual-register count exceeds
    # the register file spill — extra memory traffic proportional to the
    # excess, charged per executed instruction.  This is the effect the
    # paper's cold-site penalty guards against ("increases in register
    # pressure which push spills into critical code paths") and what
    # eventually bends the Figure 8 curves back up under unbounded
    # inlining.  The PA-RISC file has 31 GPRs; ~28 are allocatable.
    reg_file: int = 28
    spill_rate_per_reg: float = 0.004
    max_spill_rate: float = 0.35


class PA8000Model(EventSink):
    """EventSink that accumulates machine metrics during a run."""

    def __init__(self, program: Program, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        self.layout = CodeLayout(program)
        self.icache = DirectMappedCache(self.config.icache_bytes, self.config.line_bytes)
        self.dcache = DirectMappedCache(self.config.dcache_bytes, self.config.line_bytes)
        self.predictor = TwoBitPredictor(self.config.predictor_entries)
        self.retired = 0
        self.calls = 0
        self.spills = 0
        self.depth = 0
        self._save_counts: Dict[str, int] = {}
        self._proc_regs: Dict[str, int] = {}
        self._spill_rates: Dict[str, float] = {}
        for proc in program.all_procs():
            regs = len(proc.reg_names())
            self._proc_regs[proc.name] = regs
            self._save_counts[proc.name] = min(regs, self.config.max_save_regs)
            excess = max(0, regs - self.config.reg_file)
            self._spill_rates[proc.name] = min(
                self.config.max_spill_rate, excess * self.config.spill_rate_per_reg
            )
        self._spill_acc = 0.0
        self._last_pc = 0

    # ------------------------------------------------------------------
    # Event callbacks
    # ------------------------------------------------------------------

    def on_instr(self, proc, label, index, instr) -> None:
        pc = self.layout.instr_addr(proc.name, label, index)
        self._last_pc = pc
        self.retired += 1
        self.icache.access(pc)
        rate = self._spill_rates.get(proc.name, 0.0)
        if rate:
            self._spill_acc += rate
            if self._spill_acc >= 1.0:
                self._spill_acc -= 1.0
                # One spill: a store or reload near the top of the frame.
                self.spills += 1
                self.retired += 1
                self.icache.access(pc)
                self.dcache.access(SIM_STACK_BASE - self.depth * FRAME_BYTES - 8)

    def on_branch(self, proc, label, index, kind, taken, target_label) -> None:
        if kind == "cond":
            self.predictor.predict_and_update(self._last_pc, taken)
        else:  # unconditional jump: direction known
            self.predictor.force_correct()

    def on_call(self, caller, callee_name, kind, n_args) -> None:
        self.calls += 1
        if kind == "indirect":
            self.predictor.force_mispredict()
        else:
            self.predictor.force_correct()

        # Caller-save spills and excess outgoing arguments hit the stack.
        saves = self._save_counts.get(caller.name, self.config.max_save_regs)
        mem_args = max(0, n_args - self.config.reg_args)
        self._frame_traffic(saves + mem_args, store=True)

        if kind == "builtin":
            # The library body executes off-image: count its retired
            # instructions and its (always mispredicted) return.
            self.retired += self.config.builtin_instrs
            self.predictor.force_mispredict()
            self._frame_traffic(saves + mem_args, store=False)
        else:
            self.depth += 1

    def on_return(self, callee_name, caller) -> None:
        self.depth = max(0, self.depth - 1)
        # "the PA8000 always mispredicts procedure return branches"
        self.predictor.force_mispredict()
        saves = self._save_counts.get(caller.name, self.config.max_save_regs)
        self._frame_traffic(saves, store=False)

    def on_mem(self, addr, is_store) -> None:
        self.dcache.access(addr * WORD_BYTES)

    def _frame_traffic(self, words: int, store: bool) -> None:
        """Save/restore traffic at the current simulated frame."""
        base = SIM_STACK_BASE - self.depth * FRAME_BYTES
        for offset in range(words):
            self.retired += 1  # the save/restore instruction itself
            self.icache.access(self._last_pc)  # fetched near the call site
            self.dcache.access(base - offset * WORD_BYTES)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def metrics(self, ir_steps: int = 0) -> MachineMetrics:
        config = self.config
        cycles = (
            self.retired / config.issue_width
            + self.icache.misses * config.icache_miss_penalty
            + self.dcache.misses * config.dcache_miss_penalty
            + self.predictor.mispredictions * config.mispredict_penalty
        )
        return MachineMetrics(
            cycles=cycles,
            instructions=self.retired,
            icache_accesses=self.icache.accesses,
            icache_misses=self.icache.misses,
            dcache_accesses=self.dcache.accesses,
            dcache_misses=self.dcache.misses,
            branches=self.predictor.predictions,
            branch_mispredicts=self.predictor.mispredictions,
            code_bytes=self.layout.code_bytes,
            ir_steps=ir_steps,
            calls=self.calls,
            spills=self.spills,
        )


def simulate(
    program: Program,
    inputs: Sequence[Union[int, float]] = (),
    entry: str = "main",
    config: Optional[MachineConfig] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = DEFAULT_ENGINE,
) -> Tuple[MachineMetrics, Result]:
    """Run ``program`` on the machine model; returns (metrics, result)."""
    model = PA8000Model(program, config)
    interp = Interpreter(
        program, inputs, sink=model, max_steps=max_steps, engine=engine
    )
    result = interp.run(entry)
    return model.metrics(result.steps), result
