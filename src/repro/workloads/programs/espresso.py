"""``espresso`` — a bitset cover kernel (analog of SPEC espresso).

The logic minimizer's hot loops intersect cube bitsets and count
literals; the kernel here scores pairs of cubes in a cover matrix via
cross-module bitset primitives (``bs_and``/``bs_count``), with a static
``popcount16`` helper under them — three call layers collapsing to
straight-line bit math when HLO inlines across the module boundary.

Inputs: [cube count, sweep iterations, bits per word seed].
"""

from ..suite import Workload, register

BITSET = """
// Word-array bitset primitives.  Pointers are word-granular minic
// addresses; callers pass &array[offset].
static int popcount16(int w) {
  int c = 0;
  w = w & 65535;
  while (w) {
    c = c + (w & 1);
    w = w >> 1;
  }
  return c;
}

void bs_and(int dst, int x, int y, int words) {
  int i;
  for (i = 0; i < words; i++) dst[i] = x[i] & y[i];
}

void bs_or(int dst, int x, int y, int words) {
  int i;
  for (i = 0; i < words; i++) dst[i] = x[i] | y[i];
}

int bs_count(int x, int words) {
  int i;
  int c = 0;
  for (i = 0; i < words; i++) {
    c = c + popcount16(x[i]);
  }
  return c;
}

int bs_subset(int x, int y, int words) {
  int i;
  for (i = 0; i < words; i++) {
    if ((x[i] & y[i]) != x[i]) return 0;
  }
  return 1;
}
"""

COVER = """
extern void bs_and(int dst, int x, int y, int words);
extern void bs_or(int dst, int x, int y, int words);
extern int bs_count(int x, int words);
extern int bs_subset(int x, int y, int words);

// 32 cubes x 4 words of 16 useful bits each.
int mat[128];
static int tmp[4];

int cube(int i) { return &mat[i * 4]; }

int score_pair(int i, int j) {
  bs_and(&tmp[0], cube(i), cube(j), 4);
  return bs_count(&tmp[0], 4);
}

// Best-overlap pair: the quadratic scan espresso does when it picks
// cubes to merge.
int best_pair(int n) {
  int best = -1;
  int bi = 0;
  int bj = 0;
  int i;
  int j;
  for (i = 0; i < n; i++) {
    for (j = i + 1; j < n; j++) {
      int s = score_pair(i, j);
      if (s > best) {
        best = s;
        bi = i;
        bj = j;
      }
    }
  }
  return bi * 256 + bj;
}

void merge_into(int i, int j) {
  bs_or(cube(i), cube(i), cube(j), 4);
}

int count_subsets(int n) {
  int c = 0;
  int i;
  int j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      if (i != j && bs_subset(cube(i), cube(j), 4)) c = c + 1;
    }
  }
  return c;
}
"""

MAIN = """
extern int cube(int i);
extern int best_pair(int n);
extern void merge_into(int i, int j);
extern int count_subsets(int n);
extern int bs_count(int x, int words);

static int seed = 777;

static int rnd(int m) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) seed = -seed;
  return seed % m;
}

static void fill(int n, int density) {
  int i;
  int w;
  for (i = 0; i < n; i++) {
    int base = cube(i);
    for (w = 0; w < 4; w++) {
      int bits = 0;
      int b;
      for (b = 0; b < 16; b++) {
        if (rnd(100) < density) bits = bits | (1 << b);
      }
      base[w] = bits;
    }
  }
}

int main() {
  int n = input(0);
  int iters = input(1);
  int density = input(2);
  if (n > 32) n = 32;
  fill(n, density);
  int check = 0;
  int it;
  for (it = 0; it < iters; it++) {
    int pair = best_pair(n);
    int i = pair / 256;
    int j = pair % 256;
    merge_into(i, j);
    check = (check + pair + count_subsets(n)) % 1000003;
  }
  int total = 0;
  int i;
  for (i = 0; i < n; i++) total = total + bs_count(cube(i), 4);
  print_int(check);
  print_int(total);
  return check % 97;
}
"""

WORKLOAD = Workload(
    name="espresso",
    spec_analog="008.espresso (logic minimizer)",
    description="bitset cover scoring with layered bit primitives",
    sources=(("bitset", BITSET), ("cover", COVER), ("esmain", MAIN)),
    train_inputs=((8, 2, 35),),
    ref_input=(14, 4, 40),
    suites=("92",),
)


def register_workload() -> None:
    register(WORKLOAD)
