"""Engine × sink differential deep-fuzz (``python -m repro.interp.fuzz``).

The per-PR differential suite (``tests/interp/test_engine_diff.py``)
pins 50 generator seeds against the no-sink and recording-sink
configurations.  This CLI is the wide version CI runs on a schedule:
hundreds of generator seeds, each executed under every optimized
engine × every sink *family* — no sink, :class:`CountingSink` (the
batched-``on_instr`` capability), :class:`SamplingSink` (exact
``on_instr`` + call/return, jittered sampling state), the
:class:`~repro.obs.runtime.RuntimeProfiler` (full-stack flamegraph
sampling — its digest equality is what makes a flamegraph
engine-independent), and the
:class:`~repro.machine.pa8000.PA8000Model` (every callback live, cache
and predictor state) — and compared against the reference engine on the
complete observable outcome *plus* the sink's accumulated state.

A mismatch writes one JSON artifact per failure into
``--artifact-dir`` — the seed, the engine/sink pair, the generated
sources, and the first divergence — so a scheduled CI run can upload
failing seeds for offline reproduction::

    python -m repro.interp.fuzz --seeds 500 --artifact-dir fuzz-failures

Exit status is the number of failing (seed, engine, sink) combinations,
capped at 99 (0 = all identical).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional, Sequence, Tuple

from .diff import OPTIMIZED_ENGINES
from .errors import ExecError, StepLimitExceeded
from .events import CountingSink, RecordingSink
from .interpreter import DEFAULT_MAX_STEPS, run_program

#: Sink families in the matrix; "none" exercises the engines'
#: zero-callback fast paths, the rest each exercise one capability mode.
#: "flame" is the runtime profiler (exact on_instr + call/return, no
#: branch/mem): its digest equality across engines is what makes a
#: flamegraph a property of the execution, not of the engine.
SINK_KINDS = ("none", "counting", "sampling", "flame", "pa8000")
#: HLO strategies in the matrix; "none" runs the frontend output as-is
#: (the historical fuzz configuration), the other two run the full HLO
#: pipeline under that ``HLOConfig.strategy`` first.  Every strategy
#: must agree with the unoptimized program on observable semantics
#: (exit code + output), and every engine must agree on the complete
#: outcome *within* a strategy.
STRATEGIES = ("none", "global", "demand")
SAMPLING_FUZZ_RATE = 7
SAMPLING_FUZZ_DEPTH = 2
SAMPLING_FUZZ_SEED = 13
FLAME_FUZZ_RATE = 7
FLAME_FUZZ_SEED = 13


def _make_sink(kind: str, program):
    if kind == "none":
        return None
    if kind == "recording":
        return RecordingSink()
    if kind == "counting":
        return CountingSink()
    if kind == "sampling":
        from ..sampling import SamplingSink

        return SamplingSink(
            rate=SAMPLING_FUZZ_RATE,
            context_depth=SAMPLING_FUZZ_DEPTH,
            seed=SAMPLING_FUZZ_SEED,
        )
    if kind == "flame":
        from ..obs.runtime import RuntimeProfiler

        return RuntimeProfiler(rate=FLAME_FUZZ_RATE, seed=FLAME_FUZZ_SEED)
    if kind == "pa8000":
        from ..machine.pa8000 import PA8000Model

        return PA8000Model(program)
    raise ValueError("unknown sink kind {!r}".format(kind))


def _sink_digest(kind: str, sink) -> Tuple:
    """The sink's complete accumulated state as comparable data."""
    if kind == "none":
        return ()
    if kind == "recording":
        return tuple(sink.events)
    if kind == "counting":
        return (sink.instrs, sink.branches, sink.calls, sink.returns, sink.mems)
    if kind == "sampling":
        return (
            sink.events,
            sink.samples,
            tuple(sorted(sink.block_samples.items())),
            tuple(sorted(sink.site_hits.items())),
            tuple(
                sorted(
                    (key, tuple(sorted(contexts.items())))
                    for key, contexts in sink.context_samples.items()
                )
            ),
        )
    if kind == "flame":
        return (
            sink.events,
            sink.samples,
            sink.max_stack_depth,
            tuple(sorted(sink.stack_samples.items())),
            tuple(sorted(sink.call_edges.items())),
        )
    if kind == "pa8000":
        return tuple(sorted(vars(sink.metrics(0)).items()))
    raise ValueError("unknown sink kind {!r}".format(kind))


def observe(
    program, inputs, engine: str, kind: str,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Tuple[Tuple[Any, ...], Tuple]:
    """One (engine, sink) run as comparable data: (outcome, sink state)."""
    sink = _make_sink(kind, program)
    try:
        result = run_program(
            program, inputs, sink=sink, max_steps=max_steps, engine=engine,
        )
    except StepLimitExceeded as exc:
        return ("steplimit", str(exc)), _sink_digest(kind, sink)
    except ExecError as exc:
        return ("execerror", str(exc)), _sink_digest(kind, sink)
    outcome = (
        "result",
        result.exit_code,
        tuple(result.output),
        result.steps,
        result.call_count,
        dict(result.probe_counts),
    )
    return outcome, _sink_digest(kind, sink)


def _prepare_program(sources, strategy: str):
    """Compile, then (for "global"/"demand") run HLO under that strategy."""
    from ..frontend import compile_program

    program = compile_program(sources)
    if strategy != "none":
        from ..core.config import HLOConfig
        from ..core.hlo import run_hlo

        run_hlo(program, HLOConfig(strategy=strategy))
    return program


def _semantics(outcome: Tuple) -> Tuple:
    """The strategy-invariant slice of an outcome.

    Steps, call counts, and probe counts legitimately change when HLO
    restructures the program; the tag, exit code, and printed output
    must not.
    """
    return outcome[:3]


def fuzz_one(
    seed: int,
    engines: Sequence[str],
    kinds: Sequence[str],
    max_steps: int = DEFAULT_MAX_STEPS,
    strategies: Sequence[str] = ("none",),
) -> List[dict]:
    """All strategy × engine × sink divergences for one generator seed."""
    from ..workloads.generator import generate_sources

    sources = generate_sources(seed)
    inputs = [seed, seed * 7 + 3, seed % 5]
    failures: List[dict] = []
    anchor = None  # reference outcome of the unoptimized program
    for strategy in strategies:
        program = _prepare_program(sources, strategy)
        if strategy != "none":
            # Cross-strategy semantics: an HLO-transformed program must
            # print and exit exactly like the unoptimized one.
            if anchor is None:
                anchor = observe(
                    _prepare_program(sources, "none"), inputs, "reference",
                    "none", max_steps,
                )
            got = observe(program, inputs, "reference", "none", max_steps)
            if _semantics(got[0]) != _semantics(anchor[0]):
                failures.append(
                    {
                        "seed": seed,
                        "engine": "reference",
                        "sink": "none",
                        "strategy": strategy,
                        "inputs": inputs,
                        "max_steps": max_steps,
                        "outcome": repr(got[0]),
                        "reference_outcome": repr(anchor[0]),
                        "sink_state": "()",
                        "reference_sink_state": "()",
                        "sources": [list(pair) for pair in sources],
                    }
                )
                continue
        for kind in kinds:
            want = observe(program, inputs, "reference", kind, max_steps)
            for engine in engines:
                got = observe(program, inputs, engine, kind, max_steps)
                if got != want:
                    failures.append(
                        {
                            "seed": seed,
                            "engine": engine,
                            "sink": kind,
                            "strategy": strategy,
                            "inputs": inputs,
                            "max_steps": max_steps,
                            "outcome": repr(got[0]),
                            "reference_outcome": repr(want[0]),
                            "sink_state": repr(got[1]),
                            "reference_sink_state": repr(want[1]),
                            "sources": [list(pair) for pair in sources],
                        }
                    )
    return failures


def run_fuzz(
    seeds: Sequence[int],
    engines: Sequence[str] = OPTIMIZED_ENGINES,
    kinds: Sequence[str] = SINK_KINDS,
    max_steps: int = DEFAULT_MAX_STEPS,
    artifact_dir: Optional[str] = None,
    progress_every: int = 50,
    strategies: Sequence[str] = STRATEGIES,
) -> List[dict]:
    """Fuzz every seed; write one artifact per failure; return failures."""
    failures: List[dict] = []
    for count, seed in enumerate(seeds, start=1):
        failures.extend(fuzz_one(seed, engines, kinds, max_steps, strategies))
        if progress_every and count % progress_every == 0:
            print(
                "fuzz: {}/{} seeds, {} failure(s)".format(
                    count, len(seeds), len(failures)
                )
            )
    if failures and artifact_dir:
        os.makedirs(artifact_dir, exist_ok=True)
        for failure in failures:
            path = os.path.join(
                artifact_dir,
                "seed{}_{}_{}_{}.json".format(
                    failure["seed"], failure["strategy"], failure["engine"],
                    failure["sink"],
                ),
            )
            with open(path, "w") as handle:
                json.dump(failure, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print("wrote {} artifact(s) to {}".format(len(failures), artifact_dir))
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.interp.fuzz",
        description="engine x sink differential fuzz over generator seeds",
    )
    parser.add_argument("--seeds", type=int, default=100, metavar="N",
                        help="number of generator seeds (default 100)")
    parser.add_argument("--start", type=int, default=0, metavar="S",
                        help="first seed (default 0)")
    parser.add_argument("--engines", default=",".join(OPTIMIZED_ENGINES),
                        help="comma-separated engines to diff against the "
                        "reference (default {})".format(
                            ",".join(OPTIMIZED_ENGINES)))
    parser.add_argument("--sinks", default=",".join(SINK_KINDS),
                        help="comma-separated sink kinds (default {})".format(
                            ",".join(SINK_KINDS)))
    parser.add_argument("--strategies", default=",".join(STRATEGIES),
                        help="comma-separated HLO strategies; 'none' skips "
                        "HLO entirely (default {})".format(
                            ",".join(STRATEGIES)))
    parser.add_argument("--max-steps", type=int, default=DEFAULT_MAX_STEPS)
    parser.add_argument("--artifact-dir", metavar="DIR",
                        help="write one JSON repro per failure here")
    args = parser.parse_args(argv)

    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    kinds = [k.strip() for k in args.sinks.split(",") if k.strip()]
    for kind in kinds:
        if kind not in SINK_KINDS + ("recording",):
            parser.error("unknown sink kind {!r}".format(kind))
    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    for strategy in strategies:
        if strategy not in STRATEGIES:
            parser.error("unknown strategy {!r}".format(strategy))
    seeds = range(args.start, args.start + args.seeds)
    failures = run_fuzz(
        seeds, engines=engines, kinds=kinds, max_steps=args.max_steps,
        artifact_dir=args.artifact_dir, strategies=strategies,
    )
    print(
        "fuzz: {} seed(s) x {} strategy(ies) x {} engine(s) x {} sink(s): "
        "{} failure(s)".format(
            len(seeds), len(strategies), len(engines), len(kinds),
            len(failures)
        )
    )
    for failure in failures[:10]:
        print(
            "FAIL: seed {} strategy {} engine {} sink {}: {} != {}".format(
                failure["seed"], failure["strategy"], failure["engine"],
                failure["sink"], failure["outcome"],
                failure["reference_outcome"],
            ),
            file=sys.stderr,
        )
    return min(len(failures), 99)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
