"""The CLI logging shim: one leveled stderr writer."""

import io

import pytest

from repro.obs.log import VERBOSITY_LEVELS, CliLogger


def logger_with_buffer(verbosity):
    stream = io.StringIO()
    return CliLogger(verbosity, stream=stream), stream


class TestLevels:
    def test_quiet_shows_only_errors(self):
        log, stream = logger_with_buffer("quiet")
        log.error("broken")
        log.warn("careful")
        log.info("fyi")
        log.debug("detail")
        assert stream.getvalue() == "error: broken\n"

    def test_normal_shows_warnings_and_info(self):
        log, stream = logger_with_buffer("normal")
        log.warn("careful")
        log.info("summary line")
        log.debug("detail")
        assert stream.getvalue() == "warning: careful\nsummary line\n"

    def test_debug_shows_everything(self):
        log, stream = logger_with_buffer("debug")
        log.error("e")
        log.warn("w")
        log.info("i")
        log.debug("d")
        assert stream.getvalue() == (
            "error: e\nwarning: w\ni\ndebug: d\n"
        )

    def test_warning_prefix_matches_cli_contract(self):
        # tests/test_cli.py pins "warning:" on stderr; the shim must
        # keep that exact prefix.
        log, stream = logger_with_buffer("normal")
        log.warn("profile database 'x' unusable")
        assert stream.getvalue().startswith("warning: ")

    def test_unknown_verbosity_rejected(self):
        with pytest.raises(ValueError):
            CliLogger("loud")

    def test_levels_tuple(self):
        assert VERBOSITY_LEVELS == ("quiet", "normal", "debug")
