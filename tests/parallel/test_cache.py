"""The content-addressed incremental module cache."""

from __future__ import annotations

import os

from repro.core.config import HLOConfig
from repro.frontend.driver import compile_module
from repro.linker.isom import to_isom_text
from repro.linker.toolchain import Toolchain
from repro.parallel import ModuleCache

from .conftest import TRAIN_INPUTS

MODULE_SOURCE = "int add(int a, int b) { return a + b; }\n"


def _compiled_text(name="util", source=MODULE_SOURCE):
    return to_isom_text(compile_module(source, name))


def test_key_depends_on_every_input():
    base = ModuleCache.key_for("m", "src", "fp")
    assert ModuleCache.key_for("m", "src", "fp") == base
    assert ModuleCache.key_for("m2", "src", "fp") != base
    assert ModuleCache.key_for("m", "src2", "fp") != base
    assert ModuleCache.key_for("m", "src", "fp2") != base


def test_memory_hit_returns_fresh_objects():
    cache = ModuleCache()
    key = cache.key_for("util", MODULE_SOURCE, "")
    assert cache.fetch("util", key) is None
    assert cache.stats.misses == 1
    cache.store("util", key, _compiled_text())
    first = cache.fetch("util", key)
    second = cache.fetch("util", key)
    assert cache.stats.hits == 2
    assert first is not second  # cached text, never shared IR objects
    assert to_isom_text(first) == to_isom_text(second)


def test_changed_key_counts_as_invalidation():
    cache = ModuleCache()
    old_key = cache.key_for("util", MODULE_SOURCE, "")
    cache.store("util", old_key, _compiled_text())
    new_key = cache.key_for("util", MODULE_SOURCE + "// edit\n", "")
    assert cache.fetch("util", new_key) is None
    assert cache.stats.invalidations == 1
    # A brand-new module is a plain miss, not an invalidation.
    other = cache.key_for("other", MODULE_SOURCE, "")
    assert cache.fetch("other", other) is None
    assert cache.stats.invalidations == 1


def test_disk_persistence_across_instances(tmp_path):
    first = ModuleCache(str(tmp_path))
    key = first.key_for("util", MODULE_SOURCE, "")
    first.store("util", key, _compiled_text())
    second = ModuleCache(str(tmp_path))
    assert second.fetch("util", key) is not None
    assert second.stats.hits == 1


def test_corrupt_disk_entry_is_a_miss_and_evicted(tmp_path):
    cache = ModuleCache(str(tmp_path))
    key = cache.key_for("util", MODULE_SOURCE, "")
    cache.store("util", key, _compiled_text())
    path = os.path.join(str(tmp_path), "objects", key + ".isom")
    with open(path, "w") as handle:
        handle.write("isom 1 crc32 0\ngarbage\n")
    fresh = ModuleCache(str(tmp_path))
    assert fresh.fetch("util", key) is None
    assert not os.path.exists(path)


def _filler_source(tag):
    """Same-length sources so every disk entry has the same size."""
    return "int f{}(int a, int b) {{ return a + b; }}\n".format(tag)


def _store(cache, name):
    key = cache.key_for(name, _filler_source(name[-1]), "")
    cache.store(name, key, _compiled_text(name, _filler_source(name[-1])))
    return key


def test_size_bound_evicts_least_recently_used(tmp_path):
    probe = ModuleCache(str(tmp_path / "probe"))
    entry_bytes = 0
    _store(probe, "m0")
    entry_bytes = probe.disk_bytes()
    assert entry_bytes > 0

    # Room for two entries, not three.
    max_mb = (2 * entry_bytes + entry_bytes // 2) / (1024.0 * 1024.0)
    cache = ModuleCache(str(tmp_path / "bounded"), max_mb=max_mb)
    key_a = _store(cache, "ma")
    key_b = _store(cache, "mb")
    assert cache.stats.size_evictions == 0
    # Make 'a' the LRU entry, then overflow: 'a' must go, 'b' stays.
    os.utime(os.path.join(str(tmp_path / "bounded"), "objects", key_a + ".isom"),
             (1, 1))
    key_c = _store(cache, "mc")
    assert cache.stats.size_evictions == 1
    assert cache.disk_bytes() <= 2 * entry_bytes
    # The memory copy went with the disk object: a resident daemon's
    # footprint tracks the bounded tier.
    assert cache.fetch("ma", key_a) is None
    assert cache.fetch("mb", key_b) is not None
    assert cache.fetch("mc", key_c) is not None


def test_size_bound_never_evicts_the_entry_just_stored(tmp_path):
    probe = ModuleCache(str(tmp_path / "probe"))
    _store(probe, "m0")
    entry_bytes = probe.disk_bytes()

    # Bound below a single entry: each store evicts its predecessor.
    max_mb = (entry_bytes // 2) / (1024.0 * 1024.0)
    cache = ModuleCache(str(tmp_path / "tiny"), max_mb=max_mb)
    _store(cache, "ma")
    assert cache.stats.size_evictions == 0  # 'a' itself is protected
    key_b = _store(cache, "mb")
    assert cache.stats.size_evictions == 1  # 'a' evicted, 'b' protected
    assert cache.fetch("mb", key_b) is not None


def test_fetch_refreshes_recency(tmp_path):
    probe = ModuleCache(str(tmp_path / "probe"))
    _store(probe, "m0")
    entry_bytes = probe.disk_bytes()

    max_mb = (2 * entry_bytes + entry_bytes // 2) / (1024.0 * 1024.0)
    directory = str(tmp_path / "touched")
    cache = ModuleCache(directory, max_mb=max_mb)
    key_a = _store(cache, "ma")
    key_b = _store(cache, "mb")
    # Age both, then *use* 'a': the hit refreshes its mtime, so the
    # overflow evicts 'b' even though 'a' was stored first.
    for key in (key_a, key_b):
        os.utime(os.path.join(directory, "objects", key + ".isom"), (1, 1))
    assert cache.fetch("ma", key_a) is not None
    _store(cache, "mc")
    assert cache.stats.size_evictions == 1
    assert cache.fetch("ma", key_a) is not None
    assert cache.fetch("mb", key_b) is None


def test_unbounded_cache_never_size_evicts(tmp_path):
    cache = ModuleCache(str(tmp_path))
    for index in range(6):
        _store(cache, "m{}".format(index))
    assert cache.stats.size_evictions == 0


def _build(sources, tmp_path, config=None):
    toolchain = Toolchain(
        sources,
        train_inputs=TRAIN_INPUTS,
        config=config,
        cache_dir=str(tmp_path),
    )
    return toolchain.build("cp")


def test_warm_rebuild_recompiles_nothing(sources, tmp_path):
    cold = _build(sources, tmp_path)
    assert cold.diagnostics.modules_compiled > 0
    warm = _build(sources, tmp_path)
    assert warm.diagnostics.modules_compiled == 0
    assert warm.diagnostics.cache_hit_rate == 1.0
    assert "cache: " in warm.diagnostics.summary(warm.report)
    assert "(100%)" in warm.diagnostics.summary(warm.report)


def test_rewriting_identical_source_still_hits(sources, tmp_path):
    _build(sources, tmp_path)
    # "touch" every file: same text objects rebuilt from scratch.
    rewritten = [(name, str(text)) for name, text in sources]
    warm = _build(rewritten, tmp_path)
    assert warm.diagnostics.modules_compiled == 0


def test_config_change_invalidates(sources, tmp_path):
    _build(sources, tmp_path)
    changed = _build(sources, tmp_path, config=HLOConfig(budget_percent=137.0))
    assert changed.diagnostics.modules_compiled > 0
    assert changed.diagnostics.cache_invalidations > 0


def test_single_module_edit_recompiles_only_that_module(sources, tmp_path):
    _build(sources, tmp_path)
    edited = [
        (name, text + "// tweak\n" if name == "mid" else text)
        for name, text in sources
    ]
    partial = _build(edited, tmp_path)
    # Only 'mid' misses, once: the first frontend compile stores the
    # new isom and the build's later compiles (training + final) hit.
    assert partial.diagnostics.modules_compiled == 1
    assert partial.diagnostics.cache_misses == 1
    assert partial.diagnostics.cache_invalidations == 1
