"""Front-end driver: minic source text to IR modules and programs."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..ir.module import Module
from ..ir.program import RUNTIME_BUILTINS, Program
from ..ir.verifier import verify_program
from .errors import CompileError
from .lower import lower_unit
from .parser import parse_source
from .sema import analyze_unit

SourceList = Union[Dict[str, str], Sequence[Tuple[str, str]]]


def compile_module(source: str, module_name: str) -> Module:
    """Compile one minic source file into an IR module."""
    unit = parse_source(source, module_name)
    syms = analyze_unit(unit, module_name)
    return lower_unit(unit, syms)


def compile_program(sources: SourceList, verify: bool = True) -> Program:
    """Compile and link-check a multi-module minic program.

    ``sources`` maps module names to source text (dict or ordered
    pairs).  Cross-module references resolve by name at this level;
    unresolved externs that are not runtime builtins raise.
    """
    if isinstance(sources, dict):
        pairs = list(sources.items())
    else:
        pairs = list(sources)

    program = Program()
    for name, text in pairs:
        program.add_module(compile_module(text, name))

    _check_resolution(program)
    if verify:
        verify_program(program)
    return program


def link_check(program: Program) -> None:
    """Check cross-module resolution of an externally assembled program.

    The parallel compile pipeline builds its :class:`Program` from
    per-worker modules and then runs the same resolution checks a
    serial :func:`compile_program` would.
    """
    _check_resolution(program)


def _check_resolution(program: Program) -> None:
    for mod in program.modules.values():
        for name, sig in mod.externs.items():
            target = program.proc(name)
            if target is None:
                if name in RUNTIME_BUILTINS:
                    continue
                raise CompileError(
                    "unresolved external function {!r} (declared in module {!r})".format(
                        name, mod.name
                    )
                )
            if target.signature() != sig:
                raise CompileError(
                    "signature mismatch for {!r}: declared {} in module {!r}, "
                    "defined {} in module {!r}".format(
                        name, sig, mod.name, target.signature(), target.module
                    )
                )
    if program.proc("main") is None:
        raise CompileError("program does not define main()")
