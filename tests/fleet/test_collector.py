"""The collector's receive gauntlet: breakers, dedupe, quarantine, merge."""

from __future__ import annotations

from repro.fleet import CircuitBreaker, ProfileCollector, ProfileShard, ShardSpool
from repro.fleet.collector import CLOSED, HALF_OPEN, OPEN
from repro.frontend.driver import compile_program
from repro.resilience import FaultInjector

from .conftest import SOURCES, sampled_payload


def make_collector(tmp_path, profiling_image, **kwargs):
    return ProfileCollector(
        profiling_image, ShardSpool(str(tmp_path / "shards.wal")), **kwargs
    )


def wire_for(source, seq, payload, epoch=0):
    return ProfileShard(source, seq, epoch, payload).to_wire()


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=4)
        assert not breaker.record_failure(0)
        assert not breaker.record_failure(1)
        assert breaker.record_failure(2)  # third strike trips
        assert breaker.state == OPEN and breaker.opens == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure(0)
        breaker.record_success()
        assert not breaker.record_failure(1)  # count restarted
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=4)
        breaker.record_failure(0)
        assert not breaker.allows(2)  # still cooling down
        assert breaker.allows(4)  # probe allowed
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker(threshold=3, cooldown=4)
        for tick in range(3):
            breaker.record_failure(tick)
        assert breaker.allows(10)  # HALF_OPEN probe
        assert breaker.record_failure(10)  # one strike re-opens
        assert breaker.state == OPEN and breaker.opens == 2


class TestReceiveGauntlet:
    def test_good_shard_accepted_and_journaled(self, tmp_path, profiling_image):
        collector = make_collector(tmp_path, profiling_image)
        payload = sampled_payload(profiling_image)
        ack = collector.receive(
            wire_for("inst0", 0, payload), source="inst0", seq=0, tick=0
        )
        assert ack.accepted and ack.reason == "accepted"
        assert collector.accepted == 1
        assert collector.spool.appended == 1
        assert collector.merged_profile() is not None

    def test_duplicate_acked_but_not_merged_twice(self, tmp_path, profiling_image):
        collector = make_collector(tmp_path, profiling_image)
        wire = wire_for("inst0", 0, sampled_payload(profiling_image))
        collector.receive(wire, source="inst0", seq=0, tick=0)
        ack = collector.receive(wire, source="inst0", seq=0, tick=1)
        assert ack.accepted and ack.reason == "duplicate"
        assert collector.accepted == 1 and collector.duplicates == 1

    def test_transit_damage_nacked_for_retry(self, tmp_path, profiling_image):
        collector = make_collector(tmp_path, profiling_image)
        wire = wire_for("inst0", 0, sampled_payload(profiling_image))
        ack = collector.receive(wire[:-9], source="inst0", seq=0, tick=0)
        assert not ack.accepted and ack.reason.startswith("transit:")
        # Damage is transit's fault: nothing journaled, not yet "seen",
        # so the intact retransmission lands cleanly.
        assert collector.spool.appended == 0
        retry = collector.receive(wire, source="inst0", seq=0, tick=1)
        assert retry.accepted and collector.accepted == 1

    def test_unparseable_payload_quarantined_and_acked(
        self, tmp_path, profiling_image
    ):
        collector = make_collector(tmp_path, profiling_image)
        injector = FaultInjector(seed=3, poison_sources=("inst0",))
        payload = injector.poison_payload(
            sampled_payload(profiling_image), "inst0", 0
        )
        ack = collector.receive(
            wire_for("inst0", 0, payload), source="inst0", seq=0, tick=0
        )
        # ACKed — retransmitting identical bad bytes cannot help — but
        # quarantined, journaled, and a strike against the source.
        assert ack.accepted and ack.reason.startswith("quarantined:payload:")
        assert collector.quarantined_shards == 1
        assert collector.spool.appended == 1
        assert collector.merged_profile() is None

    def test_stale_fingerprint_quarantined(self, tmp_path, profiling_image):
        drifted = [(n, t.replace("* 3 + 1", "* 5 + 2")) for n, t in SOURCES]
        other_image = compile_program(drifted)
        collector = make_collector(tmp_path, profiling_image)
        ack = collector.receive(
            wire_for("inst0", 0, sampled_payload(other_image)),
            source="inst0", seq=0, tick=0,
        )
        assert ack.accepted
        assert ack.reason == "quarantined:stale-fingerprint"
        assert collector.merged_profile() is None

    def test_low_confidence_quarantined_without_breaker_strike(
        self, tmp_path, profiling_image
    ):
        # A floor above 1.0 makes every sampled shard "too thin".
        collector = make_collector(
            tmp_path, profiling_image, min_shard_confidence=1.1
        )
        for seq in range(6):
            ack = collector.receive(
                wire_for("inst0", seq, sampled_payload(profiling_image, seed=seq)),
                source="inst0", seq=seq, tick=seq,
            )
            assert ack.reason == "quarantined:low-confidence"
        # The source is healthy; six thin shards must not trip anything.
        assert collector.breaker_opens() == 0

    def test_breaker_opens_and_recovers(self, tmp_path, profiling_image):
        injector = FaultInjector(seed=3, poison_sources=("inst0",))
        collector = make_collector(
            tmp_path, profiling_image, breaker_threshold=2, breaker_cooldown=3
        )
        for seq in range(2):
            payload = injector.poison_payload(
                sampled_payload(profiling_image, seed=seq), "inst0", seq
            )
            collector.receive(
                wire_for("inst0", seq, payload), source="inst0", seq=seq, tick=seq
            )
        assert collector.breaker_opens() == 1
        good = wire_for("inst0", 7, sampled_payload(profiling_image, seed=7))
        blocked = collector.receive(good, source="inst0", seq=7, tick=2)
        assert not blocked.accepted and blocked.reason == "breaker-open"
        # The sick source does not block its healthy peers.
        peer = collector.receive(
            wire_for("inst1", 0, sampled_payload(profiling_image, seed=9)),
            source="inst1", seq=0, tick=2,
        )
        assert peer.accepted
        # After cooldown the HALF_OPEN probe succeeds and re-closes.
        probe = collector.receive(good, source="inst0", seq=7, tick=5)
        assert probe.accepted
        assert collector.breakers["inst0"].state == CLOSED


class TestRestoreAndMerge:
    def test_restart_replays_journal_to_same_state(
        self, tmp_path, profiling_image
    ):
        collector = make_collector(tmp_path, profiling_image)
        for seq in range(3):
            collector.receive(
                wire_for("inst0", seq, sampled_payload(profiling_image, seed=seq)),
                source="inst0", seq=seq, tick=seq,
            )
        merged_before = collector.merged_profile()
        reborn = make_collector(tmp_path, profiling_image)
        replayed, truncated = reborn.restore()
        assert replayed == 3 and not truncated
        assert reborn.accepted == 3
        merged_after = reborn.merged_profile()
        assert merged_after.block_counts == merged_before.block_counts
        assert merged_after.site_counts == merged_before.site_counts

    def test_restore_reapplies_epoch_quarantine(self, tmp_path, profiling_image):
        collector = make_collector(tmp_path, profiling_image)
        collector.receive(
            wire_for("inst0", 0, sampled_payload(profiling_image), epoch=0),
            source="inst0", seq=0, tick=0,
        )
        reborn = make_collector(tmp_path, profiling_image)
        reborn.restore(quarantined_epochs={0})
        assert reborn.merged_profile() is None
        assert reborn.live_epochs() == []

    def test_restore_survives_torn_tail(self, tmp_path, profiling_image):
        collector = make_collector(tmp_path, profiling_image)
        for seq in range(3):
            collector.receive(
                wire_for("inst0", seq, sampled_payload(profiling_image, seed=seq)),
                source="inst0", seq=seq, tick=seq,
            )
        injector = FaultInjector(seed=11, wal_tail_rounds=(0,))
        spool = ShardSpool(str(tmp_path / "shards.wal"))
        spool.rewrite(injector.corrupt_wal_tail(spool.raw()))
        reborn = make_collector(tmp_path, profiling_image)
        replayed, truncated = reborn.restore()
        assert truncated
        assert 0 < replayed < 3
        assert reborn.merged_profile() is not None

    def test_quarantined_epoch_excluded_from_merge(
        self, tmp_path, profiling_image
    ):
        collector = make_collector(tmp_path, profiling_image)
        for epoch in (0, 1):
            collector.receive(
                wire_for("inst0", epoch, sampled_payload(profiling_image, seed=epoch),
                         epoch=epoch),
                source="inst0", seq=epoch, tick=epoch,
            )
        assert collector.live_epochs() == [0, 1]
        collector.quarantine_epoch(0)
        assert collector.live_epochs() == [1]
        assert collector.merged_profile() is not None
