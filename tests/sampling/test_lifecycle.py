"""Profile lifecycle: weighted merge, staleness, remap, quality gates."""

import pytest

from repro.frontend.driver import compile_program
from repro.linker.toolchain import Toolchain
from repro.profile.database import ProfileDatabase
from repro.profile.fingerprint import fingerprint_program
from repro.sampling import (
    FRESH,
    MISSING,
    STALE,
    ProfileConfidenceError,
    assess_staleness,
    merge_profiles,
    quality_report,
    remap_database,
    require_confident,
    sample_train,
)

PROGRAM_V1 = """
int helper(int x) { return x * 2 + 1; }
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 40; i = i + 1) {
    s = s + helper(i);
  }
  print_int(s);
  return 0;
}
"""

# helper's body changed (fingerprint differs), main is untouched.
PROGRAM_V2 = """
int helper(int x) {
  if (x > 10) { return x * 3; }
  return x * 2 + 1;
}
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 40; i = i + 1) {
    s = s + helper(i);
  }
  print_int(s);
  return 0;
}
"""


def _db(src=PROGRAM_V1, runs=1, rate=10, seed=0):
    return sample_train([("m", src)], [()] * runs, rate=rate, seed=seed)


class TestMerge:
    def test_equal_weight_merge_accumulates_evidence(self):
        a = _db(seed=0)
        b = _db(seed=5)
        merged = merge_profiles([a, b])
        assert merged.sampled
        assert merged.sample_count == a.sample_count + b.sample_count
        assert merged.training_runs == 2
        assert merged.overall_confidence() >= max(
            a.overall_confidence(), b.overall_confidence()
        )

    def test_weights_shift_the_counts(self):
        a = _db(runs=1)
        b = _db(runs=1, seed=9)
        favored_a = merge_profiles([a, b], weights=[10.0, 1.0])
        favored_b = merge_profiles([a, b], weights=[1.0, 10.0])
        key = max(a.block_counts, key=a.block_counts.get)
        # Normalized weighting: the same block lands closer to the
        # favored database's (normalized) contribution in each merge.
        assert favored_a.block_counts[key] > 0
        assert favored_b.block_counts[key] > 0

    def test_up_weighting_cannot_manufacture_evidence(self):
        a = _db(runs=1)
        boosted = merge_profiles([a, a], weights=[100.0, 100.0])
        assert boosted.sample_count <= 2 * a.sample_count

    def test_decay_prefers_the_newest(self):
        old = _db(runs=1, seed=0)
        new = _db(runs=1, seed=3)
        merged = merge_profiles([old, new], decay=0.5)
        assert merged.sampled
        assert merged.training_runs == 2

    def test_decay_and_weights_are_exclusive(self):
        with pytest.raises(ValueError):
            merge_profiles([_db(), _db()], weights=[1.0, 2.0], decay=0.5)
        with pytest.raises(ValueError):
            merge_profiles([_db(), _db()], decay=1.5)


class TestStaleness:
    def test_fresh_program_all_fresh(self):
        db = _db()
        report = assess_staleness(db, compile_program([("m", PROGRAM_V1)]))
        assert report.procs
        assert all(p.status == FRESH for p in report.procs.values())
        assert report.healthy(0.8)

    def test_edited_procedure_flagged_stale_others_fresh(self):
        db = _db()
        report = assess_staleness(db, compile_program([("m", PROGRAM_V2)]))
        assert report.procs["helper"].status == STALE
        assert report.procs["main"].status == FRESH

    def test_deleted_procedure_flagged_missing(self):
        db = _db()
        gone = compile_program(
            [("m", "int main() { print_int(7); return 0; }")]
        )
        report = assess_staleness(db, gone)
        assert report.procs["helper"].status == MISSING

    def test_fingerprints_decide_even_when_labels_match(self):
        # PROGRAM_V2 renames no label of main but rewrites helper; a
        # pure label-match heuristic could miss a same-shape edit, the
        # fingerprint cannot.
        program_v2 = compile_program([("m", PROGRAM_V2)])
        db = _db()
        fresh_fp = fingerprint_program(program_v2)
        assert db.fingerprints["main"] == fresh_fp["main"]
        assert db.fingerprints["helper"] != fresh_fp["helper"]


class TestRemap:
    def test_remap_salvages_fresh_counts_and_refreshes_fingerprints(self):
        db = _db()
        program_v2 = compile_program([("m", PROGRAM_V2)])
        remapped, report = remap_database(db, program_v2)
        assert report.procs["helper"].status == STALE
        # main's counts survive verbatim.
        for (proc, label), count in db.block_counts.items():
            if proc == "main":
                assert remapped.block_counts[(proc, label)] == count
        # A second assessment against the same program is clean.
        after = assess_staleness(remapped, program_v2)
        assert all(p.status == FRESH for p in after.procs.values())

    def test_remap_drops_missing_procedures(self):
        db = _db()
        gone = compile_program(
            [("m", "int main() { print_int(7); return 0; }")]
        )
        remapped, _report = remap_database(db, gone)
        assert not any(
            proc == "helper" for proc, _label in remapped.block_counts
        )


class TestQualityGates:
    def test_quality_report_shape(self):
        db = _db()
        payload = quality_report(db, compile_program([("m", PROGRAM_V1)]))
        assert payload["sampled"]
        assert 0.0 < payload["confidence"] <= 1.0
        assert 0.0 < payload["coverage"] <= 1.0
        assert payload["match_ratio"] == 1.0
        assert payload["staleness"]["stale"] == []
        assert payload["sampling"]["samples"] == db.sample_count

    def test_require_confident_passes_exact_and_rich_sampled(self):
        exact = ProfileDatabase()
        exact.block_counts[("main", "entry")] = 5
        require_confident(exact)  # exact: always confident
        rich = _db(runs=4, rate=5)
        require_confident(rich)

    def test_require_confident_rejects_thin_evidence(self):
        thin = _db(rate=400)  # a couple of samples at best
        with pytest.raises(ProfileConfidenceError):
            require_confident(thin, minimum=0.99)


class TestLowConfidenceRung:
    def test_toolchain_degrades_on_thin_sampled_profile(self, capsys):
        # Rate far above the run length: almost no samples, confidence
        # under the floor.  The build must fall back to static
        # heuristics (degradation ladder rung), not crash.
        result = Toolchain(
            [("m", PROGRAM_V1)],
            train_inputs=[[]],
            sample_rate=5000,
        ).build("cp")
        assert result.diagnostics.profile_fallback
        assert "confidence" in result.diagnostics.profile_fallback

    def test_confident_sampled_profile_is_used(self):
        result = Toolchain(
            [("m", PROGRAM_V1)],
            train_inputs=[[]] * 3,
            sample_rate=10,
        ).build("cp")
        assert not result.diagnostics.profile_fallback

    def test_strict_build_hard_fails_on_thin_profile(self):
        from repro.resilience.errors import StrictModeError

        with pytest.raises(StrictModeError):
            Toolchain(
                [("m", PROGRAM_V1)],
                train_inputs=[[]],
                sample_rate=5000,
                strict=True,
            ).build("cp")
