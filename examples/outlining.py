#!/usr/bin/env python
"""Aggressive outlining: the paper's Section 5 future work, implemented.

"We are also contemplating using aggressive outlining as a complement
to aggressive inlining, to help further focus the global optimizer on
the truly important stretches of code."

The mechanism: extract *cold* blocks (error paths, rare modes) into
fresh procedures.  Under HLO's quadratic compile budget this is a
complement to inlining — splitting a routine strictly reduces
Σ size(R)², so the same budget can fund more hot-path inlining.

The effect is budget-sensitive, so this example measures it on a real
suite workload (vortex, the accessor-heavy record store) across budget
levels: at tight budgets outlining buys extra inlining headroom; at
generous budgets the extra call overhead on not-perfectly-cold paths
can cost instead.  Both outcomes are printed — this is an honest
evaluation of a feature the paper only contemplated.

Run:  python examples/outlining.py [workload]
"""

import sys

from repro import HLOConfig, Toolchain
from repro.bench import format_table
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    if name not in workload_names():
        raise SystemExit("unknown workload {!r}; try one of {}".format(
            name, ", ".join(workload_names())))
    workload = get_workload(name)
    toolchain = Toolchain(
        list(workload.sources),
        train_inputs=[list(t) for t in workload.train_inputs],
    )

    rows = []
    baseline = None
    for budget in (100.0, 400.0):
        for outlining in (False, True):
            cfg = HLOConfig(budget_percent=budget, enable_outlining=outlining)
            build = toolchain.build("cp", cfg)
            metrics, run = build.run(workload.ref_input)
            if baseline is None:
                baseline = run.behavior()
            assert run.behavior() == baseline, "behaviour must not change"
            rows.append(
                [
                    int(budget),
                    "on" if outlining else "off",
                    "{:.0f}".format(metrics.cycles),
                    build.report.outlines,
                    build.report.inlines,
                    build.stats.code_size_instrs,
                    "{:.0f}".format(build.report.final_cost),
                ]
            )

    print(format_table(
        ["budget%", "outlining", "run_cycles", "outlines", "inlines",
         "code_size", "final Σ size²"],
        rows,
        title="Outlining as a complement to inlining ({})".format(name),
    ))
    print("\nReading the table: at the tight budget, outlined cold blocks")
    print("lower the quadratic cost base, changing which hot-path inlines")
    print("fit; at generous budgets the effect can invert.  Behaviour is")
    print("identical in every configuration.")


if __name__ == "__main__":
    main()
