"""Loop-invariant code motion.

Hoists pure, non-trapping computations whose operands do not change
inside a natural loop into a preheader block.  Inlining feeds this
pass: a callee body spliced into a loop often recomputes values per
iteration that were per-call before.

Soundness in this non-SSA IR rests on three restrictions:

- only ``mov``/``unop``(except ``ftoi``)/non-trapping ``binop`` hoist —
  the hoisted instruction may now execute when the loop body would not
  have, so it must be incapable of trapping;
- the destination register must have exactly **one** definition in the
  entire procedure (so no other definition can reach any of its uses,
  inside or outside the loop);
- every register operand must be defined outside the loop, or itself be
  a hoisted invariant.

The preheader is created on demand: a fresh block that all non-back-
edge predecessors of the header are retargeted to.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.loops import Loop, find_loops
from ..ir.instructions import BinOp, Instr, Jump, Mov, UnOp
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import Imm, Reg

_HOISTABLE_UNOPS = frozenset(["neg", "not", "lnot", "itof"])


def _non_trapping(instr: Instr) -> bool:
    cls = instr.__class__
    if cls is Mov:
        return True
    if cls is UnOp:
        return instr.op in _HOISTABLE_UNOPS
    if cls is BinOp:
        if instr.op in ("div", "mod"):
            rhs = instr.rhs
            return isinstance(rhs, Imm) and rhs.value != 0
        return True
    return False


def _definition_counts(proc: Procedure) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for instr in proc.instructions():
        if instr.dest is not None:
            counts[instr.dest.name] = counts.get(instr.dest.name, 0) + 1
    return counts


def _ensure_preheader(proc: Procedure, loop: Loop) -> Optional[str]:
    """The unique outside-the-loop predecessor of the header, creating a
    forwarding block when needed.  Returns its label, or None if the
    header is the procedure entry (no outside edge to split)."""
    preds = proc.predecessors()
    outside = [p for p in preds.get(loop.header, []) if p not in loop.body]
    if not outside:
        return None
    if len(outside) == 1:
        block = proc.blocks[outside[0]]
        term = block.terminator
        if isinstance(term, Jump):
            return outside[0]
    preheader = proc.new_block("preheader")
    preheader.append(Jump(loop.header))
    # Executes once per loop entry; leave its count unmeasured rather
    # than inheriting the header's per-iteration count.
    mapping = {loop.header: preheader.label}
    for label in outside:
        proc.blocks[label].terminator.retarget(mapping)
    return preheader.label


def licm(program: Program, proc: Procedure) -> bool:
    """Hoist invariants out of every natural loop; True when IR changed."""
    loops = find_loops(proc)
    if not loops:
        return False
    # Inner loops first (smaller bodies), so invariants can percolate
    # outward across repeated pipeline iterations.
    loops.sort(key=lambda l: len(l.body))
    changed = False
    for loop in loops:
        if _hoist_from_loop(proc, loop):
            changed = True
    return changed


def _hoist_from_loop(proc: Procedure, loop: Loop) -> bool:
    def_counts = _definition_counts(proc)
    params = {name for name, _t in proc.params}

    # Registers defined anywhere inside the loop.
    defined_in_loop: Set[str] = set()
    for label in loop.body:
        block = proc.blocks.get(label)
        if block is None:
            return False
        for instr in block.instrs:
            if instr.dest is not None:
                defined_in_loop.add(instr.dest.name)

    # Fixpoint: find invariant, single-def, non-trapping instructions.
    invariant: List[Tuple[str, Instr]] = []
    invariant_regs: Set[str] = set()
    grew = True
    while grew:
        grew = False
        for label in sorted(loop.body):
            for instr in proc.blocks[label].instrs:
                dest = instr.dest
                if dest is None or dest.name in invariant_regs:
                    continue
                if instr.is_terminator or not _non_trapping(instr):
                    continue
                if def_counts.get(dest.name, 0) != 1 or dest.name in params:
                    continue
                ok = True
                for op in instr.uses():
                    if isinstance(op, Reg):
                        if op.name in invariant_regs:
                            continue
                        if op.name in defined_in_loop:
                            ok = False
                            break
                if ok:
                    invariant.append((label, instr))
                    invariant_regs.add(dest.name)
                    grew = True

    if not invariant:
        return False
    preheader_label = _ensure_preheader(proc, loop)
    if preheader_label is None:
        return False
    preheader = proc.blocks[preheader_label]

    # Hoist in discovery order (dependencies were discovered first),
    # inserting before the preheader's terminator.
    hoisted_set = {id(instr) for _l, instr in invariant}
    for label in loop.body:
        block = proc.blocks[label]
        block.instrs = [i for i in block.instrs if id(i) not in hoisted_set]
    insert_at = len(preheader.instrs) - 1
    for _label, instr in invariant:
        preheader.instrs.insert(insert_at, instr)
        insert_at += 1
    return True
