"""The collector's crash-safe write-ahead spool.

Every shard whose frame survives transit is journaled *before* semantic
validation, so a collector crash loses nothing that was ever received:
restart replays the spool and re-derives the accepted/quarantined split
deterministically (the same gates run on the same bytes).

The spool is a single append-only file of concatenated shard frames
(:mod:`repro.fleet.shard`).  Each frame is length-delimited and CRC32'd,
which makes replay after a torn write exact: frames are walked in
order, the first one that fails to parse marks the torn tail, the good
prefix is kept, and the file is truncated back to the last intact
frame boundary so subsequent appends start clean.  (A production spool
would ``fsync`` per append; this in-process model stops at ``flush`` —
the crash being modelled is the collector process, not the host.)
"""

from __future__ import annotations

import os
from typing import List, Tuple

from ..resilience.errors import ShardFormatError
from .shard import ProfileShard


class ShardSpool:
    """Append-only, CRC-framed shard journal with truncate-tolerant replay."""

    def __init__(self, path: str):
        self.path = path
        self.appended = 0  # frames journaled through this handle

    def append(self, shard: ProfileShard) -> None:
        with open(self.path, "a") as handle:
            handle.write(shard.to_wire())
            handle.flush()
        self.appended += 1

    def replay(self) -> Tuple[List[ProfileShard], bool]:
        """Read back every intact frame; returns ``(shards, truncated)``.

        ``truncated`` is True when a torn or corrupted tail was found
        and cut away.  Replay never raises on damage — a spool that
        cannot be read past some point is, by definition, a spool whose
        good prefix is the recoverable state.
        """
        if not os.path.exists(self.path):
            return [], False
        with open(self.path) as handle:
            text = handle.read()
        shards: List[ProfileShard] = []
        offset = 0
        truncated = False
        while offset < len(text):
            if not text[offset:].strip():
                break  # trailing whitespace only
            try:
                shard, offset = ProfileShard.from_wire(text, offset)
            except ShardFormatError:
                truncated = True
                break
            shards.append(shard)
        if truncated:
            with open(self.path, "w") as handle:
                handle.write(text[:offset])
        return shards, truncated

    # -- fault-injection seam ------------------------------------------

    def raw(self) -> str:
        """The spool's current bytes (for tail-corruption injection)."""
        if not os.path.exists(self.path):
            return ""
        with open(self.path) as handle:
            return handle.read()

    def rewrite(self, text: str) -> None:
        """Replace the spool contents (fault injection only)."""
        with open(self.path, "w") as handle:
            handle.write(text)
