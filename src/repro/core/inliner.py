"""The inlining pass (Figure 4 of the paper).

Screen every direct call site, rank the viable ones by run-time figure
of merit, greedily accept sites into a *schedule* while the staged
budget holds (cost of an inline is evaluated against the projected
sizes implied by everything already scheduled, which models the
paper's cascaded-cost adjustment), then perform the schedule bottom-up
over the call graph so that a callee's own accepted inlines land before
its body is copied upward.  Finally the transformed routines are
re-optimized and the budget recalibrated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.freq import entry_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.manager import AnalysisManager
from ..ir.basicblock import BasicBlock
from ..ir.instructions import Call, Jump
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..obs import NULL_OBSERVER
from ..obs.ledger import record_decision
from ..opt.pass_manager import optimize_proc
from .benefit import RankedSite, rank_site
from .budget import Budget
from .config import HLOConfig
from .legality import inline_blocker
from .report import HLOReport
from .transplant import (
    BlockSnapshot,
    splice_body,
    subtract_moved_counts,
    transfer_ratio,
)

# Instructions of glue added per inline beyond the callee body: one
# parameter-binding move per argument plus the landing/continue jumps.
GLUE_PER_ARG = 1
GLUE_FIXED = 2


class ScheduledInline:
    __slots__ = ("ranked", "caller", "callee", "site_id")

    def __init__(self, ranked: RankedSite):
        self.ranked = ranked
        self.caller = ranked.site.caller.name
        self.callee = ranked.site.callee.name  # type: ignore[union-attr]
        self.site_id = ranked.site.instr.site_id


def inline_pass(
    program: Program,
    config: HLOConfig,
    budget: Budget,
    report: HLOReport,
    pass_number: int,
    site_counts: Optional[Dict[Tuple[str, int], int]] = None,
    manager: Optional["AnalysisManager"] = None,
    obs=NULL_OBSERVER,
) -> int:
    """Run one inline pass; returns the number of inlines performed.

    With an :class:`~repro.analysis.AnalysisManager`, the call graph,
    entry counts, and block frequencies are reused from earlier stages
    when still valid; the pass reports every procedure it mutated back
    to the manager so the caches stay honest.  ``obs`` is the
    observability bundle: every site evaluated here leaves a decision
    on its ledger (and bumps ``report.sites_considered``).
    """
    counts = site_counts if config.use_profile else None
    if manager is not None:
        graph = manager.callgraph()
        entry = manager.entry_counts(counts)
        freq_cache = manager.freq_cache()
    else:
        graph = CallGraph(program)
        entry = entry_counts(program, graph, counts)
        freq_cache = {}

    # Screen and rank (Figure 4: "screen inline candidates").
    candidates: List[RankedSite] = []
    for site in graph.sites:
        blocker = inline_blocker(
            program, site, config.cross_module, config.inline_recursive,
            config.local_modules,
        )
        if blocker is not None:
            record_decision(
                obs, report, "inline", pass_number, site, "rejected", blocker,
            )
            continue
        ranked = rank_site(site, entry, config, counts, freq_cache)
        if ranked.always_inline or ranked.benefit > config.min_inline_benefit:
            candidates.append(ranked)
        else:
            record_decision(
                obs, report, "inline", pass_number, site, "rejected",
                "benefit below threshold", reason_class="benefit",
                benefit=ranked.benefit,
            )
    candidates.sort(key=lambda r: r.sort_key)

    # Greedy selection against the staged budget, with cascaded costs
    # modelled by replaying the projected schedule.
    base_sizes = {p.name: p.size() for p in program.all_procs()}
    base_cost = sum(s * s for s in base_sizes.values())
    other_cost = budget.current - base_cost  # cost attributed elsewhere (≈0)
    perform_rank = {name: i for i, name in enumerate(graph.bottom_up_order())}
    stage = budget.stage_limit(pass_number)

    schedule: List[ScheduledInline] = []
    for ranked in candidates:
        entry_item = ScheduledInline(ranked)
        schedule.append(entry_item)
        projected_cost = _replay_cost(schedule, base_sizes, perform_rank) + other_cost
        if ranked.always_inline:
            continue  # user directive: exempt from the budget
        if projected_cost > stage:
            schedule.pop()
            record_decision(
                obs, report, "inline", pass_number, ranked.site, "rejected",
                "staged budget exhausted", reason_class="budget",
                benefit=ranked.benefit,
            )

    if not schedule:
        return 0

    # Perform bottom-up (callees before callers), so bodies accumulate.
    schedule.sort(key=lambda s: (perform_rank.get(s.caller, 0), -s.ranked.benefit))
    performed = 0
    touched: Set[str] = set()
    mutated: Set[str] = set()
    for index, item in enumerate(schedule):
        if config.stop_after is not None and report.transform_count >= config.stop_after:
            for later in schedule[index:]:
                record_decision(
                    obs, report, "inline", pass_number, later.ranked.site,
                    "rejected", "stop-after limit reached",
                    reason_class="budget", benefit=later.ranked.benefit,
                )
            break
        caller = program.proc(item.caller)
        if caller is None:
            record_decision(
                obs, report, "inline", pass_number, item.ranked.site,
                "rejected", "caller deleted before transform",
                reason_class="mechanical",
            )
            continue
        with obs.tracer.span(
            "inline:{}<-{}".format(item.caller, item.callee)
            if obs.tracer.enabled else "",
            cat="transform", site=item.site_id,
        ):
            done = perform_inline(program, caller, item.site_id, report, pass_number)
        if done:
            performed += 1
            record_decision(
                obs, report, "inline", pass_number, item.ranked.site,
                "inlined", "accepted within staged budget",
                reason_class="accepted", benefit=item.ranked.benefit,
            )
            touched.add(item.caller)
            # The callee's profile counts migrate to the inlined copy,
            # so both ends of the site count as mutated.
            mutated.add(item.caller)
            mutated.add(item.callee)
        else:
            record_decision(
                obs, report, "inline", pass_number, item.ranked.site,
                "rejected", "call site vanished before transform",
                reason_class="mechanical",
            )

    # "optimize inlines and recalibrate"
    if config.reoptimize:
        for name in sorted(touched):
            proc = program.proc(name)
            if proc is not None:
                optimize_proc(program, proc)
    budget.recalibrate(program)
    if manager is not None and mutated:
        manager.invalidate_procs(mutated)
    return performed


def _replay_cost(
    schedule: List[ScheduledInline],
    base_sizes: Dict[str, int],
    perform_rank: Dict[str, int],
) -> float:
    """Program cost after performing ``schedule`` bottom-up."""
    ordered = sorted(
        schedule, key=lambda s: (perform_rank.get(s.caller, 0), -s.ranked.benefit)
    )
    projected = dict(base_sizes)
    for item in ordered:
        callee_size = projected.get(item.callee, 0)
        arg_count = len(item.ranked.site.instr.args)
        added = callee_size + arg_count * GLUE_PER_ARG + GLUE_FIXED - 1
        projected[item.caller] = projected.get(item.caller, 0) + max(added, 0)
    return float(sum(s * s for s in projected.values()))


def perform_inline(
    program: Program,
    caller: Procedure,
    site_id: int,
    report: HLOReport,
    pass_number: int,
) -> bool:
    """Inline the direct call with ``site_id`` in ``caller`` (if present)."""
    located = None
    for block, index, instr in caller.call_sites():
        if instr.site_id == site_id and isinstance(instr, Call):
            located = (block, index, instr)
            break
    if located is None:
        return False
    block, index, instr = located
    callee = program.proc(instr.callee)
    if callee is None:
        return False

    # Snapshot before any mutation (a self-recursive inline would
    # otherwise copy a half-edited body).
    snapshot = BlockSnapshot(callee)
    ratio = transfer_ratio(block.profile_count, snapshot.entry_count)

    # Split the calling block around the call.
    cont_label = caller.new_label("cont")
    tail = BasicBlock(cont_label, block.instrs[index + 1:])
    tail.profile_count = block.profile_count
    caller.blocks[cont_label] = tail
    block.instrs = block.instrs[:index]

    caller_module = program.modules[caller.module]
    args = list(instr.args)
    # A varargs callee never reaches here (legality), so arity matches.
    landing = splice_body(
        program,
        caller,
        caller_module,
        snapshot,
        args,
        instr.dest,
        cont_label,
        ratio,
        on_promote=report.record_promotion,
    )
    block.instrs.append(Jump(landing))

    if callee.name != caller.name:
        subtract_moved_counts(callee, ratio)
    if callee.uses_dynamic_alloca:
        # Cannot happen through the legality screen, but keep the
        # invariant locally: dynamic allocas never move between frames.
        raise AssertionError("inlined a dynamic-alloca callee")

    report.record_inline(pass_number, caller.name, callee.name, site_id)
    return True
