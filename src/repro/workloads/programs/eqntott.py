"""``eqntott`` — boolean equations to truth tables (analog of 023.eqntott).

eqntott converts boolean equations into truth tables and spends its
time in expression evaluation over assignments plus a comparison sort
(the original is famously dominated by ``cmppt`` called through qsort's
function pointer).  This workload evaluates a random boolean DAG over
every assignment of V variables, then sorts the product terms with an
insertion sort that calls its comparator through a pointer — the
devirtualize-then-inline chain again, in sort form.

Inputs: [variable count, expression nodes, sort rounds].
"""

from ..suite import Workload, register

EXPR = """
// Boolean expression nodes over variables 0..nvars-1.
//   kind 0: var (val = index)   kind 1: AND   kind 2: OR
//   kind 3: XOR                 kind 4: NOT (left only)
int ekind[512];
int eleft[512];
int eright[512];
int eval_count = 0;
static int next_e = 0;

int enode(int kind, int l, int r) {
  int i = next_e;
  if (i >= 512) exit(3);
  next_e = next_e + 1;
  ekind[i] = kind;
  eleft[i] = l;
  eright[i] = r;
  return i;
}

int enode_count() { return next_e; }

int beval(int n, int assignment) {
  eval_count = eval_count + 1;
  int k = ekind[n];
  if (k == 0) return (assignment >> eleft[n]) & 1;
  if (k == 4) return 1 - beval(eleft[n], assignment);
  int l = beval(eleft[n], assignment);
  int r = beval(eright[n], assignment);
  if (k == 1) return l & r;
  if (k == 2) return l | r;
  return l ^ r;
}
"""

SORT = """
// Insertion sort through a comparator pointer (the qsort/cmppt shape).
int perm[1024];

int cmp_asc(int a, int b) { return a - b; }
int cmp_desc(int a, int b) { return b - a; }

int cmp_gray(int a, int b) {
  // Order by gray-code weight, then value: the "product term" compare.
  int ga = a ^ (a >> 1);
  int gb = b ^ (b >> 1);
  if (ga != gb) return ga - gb;
  return a - b;
}

void isort(int base, int n, int cmp) {
  int i;
  for (i = 1; i < n; i++) {
    int v = base[i];
    int j = i - 1;
    while (j >= 0 && cmp(base[j], v) > 0) {
      base[j + 1] = base[j];
      j = j - 1;
    }
    base[j + 1] = v;
  }
}

int sort_table(int values, int n, int which) {
  int f = &cmp_gray;
  if (which == 1) f = &cmp_asc;
  if (which == 2) f = &cmp_desc;
  isort(values, n, f);
  // Order checksum.
  int s = 0;
  int i;
  for (i = 0; i < n; i++) s = (s * 31 + values[i]) % 1000003;
  return s;
}
"""

MAIN = """
extern int enode(int kind, int l, int r);
extern int enode_count();
extern int beval(int n, int assignment);
extern int sort_table(int values, int n, int which);

int table[1024];

static int seed = 555;

static int rnd(int m) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) seed = -seed;
  return seed % m;
}

// Build a random DAG bottom-up: node i may reference any earlier node.
static int build(int nvars, int nnodes) {
  int i;
  int last = 0;
  for (i = 0; i < nvars; i++) last = enode(0, i, 0);
  for (i = 0; i < nnodes; i++) {
    int k = 1 + rnd(4);
    int l = rnd(enode_count());
    int r = rnd(enode_count());
    if (k == 4) last = enode(4, l, 0);
    else last = enode(k, l, r);
  }
  return last;
}

int main() {
  int nvars = input(0);
  int nnodes = input(1);
  int rounds = input(2);
  if (nvars > 10) nvars = 10;
  int root = build(nvars, nnodes);
  int limit = 1 << nvars;
  int a;
  for (a = 0; a < limit; a++) {
    table[a] = beval(root, a) * 512 + (a ^ (a >> 2));
  }
  int check = 0;
  int round;
  for (round = 0; round < rounds; round++) {
    int phase = round % 3;
    if (phase == 0) check = (check + sort_table(&table[0], limit, 0)) % 1000003;
    else if (phase == 1) check = (check + sort_table(&table[0], limit, 1)) % 1000003;
    else check = (check + sort_table(&table[0], limit, 2)) % 1000003;
  }
  print_int(check);
  print_int(limit);
  return check % 97;
}
"""

WORKLOAD = Workload(
    name="eqntott",
    spec_analog="023.eqntott (truth tables, qsort comparator)",
    description="boolean DAG evaluation plus comparator-pointer sorting",
    sources=(("expr", EXPR), ("sort", SORT), ("eqmain", MAIN)),
    train_inputs=((5, 20, 1),),
    ref_input=(7, 30, 3),
    suites=("92",),
)


def register_workload() -> None:
    register(WORKLOAD)
