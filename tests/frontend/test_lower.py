"""Lowering semantics, checked by executing the compiled IR."""

import pytest

from repro.frontend import CompileError, compile_program

from ..conftest import run_main


def outputs(source, inputs=()):
    result = run_main(source, inputs)
    return list(result.output)


def exit_code(source, inputs=()):
    return run_main(source, inputs).exit_code


class TestArithmetic:
    def test_basic_expression(self):
        assert outputs("int main() { print_int(2 + 3 * 4 - 1); return 0; }") == [13]

    def test_c_division_semantics(self):
        src = "int main() { print_int(-7 / 2); print_int(-7 % 2); return 0; }"
        assert outputs(src) == [-3, -1]

    def test_bitwise_and_shifts(self):
        src = "int main() { print_int((5 & 3) | (1 << 4)); print_int(-8 >> 1); return 0; }"
        assert outputs(src) == [17, -4]

    def test_unary_operators(self):
        src = "int main() { print_int(-5); print_int(!5); print_int(!0); print_int(~0); return 0; }"
        assert outputs(src) == [-5, 0, 1, -1]

    def test_comparisons(self):
        src = "int main() { print_int(3 < 5); print_int(5 <= 4); print_int(4 == 4); return 0; }"
        assert outputs(src) == [1, 0, 1]

    def test_char_literals(self):
        assert outputs("int main() { print_int('A'); return 0; }") == [65]


class TestControlFlow:
    def test_if_else(self):
        src = """
        int classify(int x) {
          if (x < 0) return -1;
          else if (x == 0) return 0;
          return 1;
        }
        int main() { print_int(classify(-5)); print_int(classify(0)); print_int(classify(9)); return 0; }
        """
        assert outputs(src) == [-1, 0, 1]

    def test_while_and_break_continue(self):
        src = """
        int main() {
          int i = 0; int sum = 0;
          while (1) {
            i = i + 1;
            if (i > 10) break;
            if (i % 2) continue;
            sum = sum + i;
          }
          print_int(sum);
          return 0;
        }
        """
        assert outputs(src) == [2 + 4 + 6 + 8 + 10]

    def test_do_while_runs_once(self):
        src = "int main() { int n = 0; do { n++; } while (0); print_int(n); return 0; }"
        assert outputs(src) == [1]

    def test_for_with_decl_scope(self):
        src = """
        int main() {
          int total = 0;
          for (int i = 0; i < 4; i++) total += i;
          int i = 100;
          print_int(total + i);
          return 0;
        }
        """
        assert outputs(src) == [106]

    def test_nested_loop_break_targets_inner(self):
        src = """
        int main() {
          int count = 0;
          for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 10; j++) {
              if (j == 2) break;
              count++;
            }
          }
          print_int(count);
          return 0;
        }
        """
        assert outputs(src) == [6]

    def test_short_circuit_effects(self):
        src = """
        int g = 0;
        int bump() { g = g + 1; return 1; }
        int main() {
          int a = 0 && bump();
          int b = 1 || bump();
          print_int(g); print_int(a); print_int(b);
          int c = 1 && bump();
          print_int(g); print_int(c);
          return 0;
        }
        """
        assert outputs(src) == [0, 0, 1, 1, 1]

    def test_ternary(self):
        src = "int main() { int x = 5; print_int(x > 3 ? x * 2 : -1); return 0; }"
        assert outputs(src) == [10]

    def test_missing_return_yields_zero(self):
        assert exit_code("int main() { int x = 5; }") == 0


class TestVariablesAndScope:
    def test_shadowing(self):
        src = """
        int x = 1;
        int main() {
          print_int(x);
          int x = 2;
          print_int(x);
          { int x = 3; print_int(x); }
          print_int(x);
          return 0;
        }
        """
        assert outputs(src) == [1, 2, 3, 2]

    def test_compound_assignment(self):
        src = """
        int main() {
          int a = 10;
          a += 5; print_int(a);
          a -= 3; print_int(a);
          a *= 2; print_int(a);
          a /= 4; print_int(a);
          a %= 4; print_int(a);
          a ^= 3; print_int(a);
          return 0;
        }
        """
        assert outputs(src) == [15, 12, 24, 6, 2, 1]

    def test_inc_dec_value_semantics(self):
        src = """
        int main() {
          int a = 5;
          print_int(a++); print_int(a);
          print_int(++a); print_int(a);
          print_int(a--); print_int(--a);
          return 0;
        }
        """
        assert outputs(src) == [5, 6, 7, 7, 7, 5]

    def test_uninitialized_local_is_zero(self):
        assert outputs("int main() { int x; print_int(x); return 0; }") == [0]


class TestMemory:
    def test_global_arrays(self):
        src = """
        int a[5] = {10, 20, 30};
        int main() {
          print_int(a[0] + a[1] + a[2] + a[3]);
          a[4] = 99;
          print_int(a[4]);
          return 0;
        }
        """
        assert outputs(src) == [60, 99]

    def test_local_arrays(self):
        src = """
        int main() {
          int buf[8];
          for (int i = 0; i < 8; i++) buf[i] = i * i;
          print_int(buf[7]);
          return 0;
        }
        """
        assert outputs(src) == [49]

    def test_pointers_and_deref(self):
        src = """
        int data[4] = {1, 2, 3, 4};
        int main() {
          int p = &data[1];
          print_int(*p);
          *p = 20;
          print_int(data[1]);
          print_int(p[1]);
          return 0;
        }
        """
        assert outputs(src) == [2, 20, 3]

    def test_global_scalar_address(self):
        src = """
        int g = 7;
        int main() {
          int p = &g;
          *p = 42;
          print_int(g);
          return 0;
        }
        """
        assert outputs(src) == [42]

    def test_array_inc_dec_through_memory(self):
        src = """
        int a[2] = {5, 5};
        int main() { a[0]++; --a[1]; print_int(a[0]); print_int(a[1]); return 0; }
        """
        assert outputs(src) == [6, 4]

    def test_dynamic_alloca(self):
        src = """
        int main() {
          int n = input(0);
          int buf = alloca(n);
          for (int i = 0; i < n; i++) buf[i] = i + 1;
          int s = 0;
          for (int i = 0; i < n; i++) s += buf[i];
          print_int(s);
          return 0;
        }
        """
        assert outputs(src, [5]) == [15]

    def test_address_of_register_local_rejected(self):
        with pytest.raises(CompileError):
            run_main("int main() { int x = 1; int p = &x; return 0; }")


class TestFunctions:
    def test_recursion(self):
        src = """
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main() { print_int(fact(6)); return 0; }
        """
        assert outputs(src) == [720]

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { print_int(is_even(10)); print_int(is_odd(7)); return 0; }
        """
        assert outputs(src) == [1, 1]

    def test_function_pointers(self):
        src = """
        int dbl(int x) { return x * 2; }
        int neg(int x) { return -x; }
        int apply(int f, int x) { return f(x); }
        int main() {
          print_int(apply(&dbl, 21));
          print_int(apply(&neg, 5));
          int table[2];
          table[0] = &dbl; table[1] = &neg;
          print_int(apply(table[1], 8));
          return 0;
        }
        """
        assert outputs(src) == [42, -5, -8]

    def test_function_name_decays_to_pointer(self):
        src = """
        int inc(int x) { return x + 1; }
        int apply(int f, int x) { return f(x); }
        int main() { print_int(apply(inc, 1)); return 0; }
        """
        assert outputs(src) == [2]

    def test_varargs(self):
        src = """
        int total(int n, ...) {
          int sum = n;
          for (int i = 0; i < va_count(); i++) sum += va_arg(i);
          return sum;
        }
        int main() {
          print_int(total(1));
          print_int(total(1, 2, 3));
          return 0;
        }
        """
        assert outputs(src) == [1, 6]

    def test_void_function(self):
        src = """
        int g = 0;
        void set(int v) { g = v; return; }
        int main() { set(9); print_int(g); return 0; }
        """
        assert outputs(src) == [9]

    def test_void_value_use_rejected(self):
        with pytest.raises(CompileError):
            run_main("void f() { } int main() { int x = f(); return 0; }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(CompileError):
            run_main("int f(int a) { return a; } int main() { return f(1, 2); }")


class TestFloats:
    def test_float_arithmetic(self):
        src = """
        int main() {
          float f = 1.5;
          f = f * 2.0 + 0.25;
          print_flt(f);
          return 0;
        }
        """
        assert outputs(src) == [3.25]

    def test_implicit_conversions(self):
        src = """
        int main() {
          float f = 3;        // int -> float
          f = f + 1;          // mixed promotes
          int i = f * 2.0;    // float -> int truncates
          print_flt(f); print_int(i);
          return 0;
        }
        """
        assert outputs(src) == [4.0, 8]

    def test_float_condition(self):
        src = """
        int main() {
          float f = 0.5;
          if (f) print_int(1);
          if (!f) print_int(2); else print_int(3);
          while (f) { f = f - 0.5; }
          print_flt(f);
          return 0;
        }
        """
        assert outputs(src) == [1, 3, 0.0]

    def test_float_return_conversion(self):
        src = """
        float half(int x) { return x / 2; }
        int main() { print_flt(half(7)); return 0; }
        """
        assert outputs(src) == [3.0]

    def test_int_op_on_float_rejected(self):
        with pytest.raises(CompileError):
            run_main("int main() { float f = 1.0; int x = f % 2.0; return 0; }")


class TestModules:
    def test_cross_module_statics_independent(self):
        mod_a = "static int secret() { return 1; } int get_a() { return secret(); }"
        mod_b = "static int secret() { return 2; } int get_b() { return secret(); }"
        main = """
        extern int get_a(); extern int get_b();
        int main() { print_int(get_a() * 10 + get_b()); return 0; }
        """
        from ..conftest import compile_and_run

        result = compile_and_run([("a", mod_a), ("b", mod_b), ("main", main)])
        assert result.output == [12]

    def test_unresolved_extern_rejected(self):
        with pytest.raises(CompileError):
            compile_program([("main", "extern int nope(); int main() { return nope(); }")])

    def test_missing_main_rejected(self):
        with pytest.raises(CompileError):
            compile_program([("lib", "int f() { return 0; }")])

    def test_signature_mismatch_across_modules(self):
        with pytest.raises(CompileError):
            compile_program(
                [
                    ("lib", "int f(int a, int b) { return a + b; }"),
                    ("main", "extern int f(int a); int main() { return f(1); }"),
                ]
            )

    def test_cross_module_globals(self):
        from ..conftest import compile_and_run

        result = compile_and_run(
            [
                ("data", "int shared[4] = {1, 2, 3, 4};"),
                (
                    "main",
                    "extern int shared[4];\n"
                    "int main() { print_int(shared[0] + shared[3]); return 0; }",
                ),
            ]
        )
        assert result.output == [5]
