"""``perl`` — a pattern matcher + hash interpreter (analog of 134.perl).

Perl's SPEC profile is string/pattern work plus associative arrays.
This workload matches glob-style patterns (``*``, ``?``, literals) over
synthetic strings stored as word arrays, tallying hits in a hash table
keyed by (pattern, string prefix) — recursion in the matcher, tiny
accessors on the hash, and a dispatch on pattern-character kind.

Inputs: [string count, string length, pattern set selector].
"""

from ..suite import Workload, register

STRINGS = """
// String pool: fixed-width rows of character codes.
int pool[4096];
int pool_width = 16;
static int pool_rows = 0;

void pool_set_width(int w) {
  if (w >= 4 && w <= 32) pool_width = w;
}

int pool_add(int seed) {
  int row = pool_rows;
  if ((row + 1) * pool_width > 4096) return -1;
  int i;
  int state = seed;
  for (i = 0; i < pool_width; i++) {
    state = (state * 1103515245 + 12345) % 2147483648;
    if (state < 0) state = -state;
    // Characters from a small alphabet make '*' interesting.
    pool[row * pool_width + i] = 97 + state % 5;
  }
  pool_rows = pool_rows + 1;
  return row;
}

int pool_count() { return pool_rows; }
int char_at(int row, int i) {
  if (i >= pool_width) return 0;
  return pool[row * pool_width + i];
}
int str_len() { return pool_width; }
"""

MATCH = """
extern int char_at(int row, int i);
extern int str_len();

// Patterns live in small global arrays: code 0 ends, -1 is '*',
// -2 is '?', positive values are literal character codes.
int pats[256];
int pat_base[16];
static int pat_count = 0;
static int pat_at = 0;

int pat_begin() {
  pat_base[pat_count & 15] = pat_at;
  return pat_count;
}

void pat_push(int code) {
  if (pat_at < 255) {
    pats[pat_at] = code;
    pat_at = pat_at + 1;
  }
}

void pat_end() {
  pat_push(0);
  pat_count = pat_count + 1;
}

// Recursive glob matcher: the hot, self-recursive routine.
int match_here(int p, int row, int s) {
  int code = pats[p];
  if (code == 0) return s >= str_len() || char_at(row, s) == 0;
  if (code == -1) {
    // '*': try every split, shortest first.
    int k;
    for (k = s; k <= str_len(); k++) {
      if (match_here(p + 1, row, k)) return 1;
    }
    return 0;
  }
  if (s >= str_len()) return 0;
  if (code == -2) return match_here(p + 1, row, s + 1);
  if (char_at(row, s) == code) return match_here(p + 1, row, s + 1);
  return 0;
}

int match(int pattern, int row) {
  return match_here(pat_base[pattern & 15], row, 0);
}
"""

HASH = """
// The associative array: counts per (pattern, first char) key.
int h_key[256];
int h_val[256];

void hash_clear() {
  int i;
  for (i = 0; i < 256; i++) h_key[i] = -1;
}

static int slot(int key) { return (key * 40503) & 255; }

void hash_bump(int key) {
  int h = slot(key);
  int probes = 0;
  while (h_key[h] != -1 && h_key[h] != key && probes < 256) {
    h = (h + 1) & 255;
    probes = probes + 1;
  }
  if (h_key[h] == key) {
    h_val[h] = h_val[h] + 1;
    return;
  }
  if (probes < 256) {
    h_key[h] = key;
    h_val[h] = 1;
  }
}

int hash_get(int key) {
  int h = slot(key);
  int probes = 0;
  while (h_key[h] != -1 && probes < 256) {
    if (h_key[h] == key) return h_val[h];
    h = (h + 1) & 255;
    probes = probes + 1;
  }
  return 0;
}

int hash_sum() {
  int s = 0;
  int i;
  for (i = 0; i < 256; i++) {
    if (h_key[i] != -1) s = (s + h_key[i] * h_val[i]) % 1000003;
  }
  return s;
}
"""

MAIN = """
extern void pool_set_width(int w);
extern int pool_add(int seed);
extern int pool_count();
extern int char_at(int row, int i);
extern int pat_begin();
extern void pat_push(int code);
extern void pat_end();
extern int match(int pattern, int row);
extern void hash_clear();
extern void hash_bump(int key);
extern int hash_sum();

static void build_patterns(int selector) {
  // Pattern 0: a*b
  pat_begin(); pat_push(97); pat_push(-1); pat_push(98); pat_end();
  // Pattern 1: ?c*
  pat_begin(); pat_push(-2); pat_push(99); pat_push(-1); pat_end();
  // Pattern 2: *de?a*
  pat_begin(); pat_push(-1); pat_push(100); pat_push(101);
  pat_push(-2); pat_push(97); pat_push(-1); pat_end();
  if (selector) {
    // Pattern 3: literal run (rarely matches: the cold pattern).
    pat_begin(); pat_push(97); pat_push(97); pat_push(97);
    pat_push(97); pat_end();
  }
}

int main() {
  int nstrings = input(0);
  int width = input(1);
  int selector = input(2);
  pool_set_width(width);
  hash_clear();
  build_patterns(selector);
  int npats = 3;
  if (selector) npats = 4;
  int i;
  for (i = 0; i < nstrings; i++) pool_add(i * 7 + 13);
  int hits = 0;
  int p;
  for (p = 0; p < npats; p++) {
    for (i = 0; i < pool_count(); i++) {
      if (match(p, i)) {
        hits = hits + 1;
        hash_bump(p * 256 + char_at(i, 0));
      }
    }
  }
  print_int(hits);
  print_int(hash_sum());
  return hits % 97;
}
"""

WORKLOAD = Workload(
    name="perl",
    spec_analog="134.perl (pattern matching + hashes)",
    description="recursive glob matching over a string pool with hash tallies",
    sources=(("strings", STRINGS), ("matcher", MATCH), ("phash", HASH), ("pmain", MAIN)),
    train_inputs=((40, 10, 0),),
    ref_input=(150, 14, 1),
    suites=("95",),
)


def register_workload() -> None:
    register(WORKLOAD)
