"""End-to-end fleet loop: the full seeded fault matrix, convergence, invariants."""

from __future__ import annotations

import pytest

from repro.fleet import FleetConfig, FleetLoop, jaccard
from repro.obs import BuildObserver, MetricsRegistry
from repro.resilience import SHARD_FAULTS, FaultInjector
from repro.workloads.suite import get_workload

from .conftest import REF_INPUT, SOURCES, TRAIN_INPUTS

# The canonical seeded fault matrix (also used by bench/smoke and the
# CI fleet-smoke job): every transit fault at 25%, a torn WAL tail, a
# mid-swap crash, an injected canary trap on the first rebuild, and a
# flapping instance.
def full_matrix_injector(seed=7):
    return FaultInjector(
        seed=seed,
        shard_faults=SHARD_FAULTS,
        shard_fault_rate=0.25,
        wal_tail_rounds=(3,),
        kill_mid_swap_epochs=(1,),
        canary_trap_epochs=(1,),
        flap_sources=("inst0",),
    )


def test_jaccard_edges():
    assert jaccard(set(), set()) == 1.0
    assert jaccard({1}, set()) == 0.0
    assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)


def test_faultless_loop_converges_and_swaps(sources, tmp_path):
    loop = FleetLoop(
        sources, TRAIN_INPUTS, REF_INPUT,
        config=FleetConfig(rounds=4, seed=1),
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    assert report.converged and report.convergence_jaccard == 1.0
    assert report.swaps >= 1 and report.rollbacks == 0
    assert report.final_build > 0
    assert report.shards_sent > 0 and report.shards_accepted > 0


def test_full_fault_matrix_on_synthetic_program(sources, tmp_path):
    injector = full_matrix_injector()
    loop = FleetLoop(
        sources, TRAIN_INPUTS, REF_INPUT,
        config=FleetConfig(rounds=10, seed=7),
        injector=injector,
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    # The loop survived everything, rolled back the sabotaged build,
    # and still landed on the exact-profile decisions.
    assert report.convergence_jaccard == 1.0
    assert report.rollbacks >= 1 and report.swaps >= 1
    assert report.quarantined_epochs
    assert not set(report.served_builds) & set(report.rolled_back)
    assert report.wal_truncations >= 1
    assert report.collector_restarts >= 1
    assert report.instance_restarts >= 1
    assert report.shards_retried > 0
    assert injector.injected  # the plan actually fired


def test_full_fault_matrix_is_deterministic(sources, tmp_path):
    def run(tag):
        loop = FleetLoop(
            sources, TRAIN_INPUTS, REF_INPUT,
            config=FleetConfig(rounds=6, seed=7),
            injector=full_matrix_injector(),
            spool_path=str(tmp_path / "{}.wal".format(tag)),
        )
        report = loop.run()
        return (
            report.rebuilds, report.rollbacks, report.swaps,
            report.final_build, report.shards_sent, report.history,
        )

    assert run("a") == run("b")


def test_min_instances_floor_replicates_chunks(sources, tmp_path):
    # One training chunk, but a credible fleet: the floor cycles the
    # chunk across replicas so single-input workloads are not a
    # single point of failure.
    loop = FleetLoop(
        sources, [TRAIN_INPUTS[0]], REF_INPUT,
        config=FleetConfig(rounds=3, seed=2, min_instances=3),
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    assert report.converged
    assert report.shards_sent >= 3 * report.rounds_run - 2  # 3 replicas ship


def test_rolled_back_build_never_served_under_canary_trap(sources, tmp_path):
    injector = FaultInjector(seed=3, canary_trap_epochs=(1,))
    loop = FleetLoop(
        sources, TRAIN_INPUTS, REF_INPUT,
        config=FleetConfig(rounds=8, seed=3),
        injector=injector,
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    assert report.rollbacks == 1
    assert report.rolled_back == [1]
    assert 1 not in report.served_builds
    assert report.convergence_jaccard == 1.0  # recovered after quarantine


def test_report_to_dict_and_metrics_are_numeric(sources, tmp_path):
    from repro.obs.validate import validate_metrics

    metrics = MetricsRegistry()
    loop = FleetLoop(
        sources, TRAIN_INPUTS, REF_INPUT,
        config=FleetConfig(rounds=3, seed=1),
        injector=full_matrix_injector(),
        observer=BuildObserver(metrics=metrics),
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    payload = report.to_dict()
    assert payload["shards"]["sent"] == report.shards_sent
    assert payload["wal"]["appended"] == report.wal_appended
    assert isinstance(payload["convergence_jaccard"], float)
    snapshot = metrics.to_dict()
    problems = validate_metrics(snapshot)
    assert problems == []
    fleet_names = [
        name
        for section in snapshot.values()
        if isinstance(section, dict)
        for name in section
        if str(name).startswith("fleet.")
    ]
    assert "fleet.shards_sent" in fleet_names
    assert "fleet.convergence_jaccard" in fleet_names


def test_validate_bench_requires_fleet_section():
    from repro.obs.validate import validate_bench

    problems = validate_bench({"schema": 4})
    assert any("missing object 'fleet'" in p for p in problems)
    bad_jaccard = {"fleet": {
        "rounds": 10, "seed": 7, "fault_rate": 0.25,
        "min_jaccard": 1.0, "mean_jaccard": 1.0,
        "workloads": {"w": {"jaccard": 1.5, "rebuilds": 1, "rollbacks": 0,
                            "swaps": 1, "quarantined_epochs": 0,
                            "served_rolled_back": 0}},
    }}
    assert any(
        "jaccard 1.5 outside" in p for p in validate_bench(bad_jaccard)
    )


def test_wall_budget_stops_early(sources, tmp_path):
    loop = FleetLoop(
        sources, TRAIN_INPUTS, REF_INPUT,
        config=FleetConfig(rounds=50, seed=1, max_wall_s=0.0,
                           measure_convergence=False),
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    assert report.stopped_early
    assert report.rounds_run < 50


@pytest.mark.parametrize("name", ["compress"])
def test_canonical_matrix_on_workload(name, tmp_path):
    """The CI gate's scenario, on the cheapest real workload."""
    workload = get_workload(name)
    loop = FleetLoop(
        list(workload.sources), workload.train_inputs, workload.ref_input,
        config=FleetConfig(rounds=10, seed=7),
        injector=full_matrix_injector(),
        spool_path=str(tmp_path / "shards.wal"),
    )
    report = loop.run()
    assert report.convergence_jaccard == 1.0
    assert report.rollbacks >= 1
    assert not set(report.served_builds) & set(report.rolled_back)
