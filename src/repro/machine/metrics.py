"""Machine-level metrics — the eight panels of Figure 7."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class MachineMetrics:
    """Counts and rates from one simulated run."""

    cycles: float = 0.0
    instructions: int = 0  # retired, including call-convention overhead
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    code_bytes: int = 0
    ir_steps: int = 0  # IR instructions executed (excludes overhead)
    calls: int = 0
    spills: int = 0  # register-pressure memory operations

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def icache_miss_rate(self) -> float:
        return self.icache_misses / self.icache_accesses if self.icache_accesses else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        return self.dcache_misses / self.dcache_accesses if self.dcache_accesses else 0.0

    @property
    def branch_miss_rate(self) -> float:
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    def relative_to(self, base: "MachineMetrics") -> Dict[str, float]:
        """The Figure 7 row: quantities scaled to a baseline run, plus
        the rates that the figure reports in absolute terms."""

        def ratio(a: float, b: float) -> float:
            return a / b if b else 0.0

        return {
            "relative_cycles": ratio(self.cycles, base.cycles),
            "cpi": self.cpi,
            "relative_icache_accesses": ratio(self.icache_accesses, base.icache_accesses),
            "icache_miss_rate": self.icache_miss_rate,
            "relative_dcache_accesses": ratio(self.dcache_accesses, base.dcache_accesses),
            "dcache_miss_rate": self.dcache_miss_rate,
            "relative_branches": ratio(self.branches, base.branches),
            "branch_miss_rate": self.branch_miss_rate,
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi": self.cpi,
            "icache_accesses": self.icache_accesses,
            "icache_misses": self.icache_misses,
            "icache_miss_rate": self.icache_miss_rate,
            "dcache_accesses": self.dcache_accesses,
            "dcache_misses": self.dcache_misses,
            "dcache_miss_rate": self.dcache_miss_rate,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "branch_miss_rate": self.branch_miss_rate,
            "code_bytes": self.code_bytes,
        }
