"""Code layout: assign every IR instruction a code address.

Procedures are laid out contiguously, module by module, in program
order; each IR instruction occupies one 4-byte slot.  The layout is the
machine model's bridge from interpreter events (procedure, block,
index) to instruction-cache addresses — and it is where inlining's code
expansion becomes visible as a larger I-cache footprint.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.program import Program

CODE_BASE = 0x10000
INSTR_BYTES = 4


class CodeLayout:
    """Maps (procedure, block label) to the block's base code address."""

    def __init__(self, program: Program):
        self.block_addrs: Dict[Tuple[str, str], int] = {}
        self.proc_addrs: Dict[str, int] = {}
        self.proc_sizes: Dict[str, int] = {}
        addr = CODE_BASE
        for mod in program.modules.values():
            for proc in mod.procs.values():
                self.proc_addrs[proc.name] = addr
                start = addr
                # Entry block first, then remaining blocks in RPO.
                ordered = proc.rpo_labels()
                seen = set(ordered)
                ordered += [l for l in proc.blocks if l not in seen]
                for label in ordered:
                    self.block_addrs[(proc.name, label)] = addr
                    addr += len(proc.blocks[label]) * INSTR_BYTES
                self.proc_sizes[proc.name] = addr - start
        self.code_bytes = addr - CODE_BASE

    def instr_addr(self, proc_name: str, label: str, index: int) -> int:
        base = self.block_addrs.get((proc_name, label))
        if base is None:
            # A block created after layout (should not happen: layout is
            # taken on the final image); fall back to the procedure base.
            return self.proc_addrs.get(proc_name, CODE_BASE)
        return base + index * INSTR_BYTES
