"""The request scheduler: dedupe, bounded queue, timeouts, drain.

Requests arrive on the asyncio event loop; builds are CPU-bound and
run on a small thread pool (each build's module compiles still fan out
over the shared ``parallel_map`` worker-process pool).  Between the
two sits this scheduler, which owns three policies:

**In-flight dedupe.**  Two requests whose :meth:`BuildRequest.key`
collide would produce byte-identical results, so the second joins the
first's future instead of building again (``serve.dedupe_hits``).
Waiters await through ``asyncio.shield``, so one waiter's
cancellation — a client hanging up mid-build — never cancels the
shared task and never poisons the result the other waiters get.

**Load shedding.**  At most ``max_pending`` distinct requests may be
queued or running; one more gets an immediate :class:`BusyError`
(answered as a 429-style ``busy`` reply) instead of unbounded queue
latency.  Deduped joins don't count — they add no work.

**Per-request deadline.**  ``timeout`` seconds after submission a
waiter gets :class:`RequestTimeoutError`.  The underlying build keeps
running (other waiters may still want it — and its result still lands
in the warm LRU); only the waiter gives up.

All mutable state lives on the event-loop thread; only the build thunk
itself runs on worker threads.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, Dict, Optional

from ..obs import NULL_OBSERVER
from ..obs import names


class BusyError(Exception):
    """The bounded queue is full; the request was shed, not run."""


class RequestTimeoutError(Exception):
    """The per-request deadline passed before the build finished."""


class RequestScheduler:
    """Dedupe + shed + deadline policy over a thread-pool executor."""

    def __init__(
        self,
        concurrency: int = 2,
        max_pending: int = 32,
        default_timeout: Optional[float] = None,
        observer=NULL_OBSERVER,
    ):
        self.concurrency = max(1, concurrency)
        self.max_pending = max(1, max_pending)
        self.default_timeout = default_timeout
        self.observer = observer
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="repro-serve"
        )
        self._inflight: Dict[str, asyncio.Task] = {}
        self._pending = 0
        # Counters (event-loop thread only, hence exact).
        self.started = 0
        self.completed = 0
        self.dedupe_hits = 0
        self.shed = 0
        self.timeouts = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Distinct requests queued or running right now."""
        return self._pending

    def counters(self) -> dict:
        return {
            "started": self.started,
            "completed": self.completed,
            "dedupe_hits": self.dedupe_hits,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "pending": self._pending,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(
        self,
        key: str,
        thunk: Callable[[], object],
        timeout: Optional[float] = None,
    ) -> object:
        """Run ``thunk`` (or join the identical in-flight run) for ``key``.

        Raises :class:`BusyError` when shed, :class:`RequestTimeoutError`
        past the deadline, and re-raises whatever the thunk raised.
        """
        metrics = self.observer.metrics
        task = self._inflight.get(key)
        if task is not None:
            self.dedupe_hits += 1
            metrics.count(names.SERVE_DEDUPE_HITS)
        else:
            if self._pending >= self.max_pending:
                self.shed += 1
                metrics.count(names.SERVE_SHED)
                raise BusyError(
                    "{} request(s) already pending (limit {})".format(
                        self._pending, self.max_pending
                    )
                )
            self._pending += 1
            self.started += 1
            task = asyncio.ensure_future(self._run(key, thunk))
            self._inflight[key] = task
        if timeout is None:
            timeout = self.default_timeout
        try:
            if timeout is not None:
                return await asyncio.wait_for(asyncio.shield(task), timeout)
            return await asyncio.shield(task)
        except asyncio.TimeoutError:
            self.timeouts += 1
            metrics.count(names.SERVE_TIMEOUTS)
            raise RequestTimeoutError(
                "request exceeded its {:.1f}s deadline".format(timeout)
            ) from None
        except asyncio.CancelledError:
            # The *waiter* was cancelled (client gone); the shared task
            # keeps running for everyone else.
            self.cancelled += 1
            metrics.count(names.SERVE_CANCELLED)
            raise

    async def _run(self, key: str, thunk: Callable[[], object]) -> object:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._executor, thunk)
        finally:
            self._pending -= 1
            self.completed += 1
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def drain(self) -> int:
        """Wait for every in-flight request to finish; returns how many."""
        tasks = list(self._inflight.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        return len(tasks)

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def submit_nowait(
    scheduler: RequestScheduler,
    key: str,
    thunk: Callable[[], object],
    timeout: Optional[float] = None,
) -> Awaitable:
    """``submit`` as a task — for callers juggling several requests."""
    return asyncio.ensure_future(scheduler.submit(key, thunk, timeout))
