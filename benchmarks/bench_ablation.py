"""Ablations of HLO's design choices (DESIGN.md's ablation candidates).

Not a table in the paper, but the design decisions its Section 2
defends: multiple passes over a single pass, the colder-than-entry
penalty, clone groups, the cross-pass clone database, re-optimizing
transformed routines between passes, and profile feedback over static
heuristics.  Each row disables one choice and reports run time and
transform counts on two workloads.
"""

from __future__ import annotations

from repro.bench import ablation_rows, format_table


def test_hlo_design_ablations(benchmark, archive):
    headers, rows = benchmark.pedantic(
        ablation_rows, kwargs={"workloads": ("m88ksim", "li")}, rounds=1, iterations=1
    )
    text = format_table(headers, rows, "Ablations (cp scope, budget 400)")
    archive("ablation", text)

    table = {(r[0], r[1]): dict(zip(headers, r)) for r in rows}
    for name in ("m88ksim", "li"):
        default = table[(name, "default")]
        # Multi-pass matters: a single pass performs fewer transforms
        # and never beats the default meaningfully.
        single = table[(name, "single-pass")]
        assert (
            single["inlines"] + single["clone_repls"]
            <= default["inlines"] + default["clone_repls"]
        )
        assert single["run_cycles"] >= default["run_cycles"] * 0.98
        # Re-optimizing between passes matters (Figures 3/4's
        # "optimize ... and recalibrate").
        assert table[(name, "no-reoptimize")]["run_cycles"] >= default["run_cycles"] * 0.98
    # Profile feedback pays on the dispatch-heavy simulator.
    assert (
        table[("m88ksim", "static-heuristics")]["run_cycles"]
        > table[("m88ksim", "default")]["run_cycles"]
    )

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]
