"""Interprocedural side-effect analysis.

Section 3.1's 072.sc anecdote: a special curses library whose calls do
nothing is eliminated before inlining "because HLO's interprocedural
analysis determines that they have no side effect."  This module
reproduces that analysis.

A procedure is *removable at an unused call site* when executing it can
have no observable effect and it provably terminates.  We use a simple
but sound recipe:

- no stores to memory,
- no calls to side-effecting builtins (printing, exit, heap growth),
- no indirect calls and no calls to externs,
- only calls to procedures that are themselves removable,
- an acyclic CFG and no recursion (termination proof).

The analysis runs bottom-up over the call-graph SCC condensation;
procedures in cyclic SCCs are conservatively not removable.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.instructions import Call, ICall, Store
from ..ir.procedure import Procedure
from ..ir.program import Program
from .callgraph import CallGraph
from .dominators import dominates, immediate_dominators

# Builtins whose execution is unobservable (pure reads of run state).
PURE_BUILTINS = frozenset(["input", "input_len", "abs", "va_arg", "va_count"])


def _cfg_acyclic(proc: Procedure) -> bool:
    idom = immediate_dominators(proc)
    for label in idom:
        for succ in proc.blocks[label].successors():
            if succ in idom and dominates(idom, succ, label):
                return False
    return True


def side_effect_free_procs(program: Program, graph: CallGraph) -> Set[str]:
    """Names of procedures that are removable when their result is unused."""
    free: Dict[str, bool] = {}

    for name in graph.bottom_up_order():
        proc = program.proc(name)
        if proc is None:
            continue
        free[name] = _proc_is_free(program, graph, proc, free)
    return {name for name, ok in free.items() if ok}


def _proc_is_free(
    program: Program, graph: CallGraph, proc: Procedure, free: Dict[str, bool]
) -> bool:
    if graph.in_cycle(proc.name):
        return False
    if not _cfg_acyclic(proc):
        return False
    for instr in proc.instructions():
        if isinstance(instr, Store):
            return False
        if isinstance(instr, ICall):
            return False
        if isinstance(instr, Call):
            callee = instr.callee
            if program.is_defined(callee):
                if not free.get(callee, False):
                    return False
            elif callee not in PURE_BUILTINS:
                return False
    return True
