"""Shared fixtures for the experiment benchmarks.

Each ``bench_*`` file regenerates one table/figure from the paper.  The
printed tables are also archived under ``benchmarks/results/`` so a
benchmark run leaves the full experiment record on disk, and the row
data is attached to pytest-benchmark's ``extra_info`` for JSON export.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import Lab

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def lab() -> Lab:
    """One shared Lab so builds/runs are reused across benchmarks."""
    return Lab()


@pytest.fixture(scope="session")
def archive():
    """Writer that archives a rendered table under benchmarks/results/."""

    def write(name: str, text: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + text)
        return path

    return write
