"""Recursive-descent parser for minic.

Produces a :class:`~repro.frontend.ast.TranslationUnit`.  The grammar is
a C subset: declarations, the usual statement forms, and the full
expression precedence ladder with assignment, ternary, short-circuit
logicals, and C operator precedence.  Pointers are word-granular, so
``*`` in a declarator is accepted and ignored (all scalars are one
word); declared pointer depth does not change the type.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..ir.types import Type
from . import ast
from .errors import CompileError
from .lexer import Token, tokenize

_QUALIFIERS = ("static", "extern", "inline", "noinline", "noclone", "reassoc")
_TYPES = {"int": Type.INT, "float": Type.FLT, "void": Type.VOID}
_ASSIGN_OPS = {
    "=": "",
    "+=": "add",
    "-=": "sub",
    "*=": "mul",
    "/=": "div",
    "%=": "mod",
    "&=": "and",
    "|=": "or",
    "^=": "xor",
    "<<=": "shl",
    ">>=": "shr",
}


class Parser:
    def __init__(self, tokens: List[Token], module: str = ""):
        self.tokens = tokens
        self.pos = 0
        self.module = module

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind in ("punct", "kw") and tok.text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            tok = self.peek()
            raise CompileError(
                "expected {!r}, found {!r}".format(text, tok.text or "<eof>"),
                tok.line,
                self.module,
            )
        return self.advance()

    def expect_name(self) -> Token:
        tok = self.peek()
        if tok.kind != "name":
            raise CompileError(
                "expected identifier, found {!r}".format(tok.text or "<eof>"),
                tok.line,
                self.module,
            )
        return self.advance()

    def error(self, message: str) -> CompileError:
        return CompileError(message, self.peek().line, self.module)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind != "eof":
            unit.decls.extend(self.parse_topdecl())
        return unit

    def parse_topdecl(self) -> List[Union[ast.FuncDef, ast.GlobalDecl]]:
        line = self.peek().line
        quals: List[str] = []
        while self.peek().kind == "kw" and self.peek().text in _QUALIFIERS:
            quals.append(self.advance().text)
        base = self.parse_type()
        self._skip_stars()
        name_tok = self.expect_name()

        if self.check("("):
            func = self.parse_func_rest(name_tok.text, base, tuple(quals), line)
            return [func]

        # Global variable declarator list.
        if base is Type.VOID:
            raise CompileError("variable of type void", line, self.module)
        decls: List[ast.GlobalDecl] = []
        is_static = "static" in quals
        is_extern = "extern" in quals
        bad = [q for q in quals if q not in ("static", "extern")]
        if bad:
            raise CompileError(
                "qualifier {!r} is not valid on a variable".format(bad[0]),
                line,
                self.module,
            )
        while True:
            decls.append(self.parse_global_declarator(name_tok.text, base, is_static, is_extern, line))
            if not self.accept(","):
                break
            self._skip_stars()
            name_tok = self.expect_name()
        self.expect(";")
        return decls

    def parse_type(self) -> Type:
        tok = self.peek()
        if tok.kind == "kw" and tok.text in _TYPES:
            self.advance()
            return _TYPES[tok.text]
        raise self.error("expected type, found {!r}".format(tok.text or "<eof>"))

    def _skip_stars(self) -> int:
        depth = 0
        while self.accept("*"):
            depth += 1
        return depth

    def parse_global_declarator(
        self, name: str, base: Type, static: bool, extern: bool, line: int
    ) -> ast.GlobalDecl:
        array_size: Optional[int] = None
        if self.accept("["):
            array_size = self.parse_const_int()
            self.expect("]")
        init: List[Union[int, float]] = []
        if self.accept("="):
            if self.accept("{"):
                while not self.check("}"):
                    init.append(self.parse_const_value(base))
                    if not self.accept(","):
                        break
                self.expect("}")
                if array_size is None:
                    array_size = len(init)
            else:
                init.append(self.parse_const_value(base))
        if array_size is not None and len(init) > array_size:
            raise CompileError(
                "too many initializers for {}[{}]".format(name, array_size),
                line,
                self.module,
            )
        return ast.GlobalDecl(name, base, array_size, init, static, extern, line)

    def parse_const_int(self) -> int:
        negative = self.accept("-")
        tok = self.peek()
        if tok.kind != "int":
            raise self.error("expected integer constant")
        self.advance()
        value = int(tok.text, 0)
        return -value if negative else value

    def parse_const_value(self, base: Type) -> Union[int, float]:
        negative = self.accept("-")
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            value: Union[int, float] = int(tok.text, 0)
        elif tok.kind == "float":
            self.advance()
            value = float(tok.text)
        else:
            raise self.error("expected numeric constant")
        if base is Type.FLT:
            value = float(value)
        elif isinstance(value, float):
            raise self.error("float initializer for int variable")
        return -value if negative else value

    def parse_func_rest(
        self, name: str, ret: Type, quals: Tuple[str, ...], line: int
    ) -> ast.FuncDef:
        self.expect("(")
        params: List[ast.Param] = []
        varargs = False
        if self.check("void") and self.peek(1).text == ")":
            self.advance()
        elif not self.check(")"):
            while True:
                if self.accept("..."):
                    varargs = True
                    break
                ptype = self.parse_type()
                self._skip_stars()
                if ptype is Type.VOID:
                    raise self.error("parameter of type void")
                ptok = self.expect_name()
                params.append(ast.Param(ptok.text, ptype, ptok.line))
                if not self.accept(","):
                    break
        self.expect(")")
        if self.accept(";"):
            return ast.FuncDef(name, ret, params, varargs, None, quals, line)
        body = self.parse_block()
        return ast.FuncDef(name, ret, params, varargs, body, quals, line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("{")
        stmts: List[ast.Stmt] = []
        while not self.check("}"):
            if self.peek().kind == "eof":
                raise CompileError("unterminated block", start.line, self.module)
            stmts.append(self.parse_stmt())
        self.expect("}")
        return ast.Block(start.line, stmts)

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "punct" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "kw":
            if tok.text in _TYPES:
                return self.parse_local_decl()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "do":
                return self.parse_do_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "switch":
                return self.parse_switch()
            if tok.text == "return":
                self.advance()
                value = None if self.check(";") else self.parse_expr()
                self.expect(";")
                return ast.Return(tok.line, value)
            if tok.text == "break":
                self.advance()
                self.expect(";")
                return ast.Break(tok.line)
            if tok.text == "continue":
                self.advance()
                self.expect(";")
                return ast.Continue(tok.line)
        if self.accept(";"):
            return ast.Block(tok.line, [])
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(tok.line, expr)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.peek().line
        base = self.parse_type()
        if base is Type.VOID:
            raise self.error("variable of type void")
        decls: List[ast.Stmt] = []
        while True:
            self._skip_stars()
            name_tok = self.expect_name()
            array_size: Optional[int] = None
            init: Optional[ast.Expr] = None
            if self.accept("["):
                array_size = self.parse_const_int()
                self.expect("]")
            if self.accept("="):
                init = self.parse_assignment()
            decls.append(ast.LocalDecl(line, name_tok.text, base, array_size, init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line, decls)

    def parse_if(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_stmt()
        else_body = self.parse_stmt() if self.accept("else") else None
        return ast.If(tok.line, cond, then_body, else_body)

    def parse_while(self) -> ast.While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(tok.line, cond, self.parse_stmt())

    def parse_do_while(self) -> ast.DoWhile:
        tok = self.expect("do")
        body = self.parse_stmt()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(tok.line, body, cond)

    def parse_for(self) -> ast.For:
        tok = self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.accept(";"):
            if self.peek().kind == "kw" and self.peek().text in _TYPES:
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(self.peek().line, self.parse_expr())
                self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step = None if self.check(")") else self.parse_expr()
        self.expect(")")
        return ast.For(tok.line, init, cond, step, self.parse_stmt())

    def parse_switch(self) -> ast.Switch:
        tok = self.expect("switch")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases: List[ast.SwitchCase] = []
        seen_values = set()
        seen_default = False
        while not self.check("}"):
            label_tok = self.peek()
            if self.accept("case"):
                value = self.parse_case_value()
                if value in seen_values:
                    raise CompileError(
                        "duplicate case {}".format(value), label_tok.line, self.module
                    )
                seen_values.add(value)
                self.expect(":")
                cases.append(ast.SwitchCase(value, [], label_tok.line))
            elif self.accept("default"):
                if seen_default:
                    raise CompileError(
                        "duplicate default label", label_tok.line, self.module
                    )
                seen_default = True
                self.expect(":")
                cases.append(ast.SwitchCase(None, [], label_tok.line))
            elif cases:
                cases[-1].stmts.append(self.parse_stmt())
            else:
                raise CompileError(
                    "statement before first case label", label_tok.line, self.module
                )
        self.expect("}")
        return ast.Switch(tok.line, cond, cases)

    def parse_case_value(self) -> int:
        negative = self.accept("-")
        tok = self.peek()
        if tok.kind != "int":
            raise self.error("case label must be an integer constant")
        self.advance()
        value = int(tok.text, 0)
        return -value if negative else value

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.advance()
            if not isinstance(lhs, (ast.Name, ast.Index)) and not (
                isinstance(lhs, ast.Unary) and lhs.op == "*"
            ):
                raise CompileError("invalid assignment target", tok.line, self.module)
            value = self.parse_assignment()
            return ast.Assign(tok.line, _ASSIGN_OPS[tok.text], lhs, value)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.check("?"):
            tok = self.advance()
            then_expr = self.parse_expr()
            self.expect(":")
            else_expr = self.parse_conditional()
            return ast.Conditional(tok.line, cond, then_expr, else_expr)
        return cond

    _BINARY_LEVELS: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    _BINOP_NAMES = {
        "|": "or", "^": "xor", "&": "and",
        "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
        "<<": "shl", ">>": "shr",
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    }

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        lhs = self.parse_binary(level + 1)
        while True:
            tok = self.peek()
            if tok.kind != "punct" or tok.text not in ops:
                return lhs
            self.advance()
            rhs = self.parse_binary(level + 1)
            if tok.text in ("||", "&&"):
                lhs = ast.ShortCircuit(tok.line, tok.text, lhs, rhs)
            else:
                lhs = ast.Binary(tok.line, self._BINOP_NAMES[tok.text], lhs, rhs)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "punct":
            if tok.text in ("-", "!", "~", "*", "&"):
                self.advance()
                return ast.Unary(tok.line, tok.text, self.parse_unary())
            if tok.text in ("++", "--"):
                self.advance()
                target = self.parse_unary()
                return ast.IncDec(tok.line, tok.text, target, prefix=True)
            if tok.text == "+":
                self.advance()
                return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept("("):
                args: List[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = ast.CallExpr(tok.line, expr, args)
            elif self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(tok.line, expr, index)
            elif tok.kind == "punct" and tok.text in ("++", "--"):
                self.advance()
                expr = ast.IncDec(tok.line, tok.text, expr, prefix=False)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(tok.line, int(tok.text, 0))
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(tok.line, float(tok.text))
        if tok.kind == "name":
            self.advance()
            return ast.Name(tok.line, tok.text)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self.error("expected expression, found {!r}".format(tok.text or "<eof>"))


def parse_source(source: str, module: str = "") -> ast.TranslationUnit:
    """Tokenize and parse one minic source file."""
    return Parser(tokenize(source, module), module).parse_unit()
