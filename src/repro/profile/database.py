"""The profile database: block and call-site execution counts.

Keys are stable across recompiles because the front end is
deterministic: block counts key on ``(procedure name, block label)``
and call-site counts on ``(module name, site id)``.  Call-site counts
are derived from block counts — a call executes exactly as often as
its containing block — which mirrors how arc profiles are recovered
from basic-block profiles in practice.

The database serializes to a small text format so the isom workflow can
keep profiles on disk between the training and final compiles.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.instructions import CALL_INSTRS
from ..ir.program import Program
from .instrument import ProbeMap

BlockKey = Tuple[str, str]  # (proc name, block label)
SiteKey = Tuple[str, int]  # (module name, site id)


class ProfileDatabase:
    """Counts harvested from one or more training runs."""

    def __init__(self) -> None:
        self.block_counts: Dict[BlockKey, int] = {}
        self.site_counts: Dict[SiteKey, int] = {}
        self.training_runs = 0
        self.training_steps = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_training_run(
        cls,
        program: Program,
        probe_map: ProbeMap,
        probe_counts: Dict[int, int],
        steps: int = 0,
    ) -> "ProfileDatabase":
        db = cls()
        db.merge_run(program, probe_map, probe_counts, steps)
        return db

    def merge_run(
        self,
        program: Program,
        probe_map: ProbeMap,
        probe_counts: Dict[int, int],
        steps: int = 0,
    ) -> None:
        """Fold one training run's probe counters into the database.

        Multiple runs accumulate, supporting the paper's future-work
        idea of "incorporating profile information from a variety of
        sources".
        """
        for counter_id, (proc, label) in probe_map.items():
            count = probe_counts.get(counter_id, 0)
            key = (proc, label)
            self.block_counts[key] = self.block_counts.get(key, 0) + count
        self._derive_site_counts(program)
        self.training_runs += 1
        self.training_steps += steps

    def _derive_site_counts(self, program: Program) -> None:
        self.site_counts = {}
        for mod in program.modules.values():
            for proc in mod.procs.values():
                for label, block in proc.blocks.items():
                    count = self.block_counts.get((proc.name, label))
                    if count is None:
                        continue
                    for instr in block.instrs:
                        if isinstance(instr, CALL_INSTRS):
                            key = (mod.name, instr.site_id)
                            self.site_counts[key] = (
                                self.site_counts.get(key, 0) + count
                            )

    # ------------------------------------------------------------------
    # Combination (Section 5: "incorporating profile information from a
    # variety of sources")
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "ProfileDatabase":
        """A copy with every count scaled by ``factor`` (>= 0).

        Scaling lets differently sized training runs contribute equal
        (or deliberately unequal) influence when combined.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        out = ProfileDatabase()
        out.block_counts = {
            k: int(round(v * factor)) for k, v in self.block_counts.items()
        }
        out.site_counts = {
            k: int(round(v * factor)) for k, v in self.site_counts.items()
        }
        out.training_runs = self.training_runs
        out.training_steps = int(round(self.training_steps * factor))
        return out

    @classmethod
    def combine(
        cls,
        databases: "list[ProfileDatabase]",
        weights: Optional["list[float]"] = None,
    ) -> "ProfileDatabase":
        """Merge profiles from several sources, optionally weighted.

        With no weights, counts add directly (larger runs dominate).
        With weights, each database is normalized by its total steps
        first, so a short synthetic run and a long production trace can
        contribute in the stated proportion.
        """
        if not databases:
            return cls()
        if weights is not None:
            if len(weights) != len(databases):
                raise ValueError("one weight per database required")
            scaled = []
            for db, weight in zip(databases, weights):
                norm = weight / db.training_steps if db.training_steps else 0.0
                # Keep counts in a useful integer range after normalizing.
                scaled.append(db.scaled(norm * 1_000_000))
            databases = scaled
        out = cls()
        for db in databases:
            for key, count in db.block_counts.items():
                out.block_counts[key] = out.block_counts.get(key, 0) + count
            for key, count in db.site_counts.items():
                out.site_counts[key] = out.site_counts.get(key, 0) + count
            out.training_runs += db.training_runs
            out.training_steps += db.training_steps
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def block_count(self, proc: str, label: str) -> Optional[int]:
        return self.block_counts.get((proc, label))

    def site_count(self, module: str, site_id: int) -> Optional[int]:
        return self.site_counts.get((module, site_id))

    def is_empty(self) -> bool:
        return not self.block_counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        lines = ["profiledb 1"]
        lines.append("runs {} steps {}".format(self.training_runs, self.training_steps))
        for (proc, label), count in sorted(self.block_counts.items()):
            lines.append("block {} {} {}".format(proc, label, count))
        for (module, site), count in sorted(self.site_counts.items()):
            lines.append("site {} {} {}".format(module, site, count))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "ProfileDatabase":
        db = cls()
        lines = [l for l in text.splitlines() if l.strip()]
        if not lines or not lines[0].startswith("profiledb"):
            raise ValueError("not a profile database")
        for line in lines[1:]:
            parts = line.split()
            if parts[0] == "runs":
                db.training_runs = int(parts[1])
                db.training_steps = int(parts[3])
            elif parts[0] == "block":
                db.block_counts[(parts[1], parts[2])] = int(parts[3])
            elif parts[0] == "site":
                db.site_counts[(parts[1], int(parts[2]))] = int(parts[3])
            else:
                raise ValueError("bad profile line: {!r}".format(line))
        return db

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_text())

    @classmethod
    def load(cls, path: str) -> "ProfileDatabase":
        with open(path) as handle:
            return cls.from_text(handle.read())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ProfileDatabase {} blocks, {} sites, {} runs>".format(
            len(self.block_counts), len(self.site_counts), self.training_runs
        )
