"""Plan-cache behaviour under hot swap: the fleet's correctness anchor.

The continuous-profiling loop hot-swaps new builds into running
instances (``FleetSupervisor.swap_all``); neither optimized engine's
plan cache may ever serve a plan for code that changed underneath it.
Every test here runs against both the pre-decoded ``fast`` engine
(``Program._plan_cache``) and the source-compiling ``codegen`` engine
(``Program._codegen_cache``) — the two caches share one invalidation
contract.  Three mechanisms cover the matrix:

- plans self-validate against the procedure's content fingerprint on
  every *run's first* lookup, so an in-place procedure swap is picked
  up on the next run;
- the whole cache clears when the program's globals layout signature
  changes (plans embed resolved global addresses);
- within one run, resolution is cached per run (``_ExecState.link``) —
  a mutation landing mid-run completes on the old plan and takes
  effect on the next run, which is exactly the swap semantics the
  fleet relies on (a running request finishes on the build it started
  on).
"""

from __future__ import annotations

import pytest

from repro.frontend.driver import compile_program
from repro.interp.diff import OPTIMIZED_ENGINES
from repro.interp.events import EventSink
from repro.interp.interpreter import Interpreter, run_program

_CACHE_ATTR = {"fast": "_plan_cache", "codegen": "_codegen_cache"}


@pytest.fixture(params=OPTIMIZED_ENGINES)
def engine(request):
    return request.param


def _cache(program, engine):
    return getattr(program, _CACHE_ATTR[engine])


def _sources(bonus: int) -> list:
    return [
        (
            "lib",
            "int helper(int x) {{ return x + {}; }}\n".format(bonus),
        ),
        (
            "main",
            "extern int helper(int x);\n"
            "int main() { int i = 0; int acc = 0;\n"
            "  while (i < 4) { acc = acc + helper(10); i = i + 1; }\n"
            "  print_int(acc); return 0; }\n",
        ),
    ]


def _swap_helper(program, bonus: int) -> None:
    """In-place hot swap: give @helper the body from a new compile."""
    donor = compile_program(_sources(bonus))
    new = donor.modules["lib"].procs["helper"]
    old = program.modules["lib"].procs["helper"]
    old.blocks = new.blocks
    old.params = new.params


def test_fingerprint_change_invalidates_between_runs(engine):
    program = compile_program(_sources(1))
    assert run_program(program, engine=engine).output == [44]
    cache = _cache(program, engine)
    compiled_before = cache.plans_compiled
    _swap_helper(program, 100)
    # Same Program object, same cache: the stale plan must lose.
    assert run_program(program, engine=engine).output == [440]
    assert _cache(program, engine) is cache
    assert cache.plans_compiled > compiled_before


def test_unchanged_procs_hit_the_cache_after_swap(engine):
    program = compile_program(_sources(1))
    run_program(program, engine=engine)
    cache = _cache(program, engine)
    _swap_helper(program, 100)
    hits_before = cache.cache_hits
    run_program(program, engine=engine)
    # @main did not change; its plan must be reused, not recompiled.
    assert cache.cache_hits > hits_before


def test_globals_layout_change_clears_whole_cache(engine):
    with_global = [
        ("lib", "int counter[2];\nint helper(int x) { return x + 1; }\n"),
        _sources(1)[1],
    ]
    program = compile_program(_sources(1))
    run_program(program, engine=engine)
    cache = _cache(program, engine)
    assert cache.plans
    # Splice in a module variant that declares a global: the layout
    # signature shifts, so every plan's embedded addresses are stale.
    donor = compile_program(with_global)
    program.modules["lib"] = donor.modules["lib"]
    result = run_program(program, engine=engine)
    assert result.output == [44]
    assert _cache(program, engine) is cache  # cleared in place, not replaced
    assert cache.globals_sig == tuple(
        (g.name, g.size) for g in program.all_globals()
    )


def test_invalidate_plans_drops_the_cache_object(engine):
    program = compile_program(_sources(1))
    run_program(program, engine=engine)
    assert _cache(program, engine) is not None
    program.invalidate_plans()
    assert _cache(program, engine) is None
    # And the next run rebuilds from nothing, correctly.
    assert run_program(program, engine=engine).output == [44]


def test_caches_are_independent_per_engine():
    # One program served by both optimized engines keeps two separate
    # caches; invalidate_plans drops both at once.
    program = compile_program(_sources(1))
    assert run_program(program, engine="fast").output == [44]
    assert run_program(program, engine="codegen").output == [44]
    assert program._plan_cache is not None
    assert program._codegen_cache is not None
    assert program._plan_cache is not program._codegen_cache
    program.invalidate_plans()
    assert program._plan_cache is None
    assert program._codegen_cache is None


class _MidRunSwapper(EventSink):
    """Hot-swaps @helper after its second call, mid-run."""

    needs_instr = False
    needs_branch = False
    needs_return = False
    needs_mem = False

    def __init__(self, program, bonus):
        self.program = program
        self.bonus = bonus
        self.calls = 0

    def on_call(self, caller, callee_name, kind, n_args):
        if callee_name == "helper":
            self.calls += 1
            if self.calls == 2:
                _swap_helper(self.program, self.bonus)


def test_mid_run_swap_completes_on_old_plan_next_run_sees_new(engine):
    program = compile_program(_sources(1))
    sink = _MidRunSwapper(program, 100)
    first = Interpreter(program, sink=sink, engine=engine).run()
    # All four iterations used the plan resolved at the run's first
    # call — the in-flight run is never torn between two builds.
    assert first.output == [44]
    assert sink.calls >= 2
    # A fresh run re-validates fingerprints and sees the swapped body.
    second = run_program(program, engine=engine)
    assert second.output == [440]


def test_mid_run_swap_matches_reference_engine_semantics(engine):
    program_opt = compile_program(_sources(1))
    program_ref = compile_program(_sources(1))
    opt = Interpreter(
        program_opt, sink=_MidRunSwapper(program_opt, 100), engine=engine
    ).run()
    ref = Interpreter(
        program_ref, sink=_MidRunSwapper(program_ref, 100), engine="reference"
    ).run()
    # The reference engine re-reads blocks each call, so it *does* see
    # the new body mid-run; the contract the fleet needs is only about
    # post-swap runs, where both engines agree.
    assert opt.exit_code == ref.exit_code == 0
    assert run_program(program_opt, engine=engine).output == \
        run_program(program_ref, engine="reference").output == [440]
