"""Isoms, the link step, and the scope-aware toolchain."""

import pytest

from repro.frontend import compile_module, compile_program
from repro.interp import run_program
from repro.ir import Signature, Type, print_module
from repro.linker import (
    LinkError,
    Toolchain,
    from_isom_text,
    is_isom_text,
    link_modules,
    read_isom,
    roundtrip_modules,
    scope_flags,
    to_isom_text,
    write_isom,
)

LIB = """
static int tripled(int x) { return x * 3; }
int api(int x) { return tripled(x) + 1; }
"""
MAIN = """
extern int api(int x);
int main() { print_int(api(input(0))); return 0; }
"""


class TestIsoms:
    def test_text_roundtrip(self):
        mod = compile_module(LIB, "lib")
        text = to_isom_text(mod)
        assert is_isom_text(text)
        header, _, payload = text.partition("\n")
        assert header.startswith("isom 1 crc32 ")
        assert print_module(from_isom_text(text)) == payload

    def test_sniffing(self):
        assert not is_isom_text("\x7fELF...")
        assert not is_isom_text("")
        # Both the versioned format and legacy headerless payloads sniff.
        assert is_isom_text(to_isom_text(compile_module(LIB, "lib")))
        assert is_isom_text("\n\nmodule \"x\"\n")

    def test_disk_roundtrip(self, tmp_path):
        mod = compile_module(LIB, "lib")
        path = write_isom(mod, str(tmp_path))
        assert path.endswith("lib.isom")
        loaded = read_isom(path)
        assert print_module(loaded) == print_module(mod)

    def test_roundtrip_modules_preserves_execution(self):
        program = compile_program([("lib", LIB), ("main", MAIN)])
        before = run_program(program, [5]).behavior()
        relinked = link_modules(roundtrip_modules(program.modules.values()))
        assert run_program(relinked, [5]).behavior() == before


class TestLinkStep:
    def test_undefined_symbol(self):
        mod = compile_module(MAIN, "main")
        with pytest.raises(LinkError) as err:
            link_modules([mod])
        assert "api" in str(err.value)

    def test_signature_mismatch(self):
        lib = compile_module("int api(int x, int y) { return x + y; }", "lib")
        main = compile_module(MAIN, "main")
        with pytest.raises(LinkError) as err:
            link_modules([lib, main])
        assert "mismatch" in str(err.value)

    def test_missing_entry(self):
        lib = compile_module(LIB, "lib")
        with pytest.raises(LinkError) as err:
            link_modules([lib])
        assert "main" in str(err.value)

    def test_successful_link(self):
        program = link_modules(
            [compile_module(LIB, "lib"), compile_module(MAIN, "main")]
        )
        assert run_program(program, [2]).output == [7]


class TestToolchain:
    def toolchain(self):
        return Toolchain([("lib", LIB), ("main", MAIN)], train_inputs=[[4]])

    def test_scope_flags(self):
        assert scope_flags("base") == (False, False)
        assert scope_flags("c") == (True, False)
        assert scope_flags("p") == (False, True)
        assert scope_flags("cp") == (True, True)
        with pytest.raises(ValueError):
            scope_flags("turbo")

    def test_all_scopes_agree_on_behavior(self):
        tc = self.toolchain()
        behaviors = set()
        for scope in ("base", "c", "p", "cp"):
            result = tc.build(scope)
            _metrics, run = result.run([9])
            behaviors.add(run.behavior())
        assert len(behaviors) == 1

    def test_profile_scope_requires_training_inputs(self):
        tc = Toolchain([("lib", LIB), ("main", MAIN)])
        with pytest.raises(ValueError):
            tc.build("p")
        tc.build("c")  # fine without training data

    def test_profile_builds_cost_more_compile_units(self):
        tc = self.toolchain()
        base = tc.build("base")
        prof = tc.build("p")
        assert prof.stats.compile_units > base.stats.compile_units
        assert prof.stats.train_runs == 1
        assert prof.stats.train_steps > 0
        assert prof.stats.annotated_blocks > 0

    def test_profile_cached_across_builds(self):
        tc = self.toolchain()
        first = tc.build("p")
        second = tc.build("cp")
        assert first.profile is second.profile

    def test_cross_module_build_can_delete_statics_callers(self):
        tc = self.toolchain()
        c_build = tc.build("c")
        # With link-time scope and full inlining the library becomes
        # unreachable; module scope must keep the global-linkage api.
        base_build = tc.build("base")
        assert base_build.program.proc("api") is not None

    def test_build_stats_shape(self):
        tc = self.toolchain()
        result = tc.build("cp")
        assert result.stats.scope == "cp"
        assert result.stats.code_size_instrs == result.program.size()
