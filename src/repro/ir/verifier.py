"""Structural verifier for IR programs.

Run after the front end and after every HLO / optimizer pass in checked
builds; the property-test suite asserts that every transform leaves the
program verifiable.  Checks are structural and name-resolution level
(this is not a type checker for arbitrary hand-built IR, but it catches
the bugs that body transplants and CFG edits actually introduce).
"""

from __future__ import annotations

from typing import List

from .instructions import Branch, Call, ICall, Jump, Probe, Ret
from .module import Module
from .procedure import LINK_EXTERN, LINK_STATIC, Procedure
from .program import RUNTIME_BUILTINS, Program
from .types import Type
from .values import FuncRef, GlobalRef, Reg


class VerifyError(Exception):
    """Raised when a program fails verification; carries all messages."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


def verify_program(program: Program) -> None:
    """Raise :class:`VerifyError` if any module fails verification."""
    errors: List[str] = []
    for mod in program.modules.values():
        errors.extend(_verify_module(program, mod))
    if errors:
        raise VerifyError(errors)


def verify_proc(program: Program, proc: Procedure) -> None:
    """Raise :class:`VerifyError` if one procedure fails verification.

    The guarded pass manager runs this after each per-procedure pass —
    whole-program verification there would be quadratic in practice.
    """
    errors = _verify_proc(program, proc)
    if errors:
        raise VerifyError(errors)


def _verify_module(program: Program, mod: Module) -> List[str]:
    errors: List[str] = []
    for proc in mod.procs.values():
        errors.extend(_verify_proc(program, proc))
    return errors


def _verify_proc(program: Program, proc: Procedure) -> List[str]:
    errors: List[str] = []
    where = "@{}".format(proc.name)

    if proc.linkage == LINK_EXTERN:
        errors.append("{}: defined procedure has extern linkage".format(where))
    if proc.entry is None or proc.entry not in proc.blocks:
        errors.append("{}: missing entry block".format(where))
        return errors

    defined = {name for name, _ in proc.params}
    for instr in proc.instructions():
        if instr.dest is not None:
            defined.add(instr.dest.name)

    for label, block in proc.blocks.items():
        bwhere = "{}:{}".format(where, label)
        if block.label != label:
            errors.append("{}: label/key mismatch".format(bwhere))
        if block.terminator is None:
            errors.append("{}: block lacks a terminator".format(bwhere))
        for idx, instr in enumerate(block.instrs):
            if instr.is_terminator and idx != len(block.instrs) - 1:
                errors.append("{}: terminator mid-block at {}".format(bwhere, idx))
            for target in instr.targets():
                if target not in proc.blocks:
                    errors.append(
                        "{}: branch to unknown label {}".format(bwhere, target)
                    )
            errors.extend(_verify_instr(program, proc, instr, defined, bwhere))
    return errors


def _verify_instr(program, proc, instr, defined, where) -> List[str]:
    errors: List[str] = []

    for op in instr.uses():
        if isinstance(op, Reg) and op.name not in defined:
            errors.append("{}: use of undefined register %{}".format(where, op.name))
        elif isinstance(op, FuncRef):
            target = program.proc(op.name)
            if target is None and op.name not in RUNTIME_BUILTINS:
                errors.append("{}: funcref to unknown @{}".format(where, op.name))
            elif target is not None and target.linkage == LINK_STATIC:
                if target.module != proc.module:
                    errors.append(
                        "{}: funcref to static @{} from module {}".format(
                            where, op.name, proc.module
                        )
                    )
        elif isinstance(op, GlobalRef):
            gvar = program.global_var(op.name)
            if gvar is None:
                errors.append("{}: reference to unknown global ${}".format(where, op.name))
            elif gvar.linkage == LINK_STATIC and gvar.module != proc.module:
                errors.append(
                    "{}: reference to static ${} from module {}".format(
                        where, op.name, proc.module
                    )
                )

    if isinstance(instr, Call):
        sig = program.callee_signature(instr.callee)
        target = program.proc(instr.callee)
        if sig is None:
            errors.append("{}: call to undeclared @{}".format(where, instr.callee))
        else:
            if target is not None and target.linkage == LINK_STATIC:
                if target.module != proc.module:
                    errors.append(
                        "{}: cross-module call to static @{}".format(where, instr.callee)
                    )
            if instr.dest is not None and sig.ret is Type.VOID:
                errors.append(
                    "{}: call to void @{} uses a result".format(where, instr.callee)
                )
        if instr.site_id < 0:
            errors.append("{}: call site without a site id".format(where))
    elif isinstance(instr, ICall):
        if instr.site_id < 0:
            errors.append("{}: icall site without a site id".format(where))
    elif isinstance(instr, Ret):
        if proc.ret_type is Type.VOID and instr.value is not None:
            errors.append("{}: ret with value in void procedure".format(where))
        if proc.ret_type is not Type.VOID and instr.value is None:
            errors.append("{}: bare ret in non-void procedure".format(where))
    elif isinstance(instr, Branch):
        if instr.then_target == instr.else_target:
            # Legal but should have been simplified; not an error.
            pass
    elif isinstance(instr, (Jump, Probe)):
        pass
    return errors
