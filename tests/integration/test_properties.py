"""Cross-cutting property tests over the whole pipeline (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import HLOConfig, run_hlo
from repro.frontend import compile_module, compile_program
from repro.interp import run_program
from repro.ir import parse_module, print_module, verify_program
from repro.linker import link_modules, roundtrip_modules
from repro.profile import annotate_program, instrument_program, ProfileDatabase
from repro.workloads.generator import generate_sources

seeds = st.integers(min_value=0, max_value=1_000_000)


@settings(max_examples=12, deadline=None)
@given(seeds, st.sampled_from(["base", "isom"]))
def test_isom_path_equals_direct_path(seed, path):
    """Compiling through the isom round trip changes nothing observable."""
    sources = generate_sources(seed)
    direct = compile_program(sources)
    reference = run_program(direct, max_steps=500_000).behavior()
    if path == "isom":
        program = link_modules(
            roundtrip_modules(compile_program(sources).modules.values())
        )
    else:
        program = compile_program(sources)
    assert run_program(program, max_steps=500_000).behavior() == reference


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_full_pgo_pipeline_preserves_behavior(seed):
    """Instrument -> train -> annotate -> HLO -> run == raw run."""
    sources = generate_sources(seed)
    reference = run_program(compile_program(sources), max_steps=500_000).behavior()

    instrumented = compile_program(sources)
    probe_map = instrument_program(instrumented)
    trained = run_program(instrumented, max_steps=2_000_000)
    assert trained.behavior() == reference  # probes are invisible

    db = ProfileDatabase.from_training_run(
        instrumented, probe_map, trained.probe_counts, trained.steps
    )
    final = compile_program(sources)
    annotate_program(final, db)
    run_hlo(final, HLOConfig(budget_percent=400), site_counts=db.site_counts)
    verify_program(final)
    assert run_program(final, max_steps=2_000_000).behavior() == reference


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_hlo_is_idempotent_semantically(seed):
    """Running HLO twice keeps behaviour (and the verifier) intact."""
    sources = generate_sources(seed)
    reference = run_program(compile_program(sources), max_steps=500_000).behavior()
    program = compile_program(sources)
    run_hlo(program, HLOConfig(budget_percent=200))
    run_hlo(program, HLOConfig(budget_percent=200))
    verify_program(program)
    assert run_program(program, max_steps=2_000_000).behavior() == reference


@settings(max_examples=8, deadline=None)
@given(seeds)
def test_variant_configs_all_preserve_behavior(seed):
    """Figure 6's four variants agree on observable behaviour."""
    sources = generate_sources(seed)
    reference = run_program(compile_program(sources), max_steps=500_000).behavior()
    base = HLOConfig(budget_percent=400)
    for cfg in (base.neither(), base.inline_only(), base.clone_only(), base):
        program = compile_program(sources)
        run_hlo(program, cfg)
        assert run_program(program, max_steps=2_000_000).behavior() == reference


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_annotated_programs_roundtrip_through_isom(seed):
    """Profile annotations survive isom serialization."""
    sources = generate_sources(seed, n_modules=1)
    name, text = sources[0]
    mod = compile_module(text, name)
    for proc in mod.procs.values():
        for i, block in enumerate(proc.blocks.values()):
            block.profile_count = i * 10
    reparsed = parse_module(print_module(mod))
    for pname, proc in mod.procs.items():
        for label, block in proc.blocks.items():
            assert reparsed.procs[pname].blocks[label].profile_count == block.profile_count
