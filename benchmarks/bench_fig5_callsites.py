"""Figure 5: static characteristics of call sites per benchmark.

Paper: each call site classified as external, indirect, cross-module,
within-module, or recursive, with per-benchmark totals.  The claim the
figure supports: "there are significant numbers of cross-module calls
[whose inlining] is crucial for good performance."

Measured check: every workload has cross-module sites, and the suite's
recursion concentrates where the paper's did (the lisp interpreter).
"""

from __future__ import annotations

from repro.bench import fig5_callsites, format_table


def test_fig5_callsite_mix(benchmark, archive):
    headers, rows = benchmark.pedantic(fig5_callsites, rounds=1, iterations=1)
    text = format_table(headers, rows, "Figure 5: static call-site mix")
    archive("fig5_callsites", text)

    by_name = {row[0]: dict(zip(headers, row)) for row in rows}
    # The paper's structural claims, as assertions:
    for name, row in by_name.items():
        assert row["cross-module"] > 0, "{} lost its cross-module calls".format(name)
        assert row["total"] == sum(row[c] for c in headers[1:-1])
    assert by_name["li"]["recursive"] > 0, "li must have recursive sites"

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]
