"""Types, signatures, and operand values."""

import pytest

from repro.ir import (
    FuncRef,
    GlobalRef,
    Imm,
    Reg,
    Signature,
    Type,
    is_constant,
    parse_type,
)


class TestSignature:
    def test_exact_match(self):
        sig = Signature((Type.INT, Type.FLT), Type.INT)
        assert sig.accepts_call((Type.INT, Type.FLT))
        assert not sig.accepts_call((Type.INT,))
        assert not sig.accepts_call((Type.FLT, Type.INT))
        assert not sig.accepts_call((Type.INT, Type.FLT, Type.INT))

    def test_varargs_accepts_suffix(self):
        sig = Signature((Type.INT,), Type.VOID, varargs=True)
        assert sig.accepts_call((Type.INT,))
        assert sig.accepts_call((Type.INT, Type.INT, Type.FLT))
        assert not sig.accepts_call(())

    def test_arity(self):
        assert Signature((Type.INT, Type.INT)).arity() == 2

    def test_str_forms(self):
        assert str(Signature((Type.INT,), Type.VOID)) == "(int) -> void"
        assert "..." in str(Signature((), Type.INT, varargs=True))


class TestParseType:
    @pytest.mark.parametrize("name,ty", [("int", Type.INT), ("float", Type.FLT), ("void", Type.VOID)])
    def test_roundtrip(self, name, ty):
        assert parse_type(name) is ty
        assert str(ty) == name

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            parse_type("double")


class TestOperands:
    def test_reg_identity(self):
        assert Reg("x") == Reg("x")
        assert Reg("x") != Reg("y")
        assert str(Reg("t0")) == "%t0"

    def test_imm_typing(self):
        assert Imm(5).type is Type.INT
        assert Imm(2.5, Type.FLT).type is Type.FLT
        assert str(Imm(-3)) == "-3"
        assert str(Imm(2.5, Type.FLT)) == "2.5"

    def test_imm_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            Imm(2.5)  # float value, INT type
        with pytest.raises(TypeError):
            Imm(2, Type.FLT)

    def test_refs(self):
        assert str(FuncRef("f")) == "@f"
        assert str(GlobalRef("g")) == "$g"
        assert FuncRef("f") != GlobalRef("f")

    def test_is_constant(self):
        assert is_constant(Imm(1))
        assert is_constant(FuncRef("f"))
        assert is_constant(GlobalRef("g"))
        assert not is_constant(Reg("x"))

    def test_hashable(self):
        # Operands key dicts/sets throughout the optimizer.
        assert len({Reg("a"), Reg("a"), Imm(1), FuncRef("a")}) == 3
