"""HLO transformation reports — the raw material of Table 1.

Table 1 of the paper reports, per benchmark and scope configuration:
inlines performed, clones created, clone replacements (call sites
retargeted to a clone), routine deletions, compile time, and run time.
:class:`HLOReport` accumulates the first four (plus promotions and
devirtualizations, which the paper describes in prose), along with a
per-pass trace used by the budget-validation experiment (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TransformEvent:
    """One inline or clone-replacement, in the order performed."""

    kind: str  # 'inline' | 'clone-replace'
    pass_number: int
    caller: str
    callee: str
    site_id: int
    detail: str = ""


@dataclass
class PassFailure:
    """One contained pass failure: the rollback fired and the build went on.

    ``proc`` is the procedure being transformed when the pass failed, or
    ``"<program>"`` for program-level stages (clone/inline passes,
    dead-call elimination).  ``culprit`` is the minimal failing
    procedure found by bisection when the failing stage spanned the
    whole program (empty when bisection was off or found nothing).
    """

    pass_name: str
    proc: str
    pass_number: int
    phase: str  # 'input' | 'clone' | 'inline' | 'scalar' | 'output'
    error_type: str
    error: str
    quarantined: bool = False
    culprit: str = ""

    def __str__(self) -> str:
        where = self.culprit or self.proc
        tag = " [quarantined]" if self.quarantined else ""
        return "pass {!r} failed on @{} during {} (pass {}): {}: {}{}".format(
            self.pass_name, where, self.phase, self.pass_number,
            self.error_type, self.error, tag,
        )


@dataclass
class PassTrace:
    """Summary of one Clone or Inline pass."""

    pass_number: int
    phase: str  # 'clone' | 'inline'
    performed: int
    cost_before: float
    cost_after: float
    budget_stage: float


@dataclass
class HLOReport:
    """Aggregate counts across an entire HLO run."""

    inlines: int = 0
    clones: int = 0
    clone_replacements: int = 0
    deletions: int = 0
    promotions: int = 0
    devirtualized: int = 0
    outlines: int = 0
    clone_db_hits: int = 0
    passes_run: int = 0
    # Analysis-memoization counters (docs/performance.md): how often the
    # multi-pass loop reused a cached call graph / entry-count /
    # frequency result instead of recomputing, and how many times the
    # transforms invalidated.  Informational; never rolled back.
    analysis_hits: int = 0
    analysis_misses: int = 0
    analysis_invalidations: int = 0
    # Demand-strategy counters (docs/performance.md "Inlining
    # strategies"): hot regions formed by the planner, and how many of
    # them stopped requesting transforms because their per-region
    # budget ran out.  Informational; never rolled back.
    regions_formed: int = 0
    region_budget_exhausted: int = 0
    # Strategy-stage cost (``repro bench-scale``): wall seconds spent in
    # the planning + transform section the strategy knob selects, and —
    # when the caller already has a tracemalloc trace running — the
    # allocation peak over that same section.  The shared input/output
    # scalar stages cost the same under every strategy and are excluded.
    # Informational; never rolled back.
    strategy_wall_s: float = 0.0
    strategy_peak_bytes: int = 0
    # Call-site evaluations across every clone/inline pass: each site
    # the transforms screened, ranked, accepted, or refused counts one
    # per evaluation.  The inlining ledger (repro.obs.ledger) records
    # one decision per increment, so with --explain-inlining the ledger
    # length always equals this counter.
    sites_considered: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    budget_limit: float = 0.0
    events: List[TransformEvent] = field(default_factory=list)
    pass_traces: List[PassTrace] = field(default_factory=list)
    deleted_procs: List[str] = field(default_factory=list)
    promoted_symbols: List[str] = field(default_factory=list)
    outlined_procs: List[str] = field(default_factory=list)
    pass_failures: List[PassFailure] = field(default_factory=list)
    quarantined_passes: List[str] = field(default_factory=list)

    def record_inline(self, pass_number: int, caller: str, callee: str, site_id: int) -> None:
        self.inlines += 1
        self.events.append(TransformEvent("inline", pass_number, caller, callee, site_id))

    def record_clone_replacement(
        self, pass_number: int, caller: str, clone: str, site_id: int, clonee: str
    ) -> None:
        self.clone_replacements += 1
        self.events.append(
            TransformEvent("clone-replace", pass_number, caller, clone, site_id, clonee)
        )

    def record_deletion(self, name: str) -> None:
        self.deletions += 1
        self.deleted_procs.append(name)

    def record_promotion(self, symbol: str) -> None:
        self.promotions += 1
        self.promoted_symbols.append(symbol)

    def record_pass_failure(self, failure: PassFailure) -> None:
        self.pass_failures.append(failure)
        if failure.quarantined and failure.pass_name not in self.quarantined_passes:
            self.quarantined_passes.append(failure.pass_name)

    @property
    def degraded(self) -> bool:
        """True when any pass failed and the build recovered by rollback."""
        return bool(self.pass_failures)

    def mark(self) -> tuple:
        """Opaque checkpoint of the transform counters and event lists.

        The guarded pass runner takes a mark before a clone/inline
        stage; if the stage fails and its IR is rolled back, the
        counters roll back too so a degraded build does not report
        phantom transforms.  Failure diagnostics are never rolled back.
        """
        return (
            self.inlines, self.clones, self.clone_replacements,
            self.promotions, self.outlines, self.sites_considered,
            len(self.events), len(self.promoted_symbols),
            len(self.outlined_procs),
        )

    def rollback_to(self, mark: tuple) -> None:
        (self.inlines, self.clones, self.clone_replacements,
         self.promotions, self.outlines, self.sites_considered,
         events_len, promoted_len, outlined_len) = mark
        del self.events[events_len:]
        del self.promoted_symbols[promoted_len:]
        del self.outlined_procs[outlined_len:]

    @property
    def transform_count(self) -> int:
        """Inlines plus clone replacements — Figure 8's x axis."""
        return self.inlines + self.clone_replacements

    def summary_row(self) -> Dict[str, float]:
        """The Table 1 column set for this run."""
        return {
            "inlines": self.inlines,
            "clones": self.clones,
            "clone_replacements": self.clone_replacements,
            "deletions": self.deletions,
            "compile_cost": self.final_cost,
        }

    def __str__(self) -> str:
        return (
            "HLOReport(inlines={}, clones={}, repls={}, deletions={}, "
            "promotions={}, devirt={}, passes={}, cost {:.0f} -> {:.0f} / {:.0f})".format(
                self.inlines,
                self.clones,
                self.clone_replacements,
                self.deletions,
                self.promotions,
                self.devirtualized,
                self.passes_run,
                self.initial_cost,
                self.final_cost,
                self.budget_limit,
            )
        )
