"""The IRBuilder convenience API."""

import pytest

from repro.interp import run_program
from repro.ir import (
    FuncRef,
    GlobalRef,
    IRBuilder,
    Imm,
    Module,
    Program,
    Type,
    verify_program,
)


class TestBuilder:
    def test_python_numbers_become_immediates(self):
        mod = Module("m")
        b = IRBuilder(mod, "main")
        r = b.add(2, 3)
        b.ret(r)
        assert run_program(Program([mod])).exit_code == 5

    def test_float_literal_typing(self):
        mod = Module("m")
        b = IRBuilder(mod, "main", ret_type=Type.FLT)
        b.ret(b.binop("mul", 2.0, 1.5))
        program = Program([mod])
        verify_program(program)
        assert b.const(2.5) == Imm(2.5, Type.FLT)
        assert b.const(2) == Imm(2)

    def test_bool_coerces_to_int(self):
        mod = Module("m")
        b = IRBuilder(mod, "main")
        b.ret(b.mov(True))
        assert run_program(Program([mod])).exit_code == 1

    def test_operand_helpers(self):
        mod = Module("m")
        b = IRBuilder(mod, "f")
        assert b.func("g") == FuncRef("g")
        assert b.glob("x") == GlobalRef("x")
        b.ret(0)

    def test_call_dest_modes(self):
        mod = Module("m")
        b = IRBuilder(mod, "main")
        explicit = b.reg("out")
        got = b.call("input", [0], dest=explicit)
        assert got == explicit
        dropped = b.call("print_int", [got], dest=False)
        assert dropped is None
        auto = b.call("input", [1])
        assert auto is not None and auto != explicit
        b.ret(auto)
        verify_program(Program([mod]))

    def test_site_ids_assigned_from_module(self):
        mod = Module("m")
        b = IRBuilder(mod, "main")
        b.call("input", [0])
        b.call("input", [1])
        b.ret(0)
        sites = [i.site_id for _b, _i, i in b.proc.call_sites()]
        assert sites == [0, 1]

    def test_branch_and_blocks(self):
        mod = Module("m")
        b = IRBuilder(mod, "main")
        t = b.lt(b.call("input", [0]), 10)
        yes, no = b.new_block("yes"), b.new_block("no")
        b.branch(t, yes, no)
        b.set_block(yes)
        b.ret(1)
        b.set_block(no)
        b.ret(2)
        program = Program([mod])
        verify_program(program)
        assert run_program(program, [5]).exit_code == 1
        assert run_program(program, [50]).exit_code == 2

    def test_duplicate_proc_name_rejected(self):
        mod = Module("m")
        IRBuilder(mod, "f").ret(0)
        with pytest.raises(ValueError):
            IRBuilder(mod, "f")

    def test_memory_helpers(self):
        mod = Module("m")
        b = IRBuilder(mod, "main")
        base = b.alloca(4)
        b.store(b.add(base, 1), 42)
        b.ret(b.load(b.add(base, 1)))
        assert run_program(Program([mod])).exit_code == 42

    def test_icall_through_funcref(self):
        mod = Module("m")
        callee = IRBuilder(mod, "target", [("x", Type.INT)])
        callee.ret(callee.binop("mul", callee.reg("x"), 3))
        b = IRBuilder(mod, "main")
        r = b.icall(b.func("target"), [7])
        b.ret(r)
        assert run_program(Program([mod])).exit_code == 21
