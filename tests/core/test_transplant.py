"""Body transplant machinery: splicing, cloning, promotion, count flow."""

import pytest

from repro.core import (
    BlockSnapshot,
    copy_into_new_proc,
    promote_referenced_statics,
    subtract_moved_counts,
    transfer_ratio,
)
from repro.core.transplant import fresh_names, scale_count
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import Imm, LINK_GLOBAL, LINK_STATIC, verify_program


class TestHelpers:
    def test_fresh_names_avoid_existing(self):
        existing = {"i0", "i2"}
        names = fresh_names(existing, 3, "i")
        assert names == ["i1", "i3", "i4"]
        assert set(names) <= existing

    def test_scale_count(self):
        assert scale_count(None, 0.5) is None
        assert scale_count(10, 0.25) == 2  # rounds
        assert scale_count(10, 1.0) == 10

    def test_transfer_ratio(self):
        assert transfer_ratio(None, 10) is None
        assert transfer_ratio(5, None) is None
        assert transfer_ratio(5, 10) == 0.5
        assert transfer_ratio(30, 10) == 1.0  # clamped
        assert transfer_ratio(5, 0) is None


class TestSnapshot:
    def test_snapshot_is_isolated(self):
        program = compile_program(
            [("m", "int f(int x) { return x + 1; } int main() { return f(1); }")]
        )
        proc = program.proc("f")
        snap = BlockSnapshot(proc)
        # Mutating the original does not affect the snapshot.
        proc.blocks[proc.entry].instrs.clear()
        total = sum(len(instrs) for _l, instrs, _c in snap.blocks)
        assert total > 0
        assert snap.param_names == ["x"]


class TestCloneCopy:
    SOURCES = [
        (
            "m",
            """
            int combine(int mode, int a, int b) {
              if (mode == 0) return a + b;
              if (mode == 1) return a - b;
              return a * b;
            }
            int main() {
              print_int(combine(0, 10, 4));
              print_int(combine(1, 10, 4));
              print_int(combine(2, 10, 4));
              return 0;
            }
            """,
        )
    ]

    def test_clone_specializes_parameter(self):
        program = compile_program(self.SOURCES)
        clonee = program.proc("combine")
        module = program.modules["m"]
        clone = copy_into_new_proc(
            program, clonee, module, "combine.c1", {0: Imm(1)}, None
        )
        module.add_proc(clone)
        verify_program(program)
        # The clone lost the bound parameter.
        assert [n for n, _t in clone.params] == ["a", "b"]
        assert clone.ret_type == clonee.ret_type
        # Executing the clone behaves like mode=1.
        from repro.interp import Interpreter

        result = Interpreter(program).run(entry="combine.c1", args=[10, 4])
        assert result.exit_code == 6

    def test_clone_site_ids_fresh(self):
        program = compile_program(
            [
                (
                    "m",
                    """
                    int leaf(int x) { return x; }
                    int wrap(int m, int x) { return leaf(x) + m; }
                    int main() { return wrap(1, 2); }
                    """,
                )
            ]
        )
        module = program.modules["m"]
        existing = {
            instr.site_id
            for proc in program.all_procs()
            for _b, _i, instr in proc.call_sites()
        }
        clone = copy_into_new_proc(
            program, program.proc("wrap"), module, "wrap.c1", {0: Imm(5)}, None
        )
        module.add_proc(clone)
        for _b, _i, instr in clone.call_sites():
            assert instr.site_id not in existing

    def test_profile_counts_split(self):
        program = compile_program(self.SOURCES)
        clonee = program.proc("combine")
        for block in clonee.blocks.values():
            block.profile_count = 100
        module = program.modules["m"]
        clone = copy_into_new_proc(
            program, clonee, module, "combine.c1", {0: Imm(0)}, 0.25
        )
        module.add_proc(clone)
        subtract_moved_counts(clonee, 0.25)
        # Flow conservation: moved + remaining == original.
        remaining = clonee.blocks[clonee.entry].profile_count
        body_labels = [l for l in clone.blocks if l in clonee.blocks]
        moved = clone.blocks[body_labels[0]].profile_count
        assert remaining == 75
        assert moved == 25


class TestPromotion:
    def test_static_promoted_when_crossing_modules(self):
        sources = [
            (
                "lib",
                """
                static int secret(int x) { return x * 3; }
                int expose() { return &secret; }
                """,
            ),
            (
                "main",
                """
                extern int expose();
                int main() { int f = expose(); return f(2); }
                """,
            ),
        ]
        program = compile_program(sources)
        static_proc = program.proc("secret$lib")
        assert static_proc.linkage == LINK_STATIC
        # Simulate code landing in another module that references it.
        instrs = list(program.proc("expose").instructions())
        promoted = promote_referenced_statics(program, instrs, "main")
        assert promoted == 1
        assert static_proc.linkage == LINK_GLOBAL
        verify_program(program)

    def test_same_module_reference_not_promoted(self):
        sources = [
            (
                "lib",
                """
                static int secret(int x) { return x; }
                int use(int x) { return secret(x); }
                int main() { return use(1); }
                """,
            )
        ]
        program = compile_program(sources)
        instrs = list(program.proc("use").instructions())
        promoted = promote_referenced_statics(program, instrs, "lib")
        assert promoted == 0
        assert program.proc("secret$lib").linkage == LINK_STATIC
