"""Interpreter: execution semantics, builtins, frames, errors."""

import pytest

from repro.interp import (
    CodePtr,
    CountingSink,
    ExecError,
    Interpreter,
    StepLimitExceeded,
    run_program,
)
from repro.ir import IRBuilder, Imm, Module, Program, Type

from ..conftest import run_main, single_proc_program


class TestExecution:
    def test_return_value_is_exit_code(self):
        program = single_proc_program(lambda b: b.ret(7))
        assert run_program(program).exit_code == 7

    def test_branching(self):
        def body(b):
            t = b.lt(b.const(1), b.const(2))
            yes, no = b.new_block(), b.new_block()
            b.branch(t, yes, no)
            b.set_block(yes)
            b.ret(10)
            b.set_block(no)
            b.ret(20)

        assert run_program(single_proc_program(body)).exit_code == 10

    def test_memory_roundtrip(self):
        def body(b):
            addr = b.alloca(4)
            b.store(b.binop("add", addr, 2), 77)
            value = b.load(b.binop("add", addr, 2))
            b.ret(value)

        assert run_program(single_proc_program(body)).exit_code == 77

    def test_globals_initialized(self):
        from repro.ir import GlobalVar

        mod = Module("m")
        mod.add_global(GlobalVar("g", 3, [5, 6]))
        b = IRBuilder(mod, "main")
        base = b.mov(b.glob("g"))
        v0 = b.load(base)
        v1 = b.load(b.add(base, 1))
        v2 = b.load(b.add(base, 2))
        b.ret(b.add(b.add(v0, v1), v2))
        assert run_program(Program([mod])).exit_code == 11

    def test_steps_counted(self):
        program = single_proc_program(lambda b: b.ret(0))
        assert run_program(program).steps == 1

    def test_step_limit(self):
        def body(b):
            loop = b.new_block()
            b.jump(loop)
            b.set_block(loop)
            b.jump(loop)

        with pytest.raises(StepLimitExceeded):
            run_program(single_proc_program(body), max_steps=100)

    def test_deep_recursion_overflows_cleanly(self):
        src = """
        int down(int n) { return down(n + 1); }
        int main() { return down(0); }
        """
        with pytest.raises(ExecError) as err:
            run_main(src, max_steps=10_000_000)
        assert "stack overflow" in str(err.value)


class TestCalls:
    def test_arity_mismatch_traps(self):
        mod = Module("m")
        callee = IRBuilder(mod, "f", [("a", Type.INT)])
        callee.ret(callee.reg("a"))
        b = IRBuilder(mod, "main")
        b.call("f", [1, 2])
        b.ret(0)
        with pytest.raises(ExecError):
            run_program(Program([mod]))

    def test_unresolved_external_traps(self):
        mod = Module("m")
        from repro.ir import Signature

        mod.declare_extern("mystery", Signature((), Type.INT))
        b = IRBuilder(mod, "main")
        r = b.call("mystery", [])
        b.ret(r)
        with pytest.raises(ExecError) as err:
            run_program(Program([mod]))
        assert "unresolved external" in str(err.value)

    def test_indirect_call_through_memory(self):
        src = """
        int f(int x) { return x + 1; }
        int slot;
        int main() { slot = &f; int g = slot; return g(41); }
        """
        assert run_main(src).exit_code == 42

    def test_icall_through_non_code_traps(self):
        def body(b):
            r = b.icall(123, [])
            b.ret(r)

        with pytest.raises(ExecError):
            run_program(single_proc_program(body))

    def test_code_pointer_equality(self):
        src = """
        int f(int x) { return x; }
        int g(int x) { return x; }
        int main() {
          int a = &f; int b = &f; int c = &g;
          print_int(a == b); print_int(a == c); print_int(a != c);
          return 0;
        }
        """
        assert run_main(src).output == [1, 0, 1]

    def test_code_pointer_arithmetic_traps(self):
        src = "int f() { return 0; } int main() { int p = &f; return p + 1; }"
        with pytest.raises(ExecError):
            run_main(src)

    def test_site_counts_collected(self):
        src = """
        int f(int x) { return x; }
        int main() { int s = 0; for (int i = 0; i < 5; i++) s += f(i); return s; }
        """
        from repro.frontend import compile_program

        program = compile_program([("main", src)])
        result = run_program(program, collect_site_counts=True)
        assert 5 in [v for v in result.site_counts.values()]

    def test_block_counts_collected(self):
        program = single_proc_program(lambda b: b.ret(0))
        result = run_program(program, collect_block_counts=True)
        assert result.block_counts == {("main", "entry"): 1}


class TestBuiltins:
    def test_print_and_input(self):
        src = """
        int main() {
          print_int(input(0) + input(1));
          print_int(input(99));
          print_int(input_len());
          return 0;
        }
        """
        assert run_main(src, [3, 4]).output == [7, 0, 2]

    def test_exit_stops_program(self):
        src = "int main() { exit(5); print_int(1); return 0; }"
        result = run_main(src)
        assert result.exit_code == 5
        assert result.output == []

    def test_abs(self):
        assert run_main("int main() { return abs(-9) + abs(2); }").exit_code == 11

    def test_sbrk_allocates_distinct_regions(self):
        src = """
        int main() {
          int a = sbrk(4);
          int b = sbrk(4);
          a[0] = 1; b[0] = 2;
          print_int(a[0]); print_int(b[0]);
          print_int(b > a);
          return 0;
        }
        """
        assert run_main(src).output == [1, 2, 1]

    def test_print_type_checking(self):
        # The front end inserts conversions, so drive the builtin with a
        # raw float at the IR level to check the runtime's own guard.
        def body(b):
            b.call("print_int", [b.const(1.5)], dest=False)
            b.ret(0)

        with pytest.raises(ExecError):
            run_program(single_proc_program(body))


class TestEvents:
    def test_counting_sink_sees_everything(self):
        src = """
        int f(int x) { return x * 2; }
        int main() {
          int s = 0;
          for (int i = 0; i < 3; i++) s += f(i);
          print_int(s);
          return 0;
        }
        """
        from repro.frontend import compile_program

        sink = CountingSink()
        program = compile_program([("main", src)])
        result = run_program(program, sink=sink)
        assert sink.instrs == result.steps
        assert sink.calls == result.call_count
        assert sink.returns == 3  # f returns; main's return is the root
        assert sink.branches > 0
