"""Engine × sink matrix: all three engines under every sink family.

The differential suite pins the optimized engines against the
reference with no sink and a recording sink; this file sweeps the full
capability matrix CI's ``engine-matrix`` job runs — each engine in
``ENGINES`` under no sink, :class:`CountingSink` (batched ``on_instr``),
:class:`SamplingSink` (jittered sampling state, call/return exact), and
the :class:`~repro.machine.pa8000.PA8000Model` (every callback live) —
asserting the complete outcome *and* the sink's accumulated state are
identical across engines.  Sink state is the sharp edge: a sink's
counters diverge the moment an engine batches, reorders, or skips a
callback the reference delivers, even when program output matches.

The scheduled deep-fuzz (``python -m repro.interp.fuzz``) is the wide
version of this file: same observation machinery, hundreds of seeds.
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_program
from repro.interp.fuzz import SINK_KINDS, fuzz_one, observe
from repro.interp.interpreter import ENGINES
from repro.workloads.generator import generate_sources
from repro.workloads.suite import get_workload

OPTIMIZED = tuple(e for e in ENGINES if e != "reference")
MATRIX_SEEDS = (0, 3, 9, 14, 23, 31, 42)


@pytest.mark.parametrize("kind", SINK_KINDS)
@pytest.mark.parametrize("engine", OPTIMIZED)
class TestGeneratedMatrix:
    def test_generated_seeds_identical(self, engine, kind):
        failures = []
        for seed in MATRIX_SEEDS:
            failures.extend(fuzz_one(seed, [engine], [kind]))
        assert not failures, failures[0]


@pytest.mark.parametrize("strategy", ("global", "demand"))
@pytest.mark.parametrize("engine", OPTIMIZED)
class TestStrategyMatrix:
    # The fuzz harness's strategy dimension: run full HLO under each
    # strategy first, then demand byte-identical outcomes across all
    # three engines and every sink family — plus the harness's built-in
    # check that the transformed program prints and exits exactly like
    # the unoptimized one.
    def test_hlo_outputs_identical(self, engine, strategy):
        failures = []
        for seed in (0, 9, 42):
            failures.extend(
                fuzz_one(seed, [engine], SINK_KINDS, strategies=[strategy])
            )
        assert not failures, failures[0]


@pytest.mark.parametrize("kind", SINK_KINDS)
@pytest.mark.parametrize("name", ["compress", "sc"])
class TestWorkloadMatrix:
    def test_workload_identical_across_engines(self, name, kind):
        workload = get_workload(name)
        program = workload.compile()
        inputs = list(workload.train_inputs[0])
        observations = {
            engine: observe(program, inputs, engine, kind)
            for engine in ENGINES
        }
        want = observations["reference"]
        for engine in OPTIMIZED:
            assert observations[engine] == want, (
                "{} diverges from reference on {} under {!r} sink".format(
                    engine, name, kind
                )
            )


@pytest.mark.parametrize("kind", SINK_KINDS)
class TestTrapMatrix:
    # Sinks must see identical prefixes even when the run traps or the
    # step limit expires mid-callback-window.
    TRAP = """
    int helper(int x) { return 100 / x; }
    int main() {
      int i = 3;
      while (i > 0 - 2) { print_int(helper(i)); i = i - 1; }
      return 0;
    }
    """

    def test_trap_mid_run(self, kind):
        program = compile_program([("m", self.TRAP)])
        want = observe(program, [], "reference", kind)
        assert want[0][0] == "execerror"
        for engine in OPTIMIZED:
            assert observe(program, [], engine, kind) == want

    def test_step_limit_mid_run(self, kind):
        program = compile_program([("m", self.TRAP)])
        for max_steps in (1, 7, 19):
            want = observe(program, [], "reference", kind, max_steps)
            assert want[0][0] == "steplimit"
            for engine in OPTIMIZED:
                got = observe(program, [], engine, kind, max_steps)
                assert got == want, "max_steps={}".format(max_steps)


class TestZeroCostWhenOff:
    """An unobserved run must carry zero observability residue.

    The codegen engine emits specialized Python per sink capability
    mode; with no sink — or a constructed-but-disabled
    :class:`RuntimeProfiler` — the emitted source must contain no
    callback calls at all, and the disabled profiler must compile to
    the *same* plan as no sink (so attaching one costs nothing until
    it is enabled).
    """

    SOURCES = [(
        "m",
        "int helper(int x) { return x * 2 + 1; }\n"
        "int main() { int i = 0; int acc = 0;\n"
        "  while (i < 50) { acc = acc + helper(i); i = i + 1; }\n"
        "  print_int(acc); return 0; }\n",
    )]

    def test_emitted_source_has_no_callbacks(self):
        from repro.interp.codegen import emitted_source
        from repro.obs.runtime import RuntimeProfiler

        program = compile_program(self.SOURCES)
        unobserved = emitted_source(program, "main", sink=None)
        for callback in ("on_instr", "on_call", "on_return",
                         "on_branch", "on_mem"):
            assert callback not in unobserved
        disabled = emitted_source(
            program, "main", sink=RuntimeProfiler(enabled=False)
        )
        assert disabled == unobserved

    def test_disabled_profiler_costs_nothing_measurable(self):
        # Same engine plan either way, so the walls should be
        # statistically indistinguishable; assert a generous ceiling
        # rather than equality to keep this robust under CI jitter.
        import time

        from repro.interp.interpreter import run_program
        from repro.obs.runtime import RuntimeProfiler

        program = compile_program(self.SOURCES)
        inputs = []

        def best_wall(sink):
            walls = []
            for _ in range(3):
                start = time.perf_counter()
                for _burst in range(5):
                    run_program(
                        program, inputs, sink=sink, engine="codegen"
                    )
                walls.append(time.perf_counter() - start)
            return min(walls)

        run_program(program, inputs, engine="codegen")  # warm the plan
        off = best_wall(None)
        disabled = best_wall(RuntimeProfiler(enabled=False))
        assert disabled <= off * 1.5

    def test_enabled_profiler_observes_the_run(self):
        from repro.interp.interpreter import run_program
        from repro.obs.runtime import RuntimeProfiler

        program = compile_program(self.SOURCES)
        profiler = RuntimeProfiler(rate=1, seed=0)
        run_program(program, [], sink=profiler, engine="codegen")
        assert profiler.events > 0
        assert profiler.call_edges[("main", "helper")] == 50


def test_fuzz_entrypoint_runs_clean():
    # The scheduled CI job shells out to the module; keep a smoke-sized
    # invocation of the real entry point green in tier-1.
    from repro.interp.fuzz import run_fuzz

    assert run_fuzz(range(5), progress_every=0) == []


def test_generator_sources_are_deterministic():
    # Artifact reproduction depends on seed -> sources being stable.
    assert generate_sources(17) == generate_sources(17)
