"""Differential harness: optimized engines against the reference engine.

The pre-decoded engine (:mod:`repro.interp.engine`) and the
source-emitting engine (:mod:`repro.interp.codegen`) carry a strong
claim — bit-identical observable behaviour to the reference loop: the
same :class:`~repro.interp.interpreter.Result` (exit code, output,
steps, every counter), the same sink event stream, and the same
exception outcome (message included) on trapping or step-limited runs.
This module is where that claim is *checked* rather than assumed: it
runs one program under an engine and the reference and compares
everything observable.

Used by ``tests/interp/test_engine_diff.py`` over the whole workload
suite plus seeded generator programs, by the CI engine-matrix job, and
by the deep-fuzz CLI (:mod:`repro.interp.fuzz`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

from ..ir.program import Program
from .errors import ExecError, StepLimitExceeded
from .events import RecordingSink
from .interpreter import DEFAULT_MAX_STEPS, run_program

InputVector = Sequence[Union[int, float]]

#: Engines with the bit-identity claim against "reference".
OPTIMIZED_ENGINES = ("fast", "codegen")


def run_outcome(
    program: Program,
    inputs: InputVector = (),
    engine: str = "fast",
    entry: str = "main",
    max_steps: int = DEFAULT_MAX_STEPS,
    record_events: bool = True,
) -> Tuple[Tuple[Any, ...], List[tuple]]:
    """One engine's complete observable outcome as comparable data.

    Returns ``(outcome, events)``.  ``outcome`` is one of::

        ("result", exit_code, output, steps, call_count,
                   probe_counts, site_counts, block_counts)
        ("steplimit", str(exc))
        ("execerror", str(exc))

    Counter fields are converted to plain dicts so a ``Counter`` from
    one engine compares equal to a plain dict from the other.
    ``events`` is the :class:`RecordingSink` stream (empty when
    ``record_events`` is false — the no-sink configuration, which
    exercises the engines' zero-callback fast paths).
    """
    sink = RecordingSink() if record_events else None
    try:
        result = run_program(
            program, inputs, entry=entry, sink=sink,
            max_steps=max_steps, engine=engine,
        )
    except StepLimitExceeded as exc:
        return ("steplimit", str(exc)), (sink.events if sink else [])
    except ExecError as exc:
        return ("execerror", str(exc)), (sink.events if sink else [])
    outcome = (
        "result",
        result.exit_code,
        tuple(result.output),
        result.steps,
        result.call_count,
        dict(result.probe_counts),
        dict(result.site_counts),
        dict(result.block_counts),
    )
    return outcome, (sink.events if sink else [])


def diff_engines(
    program: Program,
    inputs: InputVector = (),
    entry: str = "main",
    max_steps: int = DEFAULT_MAX_STEPS,
    record_events: bool = True,
    engine: str = "fast",
) -> List[str]:
    """Run ``engine`` and the reference; returns human-readable
    mismatches (empty = ok).

    Each engine gets a fresh interpreter over the same ``program``
    object (plans cached on it are reused across calls, which is the
    production configuration), and, when ``record_events`` is set, its
    own :class:`RecordingSink`.
    """
    opt, opt_events = run_outcome(
        program, inputs, engine=engine, entry=entry,
        max_steps=max_steps, record_events=record_events,
    )
    ref, ref_events = run_outcome(
        program, inputs, engine="reference", entry=entry,
        max_steps=max_steps, record_events=record_events,
    )
    problems: List[str] = []
    if opt[0] != ref[0]:
        problems.append(
            "outcome kind differs: {}={!r} reference={!r}".format(engine, opt, ref)
        )
        return problems
    if opt != ref:
        if opt[0] == "result":
            fields = (
                "exit_code", "output", "steps", "call_count",
                "probe_counts", "site_counts", "block_counts",
            )
            for name, fv, rv in zip(fields, opt[1:], ref[1:]):
                if fv != rv:
                    problems.append(
                        "{} differs: {}={!r} reference={!r}".format(
                            name, engine, fv, rv
                        )
                    )
        else:
            problems.append(
                "{} message differs: {}={!r} reference={!r}".format(
                    opt[0], engine, opt[1], ref[1]
                )
            )
    if opt_events != ref_events:
        position = len(opt_events)
        for index, (fe, re_) in enumerate(zip(opt_events, ref_events)):
            if fe != re_:
                position = index
                break
        problems.append(
            "event streams diverge at index {} ({} has {}, reference {}): "
            "{}={!r} reference={!r}".format(
                position,
                engine,
                len(opt_events),
                len(ref_events),
                engine,
                opt_events[position] if position < len(opt_events) else None,
                ref_events[position] if position < len(ref_events) else None,
            )
        )
    return problems


def assert_identical(
    program: Program,
    inputs: InputVector = (),
    entry: str = "main",
    max_steps: int = DEFAULT_MAX_STEPS,
    label: Optional[str] = None,
    engine: str = "fast",
) -> None:
    """Assert ``engine`` and the reference agree, with and without an
    event sink."""
    for record_events in (False, True):
        problems = diff_engines(
            program, inputs, entry=entry, max_steps=max_steps,
            record_events=record_events, engine=engine,
        )
        if problems:
            raise AssertionError(
                "engines diverge{}{}:\n  {}".format(
                    " on " + label if label else "",
                    " (no sink)" if not record_events else " (recording sink)",
                    "\n  ".join(problems),
                )
            )
