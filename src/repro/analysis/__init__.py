"""Program analyses: call graph, dominators, loops, frequency, side effects."""

from .callgraph import (
    CATEGORIES,
    CROSS_MODULE,
    EXTERNAL,
    INDIRECT,
    RECURSIVE,
    WITHIN_MODULE,
    CallGraph,
    CallSite,
)
from .dominators import dominates, dominator_tree_children, immediate_dominators
from .freq import (
    block_freqs,
    entry_counts,
    profile_block_freqs,
    site_weight,
    static_block_freqs,
)
from .loops import Loop, find_loops, loop_depths, loop_stats
from .manager import AnalysisManager
from .sideeffects import PURE_BUILTINS, side_effect_free_procs

__all__ = [
    "AnalysisManager",
    "CATEGORIES",
    "CROSS_MODULE",
    "CallGraph",
    "CallSite",
    "EXTERNAL",
    "INDIRECT",
    "Loop",
    "PURE_BUILTINS",
    "RECURSIVE",
    "WITHIN_MODULE",
    "block_freqs",
    "dominates",
    "dominator_tree_children",
    "entry_counts",
    "find_loops",
    "immediate_dominators",
    "loop_depths",
    "loop_stats",
    "profile_block_freqs",
    "side_effect_free_procs",
    "site_weight",
    "static_block_freqs",
]
