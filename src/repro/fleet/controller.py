"""The reoptimize controller: drift-gated rebuilds behind a canary.

Decision per round, on the collector's merged profile:

1. **gates** — no rebuild while in post-rollback cooldown, while the
   merged evidence is below the confidence floor (thin evidence would
   just rebuild noise), or while the smoothed drift against the
   profile that produced the serving build sits under the threshold;
2. **rebuild** — a full ``cp`` Toolchain build fed the merged profile
   (:meth:`~repro.linker.toolchain.Toolchain.rebuild_with_profile`),
   observed by a fresh inlining ledger;
3. **canary** — before any instance sees the new build it runs one
   workload shard.  Three tripwires, any of which fails it:
   a **trap** (injected or real), a **cycle regression** beyond
   ``regression_limit`` against the serving build on the same inputs,
   or an **inline-decision ledger anomaly** (ledger total disagreeing
   with the report's sites-considered — the invariant that holds by
   construction unless the build went wrong);
4. **swap or roll back** — pass: the supervisor deploys it fleet-wide.
   Fail: the candidate build id is recorded as rolled-back-from
   (nothing with that id may ever be served), the profile epoch whose
   evidence fed the rebuild is quarantined, and a cooldown suppresses
   rebuild attempts while fresh post-quarantine evidence accumulates.

The rollback ladder mirrors the build-time degradation ladder
(docs/resilience.md): each rung trades optimization freshness for
availability, and the serving build is never left in a worse state
than before the attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..interp.errors import ExecError
from ..linker.toolchain import BuildResult, Toolchain
from ..machine.pa8000 import simulate
from ..obs import BuildObserver, InliningLedger, NULL_OBSERVER
from ..obs import names
from ..profile.database import ProfileDatabase
from ..resilience.faults import FaultInjector
from ..sampling.lifecycle import MIN_PROFILE_CONFIDENCE
from ..serve.client import ServeClient, ServeRequestError
from .drift import DriftTracker, profile_drift
from .instances import ServedBuild

DEFAULT_DRIFT_THRESHOLD = 0.05
DEFAULT_REGRESSION_LIMIT = 0.15
DEFAULT_COOLDOWN_ROUNDS = 2


class _RemoteLedgerView:
    """The ledger-considered count of a daemon-side rebuild.

    Shaped like :class:`InliningLedger` for exactly the one attribute
    the canary's ledger-anomaly tripwire reads.
    """

    __slots__ = ("considered",)

    def __init__(self, considered: int):
        self.considered = considered


@dataclass
class _BuildRecord:
    """A build generation and the profile that produced it."""

    build_id: int
    result: BuildResult
    profile: Optional[ProfileDatabase]  # None: the unprofiled seed build
    canary_cycles: Optional[int] = None  # lazy, on canary inputs


@dataclass
class ControllerAction:
    """What one :meth:`ReoptimizeController.consider` call did."""

    rebuilt: bool = False
    swapped: Optional[ServedBuild] = None
    rolled_back: bool = False
    quarantine_epoch: Optional[int] = None
    reason: str = ""
    build_id: Optional[int] = None  # the candidate, when one was built


class ReoptimizeController:
    """Watches drift, rebuilds, canaries, swaps — or rolls back."""

    def __init__(
        self,
        toolchain: Toolchain,
        canary_inputs: Sequence,
        scope: str = "cp",
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        min_confidence: float = MIN_PROFILE_CONFIDENCE,
        regression_limit: float = DEFAULT_REGRESSION_LIMIT,
        cooldown_rounds: int = DEFAULT_COOLDOWN_ROUNDS,
        drift_alpha: float = 0.5,
        injector: Optional[FaultInjector] = None,
        observer: BuildObserver = NULL_OBSERVER,
        build_client: Optional[ServeClient] = None,
    ):
        self.toolchain = toolchain
        self.build_client = build_client
        self.canary_inputs = list(canary_inputs)
        self.scope = scope
        self.drift_threshold = drift_threshold
        self.min_confidence = min_confidence
        self.regression_limit = regression_limit
        self.cooldown_rounds = cooldown_rounds
        self.injector = injector
        self.observer = observer
        self.drift = DriftTracker(alpha=drift_alpha)
        self.current: Optional[_BuildRecord] = None
        self.previous: Optional[_BuildRecord] = None
        self.rolled_back: Set[int] = set()
        self.rebuilds = 0
        self.rollbacks = 0
        self.swaps = 0
        self.cooldown = 0
        self._next_build_id = 1
        self.history: List[str] = []  # human-readable decision log

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def initial_build(self) -> ServedBuild:
        """The profile-less cross-module build the fleet starts on."""
        result = self.toolchain.build("c", observer=self.observer)
        self.current = _BuildRecord(build_id=0, result=result, profile=None)
        self.history.append("serve build 0 (unprofiled bootstrap)")
        return ServedBuild(0, result.program)

    # ------------------------------------------------------------------
    # Per-round decision
    # ------------------------------------------------------------------

    def consider(
        self,
        merged: Optional[ProfileDatabase],
        epoch: int,
        tick: Optional[int] = None,
    ) -> ControllerAction:
        """Run the gate ladder for one round's merged profile.

        Every return path funnels through the single ledger append
        below, so each round's decision — including the gate
        non-decisions — is in the fleet ledger by construction.
        """
        action = self._consider(merged, epoch)
        self.observer.fleet.decision(
            tick, epoch, action.reason, build_id=action.build_id
        )
        return action

    def _consider(
        self, merged: Optional[ProfileDatabase], epoch: int
    ) -> ControllerAction:
        action = ControllerAction()
        if self.current is None:
            raise RuntimeError("initial_build() must run before consider()")
        if self.cooldown > 0:
            self.cooldown -= 1
            action.reason = "cooldown"
            return action
        if merged is None:
            action.reason = "no-evidence"
            return action
        confidence = merged.overall_confidence()
        self.observer.metrics.gauge(
            names.FLEET_CONFIDENCE, round(confidence, 4)
        )
        raw = profile_drift(self.current.profile, merged)
        smoothed = self.drift.update(raw)
        self.observer.metrics.gauge(names.FLEET_DRIFT, round(smoothed, 4))
        if merged.sampled and confidence < self.min_confidence:
            action.reason = "low-confidence"
            return action
        if smoothed <= self.drift_threshold:
            action.reason = "drift-below-threshold"
            return action
        return self._rebuild(merged, epoch)

    def _rebuild(self, merged: ProfileDatabase, epoch: int) -> ControllerAction:
        action = ControllerAction(rebuilt=True)
        self.rebuilds += 1
        build_id = self._next_build_id
        self._next_build_id += 1
        action.build_id = build_id
        ledger = InliningLedger()
        observer = BuildObserver(
            tracer=self.observer.tracer, metrics=self.observer.metrics,
            ledger=ledger,
        )
        with self.observer.tracer.span(
            "fleet-rebuild", cat="fleet", build=build_id, epoch=epoch
        ):
            result, ledger = self._execute_rebuild(merged, observer, ledger)
        self.observer.metrics.count(names.FLEET_REBUILDS)
        candidate = _BuildRecord(build_id=build_id, result=result, profile=merged)
        with self.observer.tracer.span(
            "fleet-canary", cat="fleet", build=build_id
        ):
            failure = self._canary_failure(candidate, ledger)
        if failure is None:
            self.observer.metrics.count(names.FLEET_CANARY_PASS)
            self.previous = self.current
            self.current = candidate
            self.drift.reset()
            self.swaps += 1
            action.swapped = ServedBuild(build_id, result.program)
            action.reason = "swap"
            self.history.append(
                "swap to build {} (epoch {})".format(build_id, epoch)
            )
            return action
        # Rollback rung: the serving build stays; the candidate is
        # permanently condemned; the evidence that produced it is
        # quarantined; rebuilds pause while fresh evidence accumulates.
        self.observer.metrics.count(names.FLEET_CANARY_FAIL)
        self.observer.metrics.count(names.FLEET_ROLLBACKS)
        self.observer.tracer.instant(
            "fleet-rollback:build{}".format(build_id), cat="fleet"
        )
        self.rolled_back.add(build_id)
        self.rollbacks += 1
        self.cooldown = self.cooldown_rounds
        self.drift.reset()
        action.rolled_back = True
        action.quarantine_epoch = epoch
        action.reason = "rollback:{}".format(failure)
        self.history.append(
            "rollback build {} ({}); quarantine epoch {}".format(
                build_id, failure, epoch
            )
        )
        return action

    def _execute_rebuild(self, merged: ProfileDatabase, observer, ledger):
        """One profile-fed rebuild, locally or via ``--build-server``.

        Returns ``(result, ledger_view)`` where the view carries the
        ledger-considered count for the canary's anomaly check.  A
        daemon that cannot be reached (or sheds the request) degrades
        to a local rebuild — the fleet loop must keep converging when
        its build service is down.
        """
        if self.build_client is not None:
            try:
                result, considered = self.build_client.remote_rebuild(
                    self.toolchain.sources,
                    merged.to_text(),
                    scope=self.scope,
                    engine=getattr(self.toolchain, "engine", "") or "",
                )
            except (ServeRequestError, ConnectionError, OSError) as exc:
                self.history.append(
                    "build-server unavailable ({}); local rebuild".format(exc)
                )
            else:
                if considered is None:
                    considered = result.report.sites_considered
                return result, _RemoteLedgerView(considered)
        result = self.toolchain.rebuild_with_profile(
            merged, scope=self.scope, observer=observer
        )
        return result, ledger

    # ------------------------------------------------------------------
    # Canary
    # ------------------------------------------------------------------

    def _canary_failure(
        self, candidate: _BuildRecord, ledger: InliningLedger
    ) -> Optional[str]:
        """Run the canary tripwires; None means the build may ship."""
        report = candidate.result.report
        if ledger.considered != report.sites_considered:
            return "ledger-anomaly ({} recorded, {} considered)".format(
                ledger.considered, report.sites_considered
            )
        if self.injector is not None and self.injector.canary_trap(
            candidate.build_id
        ):
            return "trap (injected)"
        try:
            metrics, result = simulate(
                candidate.result.program, self.canary_inputs,
                engine=candidate.result.engine,
            )
        except ExecError as exc:
            return "trap ({})".format(exc)
        if result.exit_code is None:
            return "canary did not exit"
        candidate.canary_cycles = metrics.cycles
        baseline = self._current_canary_cycles()
        if baseline is not None and baseline > 0:
            regression = (metrics.cycles - baseline) / float(baseline)
            if regression > self.regression_limit:
                return "cycle-regression {:+.1%} (limit {:.0%})".format(
                    regression, self.regression_limit
                )
        return None

    def _current_canary_cycles(self) -> Optional[int]:
        record = self.current
        if record is None:
            return None
        if record.canary_cycles is None:
            try:
                metrics, _result = simulate(
                    record.result.program, self.canary_inputs,
                    engine=record.result.engine,
                )
            except ExecError:
                return None
            record.canary_cycles = metrics.cycles
        return record.canary_cycles
