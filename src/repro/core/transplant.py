"""Body-duplication machinery shared by the inliner and the cloner.

Both transforms copy a procedure body: inlining splices it into the
caller's CFG (registers and labels renamed, parameters bound by moves,
returns rewired to a continuation block); cloning copies it into a new
procedure (names kept, specialized parameters bound by moves in the
entry).  Both must:

- allocate fresh call-site ids for copied call instructions (preserving
  ``origin`` so reports can attribute them),
- scale profile counts: the copy inherits the share of the callee's
  counts attributable to the moved call traffic, and the original keeps
  the remainder (flow conservation is property-tested),
- promote module-static symbols referenced by code that moves across a
  module boundary (Section 2.3: "this information must be promoted to
  global scope").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.instructions import Call, ICall, Instr
from ..ir.module import Module
from ..ir.procedure import LINK_GLOBAL, LINK_STATIC, Procedure
from ..ir.program import Program
from ..ir.values import FuncRef, GlobalRef, Operand, Reg


class BlockSnapshot:
    """An immutable copy of a procedure body taken before any edits."""

    __slots__ = ("entry", "blocks", "param_names", "entry_count")

    def __init__(self, proc: Procedure):
        self.entry = proc.entry
        self.param_names = [name for name, _ in proc.params]
        self.blocks: List[Tuple[str, List[Instr], Optional[int]]] = [
            (label, [instr.copy() for instr in block.instrs], block.profile_count)
            for label, block in proc.blocks.items()
        ]
        entry_block = proc.blocks.get(proc.entry) if proc.entry else None
        self.entry_count = entry_block.profile_count if entry_block else None


def fresh_names(existing: set, count: int, prefix: str) -> List[str]:
    """``count`` names not present in ``existing`` (which is updated)."""
    names = []
    counter = 0
    while len(names) < count:
        candidate = "{}{}".format(prefix, counter)
        counter += 1
        if candidate not in existing:
            existing.add(candidate)
            names.append(candidate)
    return names


def scale_count(count: Optional[int], ratio: float) -> Optional[int]:
    if count is None:
        return None
    return int(round(count * ratio))


def transfer_ratio(site_count: Optional[int], entry_count: Optional[int]) -> Optional[float]:
    """Fraction of the callee's traffic moving to the copy, if known."""
    if site_count is None or entry_count is None or entry_count <= 0:
        return None
    return min(1.0, site_count / entry_count)


def promote_referenced_statics(
    program: Program,
    instrs: List[Instr],
    destination_module: str,
    on_promote: Optional[Callable[[str], None]] = None,
) -> int:
    """Promote statics referenced by code landing in ``destination_module``.

    Returns the number of symbols promoted.  Mangled names are already
    program-unique, so promotion is purely a linkage flip (the paper
    additionally renames; our front end pre-uniquified).
    """
    promoted = 0

    def consider_proc(name: str) -> None:
        nonlocal promoted
        target = program.proc(name)
        if target is not None and target.linkage == LINK_STATIC:
            if target.module != destination_module:
                target.linkage = LINK_GLOBAL
                promoted += 1
                if on_promote:
                    on_promote("@" + name)

    def consider_global(name: str) -> None:
        nonlocal promoted
        gvar = program.global_var(name)
        if gvar is not None and gvar.linkage == LINK_STATIC:
            if gvar.module != destination_module:
                gvar.linkage = LINK_GLOBAL
                promoted += 1
                if on_promote:
                    on_promote("$" + name)

    for instr in instrs:
        if isinstance(instr, Call):
            consider_proc(instr.callee)
        for op in instr.uses():
            if isinstance(op, FuncRef):
                consider_proc(op.name)
            elif isinstance(op, GlobalRef):
                consider_global(op.name)
    return promoted


def splice_body(
    program: Program,
    caller: Procedure,
    caller_module: Module,
    snapshot: BlockSnapshot,
    args: List[Operand],
    result_reg: Optional[Reg],
    continue_label: str,
    count_ratio: Optional[float],
    on_promote: Optional[Callable[[str], None]] = None,
) -> str:
    """Splice a snapshot of a callee body into ``caller``.

    Returns the label of the landing block (parameter binding followed
    by a jump into the copied entry).  The caller must already have
    been split so that ``continue_label`` receives the returns.
    """
    from ..ir.instructions import Jump, Mov, Ret

    existing_regs = caller.reg_names()
    existing_labels = set(caller.blocks)

    # Fresh register names for every register the snapshot defines or
    # uses (parameters included — they become ordinary registers).
    snap_regs = set(snapshot.param_names)
    for _label, instrs, _count in snapshot.blocks:
        for instr in instrs:
            if instr.dest is not None:
                snap_regs.add(instr.dest.name)
            for op in instr.uses():
                if isinstance(op, Reg):
                    snap_regs.add(op.name)
    ordered = sorted(snap_regs)
    new_names = fresh_names(existing_regs, len(ordered), "i")
    reg_map = {old: Reg(new) for old, new in zip(ordered, new_names)}

    label_names = fresh_names(existing_labels, len(snapshot.blocks) + 1, "il")
    label_map = {
        old: new for (old, _i, _c), new in zip(snapshot.blocks, label_names[:-1])
    }
    landing_label = label_names[-1]

    def rename(op: Operand) -> Operand:
        if isinstance(op, Reg):
            return reg_map.get(op.name, op)
        return op

    cross_module = []
    for old_label, instrs, count in snapshot.blocks:
        new_block = BasicBlock(label_map[old_label])
        new_block.profile_count = (
            scale_count(count, count_ratio) if count_ratio is not None else count
        )
        for instr in instrs:
            copied = instr.copy()
            if isinstance(copied, Ret):
                if copied.value is not None and result_reg is not None:
                    value = copied.value
                    if isinstance(value, Reg):
                        value = reg_map.get(value.name, value)
                    mov = Mov(result_reg, value)
                    new_block.instrs.append(mov)
                    cross_module.append(mov)  # a returned FuncRef/GlobalRef
                new_block.instrs.append(Jump(continue_label))
                break  # nothing follows a terminator
            copied.map_operands(rename)
            if copied.dest is not None:
                copied.dest = reg_map.get(copied.dest.name, copied.dest)
            copied.retarget(label_map)
            if isinstance(copied, (Call, ICall)):
                # ``origin`` was preserved by copy(); only the site id
                # must be unique in the receiving module.
                copied.site_id = caller_module.new_site_id()
            new_block.instrs.append(copied)
            cross_module.append(copied)
        caller.blocks[new_block.label] = new_block

    # Landing block: bind parameters, then enter the copied entry.
    landing = BasicBlock(landing_label)
    for param_name, arg in zip(snapshot.param_names, args):
        landing.instrs.append(Mov(reg_map[param_name], arg))
    landing.instrs.append(Jump(label_map[snapshot.entry]))
    caller.blocks[landing_label] = landing

    promote_referenced_statics(program, cross_module, caller.module, on_promote)
    return landing_label


def copy_into_new_proc(
    program: Program,
    clonee: Procedure,
    clonee_module: Module,
    clone_name: str,
    bound_params: Dict[int, Operand],
    count_ratio: Optional[float],
    on_promote: Optional[Callable[[str], None]] = None,
) -> Procedure:
    """Create a clone of ``clonee`` with ``bound_params`` specialized.

    The clone keeps the clonee's register and label names (it is a new
    procedure, so there is no collision), drops the bound parameters
    from its signature, and materializes their values with moves in a
    fresh entry block.  The clone is placed in the clonee's module with
    global linkage (its mangled name is unique program-wide).
    """
    from ..ir.instructions import Jump, Mov

    params = [p for i, p in enumerate(clonee.params) if i not in bound_params]
    clone = Procedure(
        clone_name,
        params,
        ret_type=clonee.ret_type,
        module=clonee.module,
        linkage=LINK_GLOBAL,
        attrs=set(clonee.attrs),
    )

    snapshot = BlockSnapshot(clonee)
    moved_instrs: List[Instr] = []
    for label, instrs, count in snapshot.blocks:
        block = BasicBlock(label)
        block.profile_count = (
            scale_count(count, count_ratio) if count_ratio is not None else count
        )
        for instr in instrs:
            if isinstance(instr, (Call, ICall)):
                instr.site_id = clonee_module.new_site_id()
            block.instrs.append(instr)
            moved_instrs.append(instr)
        clone.blocks[label] = block
    clone.entry = snapshot.entry

    # Specialization prologue: bind the cloned-in parameters.
    prologue_label = clone.new_label("spec")
    prologue = BasicBlock(prologue_label)
    for position, value in sorted(bound_params.items()):
        name = clonee.params[position][0]
        prologue.instrs.append(Mov(Reg(name), value))
    prologue.instrs.append(Jump(clone.entry))
    clone.blocks[prologue_label] = prologue
    clone.entry = prologue_label
    prologue.profile_count = clone.blocks[snapshot.entry].profile_count

    # Constants that were only visible in a caller's module may now sit
    # in this module; promote statics they reference.
    promote_referenced_statics(
        program, list(prologue.instrs) + moved_instrs, clonee.module, on_promote
    )
    return clone


def subtract_moved_counts(proc: Procedure, ratio: Optional[float]) -> None:
    """Reduce a procedure's counts by the share moved into a copy."""
    if ratio is None:
        return
    keep = max(0.0, 1.0 - ratio)
    for block in proc.blocks.values():
        if block.profile_count is not None:
            block.profile_count = int(round(block.profile_count * keep))
