"""Demand-driven region formation and the region-scoped planner.

The ``strategy="demand"`` pipeline (docs/performance.md, "Inlining
strategies") replaces the global multi-pass clone/inline loop with
profile-hot regions optimized under per-region budgets.  These tests
pin the properties the scale bench relies on: regions are disjoint and
capped, cold procedures never join a region, the shared budget's
incremental accounting stays exact, and the strategy preserves
behavior on arbitrary generated programs.
"""

import pytest

from repro.core import HLOConfig, run_hlo
from repro.core.budget import Budget, program_cost
from repro.core.cloner import CloneDatabase
from repro.core.regions import demand_stage, form_regions
from repro.core.report import HLOReport
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import verify_program
from repro.linker.toolchain import Toolchain
from repro.workloads.generator import generate_sources

HOT_COLD = [(
    "m",
    """
    int hot(int x) { return x * 3 + 1; }
    int lukewarm(int x) { return hot(x) - 2; }
    int cold(int x) { return x - 7; }
    int main() {
      int total = 0;
      for (int i = 0; i < 500; i++) total = total + lukewarm(i);
      if (input(0) > 0) total = total + cold(total);
      print_int(total);
      return 0;
    }
    """,
)]


def _trained(sources, train_input=(0,)):
    """An exact profile for ``sources`` (cold paths stay at zero)."""
    profile, _ = Toolchain(
        [list(pair) for pair in sources],
        train_inputs=[list(train_input)],
        jobs=1,
    )._train()
    return profile


def _regions_for(sources, config, counts):
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.freq import entry_counts

    program = compile_program(sources)
    graph = CallGraph(program)
    entry = entry_counts(program, graph, counts)
    return program, form_regions(program, config, graph, entry, {}, counts)


class TestFormation:
    def test_regions_are_disjoint_and_capped(self):
        profile = _trained(HOT_COLD)
        config = HLOConfig(strategy="demand")
        _, regions = _regions_for(HOT_COLD, config, profile.site_counts)
        assert regions
        assert len(regions) <= config.region_limit
        seen = set()
        for region in regions:
            assert not (region.procs & seen)
            seen |= region.procs

    def test_cold_proc_never_seeds_a_region(self):
        # cold() is statically reachable but its guarding branch never
        # fires at train time: the planner must not seed a region from
        # it (it may still be pulled into a caller's region — membership
        # costs nothing; transforming its dead site would, see below).
        profile = _trained(HOT_COLD)
        config = HLOConfig(strategy="demand")
        _, regions = _regions_for(HOT_COLD, config, profile.site_counts)
        assert "cold" not in {r.seed for r in regions}
        members = set().union(*(r.procs for r in regions))
        assert "hot" in members or "lukewarm" in members

    def test_no_profile_means_static_heat(self):
        # Without counts the planner falls back to static frequency
        # estimates; the loop-resident call chain still forms a region.
        config = HLOConfig(strategy="demand")
        _, regions = _regions_for(HOT_COLD, config, None)
        assert regions


class TestDemandStage:
    def _run_stage(self, sources, config, counts):
        program = compile_program(sources)
        budget = Budget(program, config.budget_percent, config.pass_limit)
        report = HLOReport()
        performed = demand_stage(
            program, config, budget, report, CloneDatabase(),
            site_counts=counts,
        )
        return program, budget, report, performed

    def test_incremental_budget_matches_program_cost(self):
        # The stage charges the shared budget incrementally (size^2
        # deltas over mutated procs) instead of recomputing the whole
        # program cost per region; the two must agree exactly.
        profile = _trained(HOT_COLD)
        config = HLOConfig(strategy="demand")
        program, budget, report, performed = self._run_stage(
            HOT_COLD, config, profile.site_counts
        )
        assert performed > 0
        assert budget.current == pytest.approx(program_cost(program))
        verify_program(program)

    def test_hot_call_sites_transformed(self):
        profile = _trained(HOT_COLD)
        config = HLOConfig(strategy="demand")
        program, _, report, performed = self._run_stage(
            HOT_COLD, config, profile.site_counts
        )
        assert report.regions_formed >= 1
        assert report.inlines + report.clones == performed

    def test_measured_cold_site_left_alone(self):
        # The never-taken cold() call sits inside main's region, but a
        # zero-weight site yields no benefit: demand must leave it (and
        # the cold procedure) exactly as the front end emitted them.
        from repro.ir import Call

        profile = _trained(HOT_COLD)
        config = HLOConfig(strategy="demand")
        program, _, _, _ = self._run_stage(
            HOT_COLD, config, profile.site_counts
        )
        assert program.proc("cold") is not None
        main = program.proc("main")
        callees = [
            instr.callee
            for block in main.blocks.values()
            for instr in block.instrs
            if isinstance(instr, Call)
        ]
        assert "cold" in callees

    def test_zero_region_budget_blocks_transforms(self):
        profile = _trained(HOT_COLD)
        loose = HLOConfig(strategy="demand")
        tight = HLOConfig(strategy="demand", region_budget_percent=0.0)
        _, _, _, with_budget = self._run_stage(
            HOT_COLD, loose, profile.site_counts
        )
        _, _, report, without = self._run_stage(
            HOT_COLD, tight, profile.site_counts
        )
        assert without <= with_budget
        assert report.region_budget_exhausted >= 0


class TestStrategyDriver:
    @pytest.mark.parametrize("seed", (0, 9, 23, 42))
    def test_demand_preserves_behavior(self, seed):
        sources = generate_sources(seed)
        before = run_program(compile_program(sources)).behavior()
        program = compile_program(sources)
        run_hlo(program, HLOConfig(strategy="demand"))
        verify_program(program)
        assert run_program(program).behavior() == before

    def test_demand_is_deterministic(self):
        from repro.ir.printer import print_module

        def build():
            program = compile_program(generate_sources(7))
            run_hlo(program, HLOConfig(strategy="demand"))
            return "".join(
                print_module(module) for module in program.modules.values()
            )

        assert build() == build()

    def test_unknown_strategy_rejected(self):
        program = compile_program(HOT_COLD)
        with pytest.raises(ValueError):
            run_hlo(program, HLOConfig(strategy="eager"))

    def test_default_strategy_is_global(self):
        assert HLOConfig().strategy == "global"
