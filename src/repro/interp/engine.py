"""Pre-decoded threaded-dispatch execution engine (``engine="fast"``).

The reference interpreter loop re-fetches blocks by label, re-decodes
operands, and tests for a sink on every instruction.  This module
compiles each procedure once into an :class:`ExecPlan` — per-block lists
of bound Python closures with all of that decoding done ahead of time
(classic threaded-code / pre-decoding, cf. Ertl & Gregg):

- register names are resolved to integer *slots* into a flat list,
- immediates, global addresses, and function references are folded to
  constants (the globals layout is deterministic per program; a
  program-level globals signature guards the embedded addresses),
- straight-line instruction runs become *segments* that are fused into
  the call/branch/jump/ret part that follows them, so a typical basic
  block executes as ONE closure with ONE batched step-limit check (an
  exact per-instruction replay handles the case where the limit falls
  inside the segment),
- block successors are pre-linked to plan blocks, so the label->block
  dict lookup leaves the inner loop entirely,
- sink capability flags (:class:`~repro.interp.events.EventSink`) are
  burned into the compiled closures: modes that need no callback carry
  no callback code at all, and ``batch_instr`` sinks get their
  ``on_instr`` events replayed one segment at a time.

Plans are cached on the :class:`~repro.ir.Program` (keyed by procedure
name and sink-capability mode) and validated against a procedure
fingerprint on every run, so repeated train/eval runs over an unchanged
build reuse decoded code while transforms transparently invalidate it.

Observable behaviour — ``Result`` fields, sink event streams, trap
messages and positions — is kept identical to the reference engine and
is asserted by the differential harness (:mod:`repro.interp.diff`).
The one documented divergence: when a run *traps* (raises ``ExecError``
mid-segment), ``Interpreter.steps`` may count the whole segment rather
than stopping at the faulting instruction; no ``Result`` is produced on
those paths.  ``StepLimitExceeded`` itself is exact.
"""

from __future__ import annotations

import hashlib
import operator
from typing import Any, Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Jump,
    Load,
    Mov,
    Probe,
    Ret,
    Store,
    UnOp,
)
from ..ir.ops import INT_MASK, INT_MAX, EvalError, eval_binop, eval_unop, wrap_int
from ..ir.printer import print_proc
from ..ir.procedure import ATTR_VARARGS, Procedure
from ..ir.values import FuncRef, GlobalRef, Imm, Reg
from .errors import ExecError, StepLimitExceeded
from .memory import CodePtr

# interpreter.py never imports this module at top level (the fast path
# is loaded lazily from Interpreter.run), so this import is cycle-free.
from .interpreter import STACK_LIMIT_FRAMES as _STACK_LIMIT  # noqa: E402
from .interpreter import Result, _Exit  # noqa: E402

_MASK = INT_MASK
_IMAX = INT_MAX
_TWO64 = 1 << 64

# Unique sentinels.  _UNSET fills never-written register slots (reads of
# it raise the reference engine's unset-register trap); the others drive
# the part protocol of the executor loop.
_UNSET = object()
_ENTER = object()
_RETURN = object()
_DONE = object()
_MISS = object()

# Shared empty varargs list for non-varargs frames.  The varargs
# builtins only ever read ``frame.varargs``, so sharing one list avoids
# an allocation per call.
_NO_VARARGS: List[Any] = []


def _fingerprint(proc: Procedure) -> str:
    """Content hash of a procedure's printed form (plan invalidation)."""
    return hashlib.sha256(print_proc(proc).encode("utf-8")).hexdigest()


def sink_mode(sink) -> Tuple[bool, bool, bool, bool, bool, bool]:
    """The capability mode tuple a plan is specialized (and keyed) on:
    ``(exact_instr, batch_instr, branch, call, ret, mem)``."""
    if sink is None:
        return (False, False, False, False, False, False)
    needs_instr = bool(sink.needs_instr)
    batch = needs_instr and bool(sink.batch_instr)
    return (
        needs_instr and not batch,
        batch,
        bool(sink.needs_branch),
        bool(sink.needs_call),
        bool(sink.needs_return),
        bool(sink.needs_mem),
    )


def _unset(name: str, procname: str) -> None:
    raise ExecError("read of unset register %{} in @{}".format(name, procname))


# ----------------------------------------------------------------------
# Binary-op micro-op bodies.  The int/int fast path is inlined; every
# other case funnels through _binop_slow, which replicates the reference
# engine's evaluation order and error messages exactly.
# ----------------------------------------------------------------------


def _binop_slow(regs, d, op, x, y, ln, rn, pn, lb, ix):
    if x is _UNSET:
        _unset(ln, pn)
    if y is _UNSET:
        _unset(rn, pn)
    if isinstance(x, CodePtr) or isinstance(y, CodePtr):
        if op == "eq":
            regs[d] = 1 if x == y else 0
            return
        if op == "ne":
            regs[d] = 0 if x == y else 1
            return
        raise ExecError("arithmetic on code pointer", pn, lb, ix)
    try:
        regs[d] = eval_binop(op, x, y)
    except (EvalError, TypeError) as ex:
        raise ExecError(str(ex), pn, lb, ix)


def _arith_factory(iop):
    def make(d, ls, lc, ln, rs, rc, rn, op, pn, lb, ix):
        def mo(st, regs, _d=d, _ls=ls, _lc=lc, _rs=rs, _rc=rc, _iop=iop):
            x = regs[_ls] if _ls >= 0 else _lc
            y = regs[_rs] if _rs >= 0 else _rc
            if type(x) is int and type(y) is int:
                v = _iop(x, y) & _MASK
                regs[_d] = v - _TWO64 if v > _IMAX else v
            else:
                _binop_slow(regs, _d, op, x, y, ln, rn, pn, lb, ix)

        return mo

    return make


def _bitwise_factory(iop):
    def make(d, ls, lc, ln, rs, rc, rn, op, pn, lb, ix):
        def mo(st, regs, _d=d, _ls=ls, _lc=lc, _rs=rs, _rc=rc, _iop=iop):
            x = regs[_ls] if _ls >= 0 else _lc
            y = regs[_rs] if _rs >= 0 else _rc
            if type(x) is int and type(y) is int:
                v = _iop(x & _MASK, y & _MASK)
                regs[_d] = v - _TWO64 if v > _IMAX else v
            else:
                _binop_slow(regs, _d, op, x, y, ln, rn, pn, lb, ix)

        return mo

    return make


def _cmp_factory(cop):
    def make(d, ls, lc, ln, rs, rc, rn, op, pn, lb, ix):
        def mo(st, regs, _d=d, _ls=ls, _lc=lc, _rs=rs, _rc=rc, _cop=cop):
            x = regs[_ls] if _ls >= 0 else _lc
            y = regs[_rs] if _rs >= 0 else _rc
            if type(x) is int and type(y) is int:
                regs[_d] = 1 if _cop(x, y) else 0
            else:
                _binop_slow(regs, _d, op, x, y, ln, rn, pn, lb, ix)

        return mo

    return make


def _generic_binop(d, ls, lc, ln, rs, rc, rn, op, pn, lb, ix):
    def mo(st, regs, _d=d, _ls=ls, _lc=lc, _rs=rs, _rc=rc):
        x = regs[_ls] if _ls >= 0 else _lc
        y = regs[_rs] if _rs >= 0 else _rc
        _binop_slow(regs, _d, op, x, y, ln, rn, pn, lb, ix)

    return mo


def _div_binop(d, ls, lc, ln, rs, rc, rn, op, pn, lb, ix):
    is_mod = op == "mod"

    def mo(st, regs, _d=d, _ls=ls, _lc=lc, _rs=rs, _rc=rc, _m=is_mod):
        x = regs[_ls] if _ls >= 0 else _lc
        y = regs[_rs] if _rs >= 0 else _rc
        if type(x) is int and type(y) is int and y != 0:
            # C-style truncation toward zero (cf. ops._trunc_div).
            q = abs(x) // abs(y)
            if (x < 0) != (y < 0):
                q = -q
            v = (x - q * y) if _m else q
            v &= _MASK
            regs[_d] = v - _TWO64 if v > _IMAX else v
        else:
            _binop_slow(regs, _d, op, x, y, ln, rn, pn, lb, ix)

    return mo


def _shift_binop(d, ls, lc, ln, rs, rc, rn, op, pn, lb, ix):
    is_shl = op == "shl"

    def mo(st, regs, _d=d, _ls=ls, _lc=lc, _rs=rs, _rc=rc, _shl=is_shl):
        x = regs[_ls] if _ls >= 0 else _lc
        y = regs[_rs] if _rs >= 0 else _rc
        if type(x) is int and type(y) is int:
            if _shl:
                v = ((x & _MASK) << (y % 64)) & _MASK
            else:
                v = (x >> (y % 64)) & _MASK
            regs[_d] = v - _TWO64 if v > _IMAX else v
        else:
            _binop_slow(regs, _d, op, x, y, ln, rn, pn, lb, ix)

    return mo


_BINOP_FACTORIES = {
    "add": _arith_factory(operator.add),
    "sub": _arith_factory(operator.sub),
    "mul": _arith_factory(operator.mul),
    "div": _div_binop,
    "mod": _div_binop,
    "shl": _shift_binop,
    "shr": _shift_binop,
    "and": _bitwise_factory(operator.and_),
    "or": _bitwise_factory(operator.or_),
    "xor": _bitwise_factory(operator.xor),
    "eq": _cmp_factory(operator.eq),
    "ne": _cmp_factory(operator.ne),
    "lt": _cmp_factory(operator.lt),
    "le": _cmp_factory(operator.le),
    "gt": _cmp_factory(operator.gt),
    "ge": _cmp_factory(operator.ge),
}


# ----------------------------------------------------------------------
# Plan data structures
# ----------------------------------------------------------------------


class PlanBlock:
    """A pre-decoded basic block: a list of *part* closures.

    Each part returns ``None`` (fall through to the next part), a
    ``PlanBlock`` (control transfer), or one of the executor sentinels
    (_ENTER/_RETURN/_DONE).  ``key`` is the ``block_counts`` key, or
    ``None`` for the synthetic missing-block trampoline.
    """

    __slots__ = ("label", "key", "parts")

    def __init__(self, label: str, key):
        self.label = label
        self.key = key
        self.parts: List[Any] = []


class ExecPlan:
    """A procedure compiled for one sink-capability mode."""

    __slots__ = (
        "proc",
        "entry",
        "blocks",
        "nslots",
        "param_slots",
        "nparams",
        "is_varargs",
        "simple_frame",
        "pad",
        "fingerprint",
        "mode",
    )

    def __init__(self, proc: Procedure, mode, fingerprint: str):
        self.proc = proc
        self.mode = mode
        self.fingerprint = fingerprint
        self.blocks: Dict[str, PlanBlock] = {}
        self.entry: Optional[PlanBlock] = None
        self.nslots = 0
        self.param_slots: List[int] = []
        self.nparams = len(proc.params)
        self.is_varargs = ATTR_VARARGS in proc.attrs
        # simple_frame: non-varargs with params occupying the slot
        # prefix in order — the call part then builds the register file
        # by extending the freshly built argument list with ``pad``
        # (pre-sized _UNSET filler) instead of scattering through
        # param_slots.  Duplicate parameter names (slot reuse) fall back
        # to the generic push.
        self.simple_frame = False
        self.pad: tuple = ()


class PlanCache:
    """Per-program plan store, attached to ``Program._plan_cache``.

    Keyed by ``(procedure name, mode)``; entries self-validate against
    the procedure's content fingerprint on lookup, and the whole cache
    is cleared when the program's globals layout signature changes
    (plans embed resolved global addresses).
    """

    __slots__ = ("plans", "globals_sig", "plans_compiled", "cache_hits")

    def __init__(self) -> None:
        self.plans: Dict[Tuple[str, tuple], ExecPlan] = {}
        self.globals_sig = None
        self.plans_compiled = 0
        self.cache_hits = 0

    def check_globals(self, program) -> None:
        sig = tuple((g.name, g.size) for g in program.all_globals())
        if self.globals_sig != sig:
            self.plans.clear()
            self.globals_sig = sig

    def get_plan(self, proc: Procedure, mode, global_addrs) -> ExecPlan:
        key = (proc.name, mode)
        plan = self.plans.get(key)
        fp = _fingerprint(proc)
        if plan is not None and plan.fingerprint == fp:
            self.cache_hits += 1
            return plan
        plan = _PlanCompiler(proc, mode, global_addrs, fp).compile()
        self.plans[key] = plan
        self.plans_compiled += 1
        return plan


class _BadOperand(Exception):
    """Compile-time marker: an operand cannot be pre-resolved (unknown
    global / unknown operand class); the instruction compiles to a
    closure that traps at the reference engine's exact raise point."""

    def __init__(self, specs):
        self.specs = specs
        super().__init__("bad operand")


def _raise_walk(specs, procname, label, idx):
    """Replicate reference operand evaluation for a trapping instruction:
    walk the operand specs in evaluation order, raising where the
    reference engine would.  Spec kinds: 0 slot, 1 const, 2 unknown
    global, 3 icall non-code check, 4 unknown operand class."""

    def mo(st, regs):
        last = None
        for spec in specs:
            k = spec[0]
            if k == 0:
                v = regs[spec[1]]
                if v is _UNSET:
                    _unset(spec[2], procname)
                last = v
            elif k == 1:
                last = spec[1]
            elif k == 2:
                raise ExecError("unknown global ${}".format(spec[1]))
            elif k == 3:
                if not isinstance(last, CodePtr):
                    raise ExecError(
                        "indirect call through non-code value {!r}".format(last),
                        procname,
                        label,
                        idx,
                    )
            else:
                raise ExecError("unknown operand {!r}".format(spec[1]))
        raise ExecError(
            "internal: trapping instruction fell through"
        )  # pragma: no cover

    return mo


def _replay(st, frame, ops, events, fire_instr):
    """Exact per-instruction execution of a segment whose batched step
    check found the limit inside it.  Mirrors the reference loop: bump,
    check, (on_instr), execute — so the raise position and the event
    stream are identical to ``engine="reference"``."""
    regs = frame.regs
    steps = st.steps
    max_steps = st.max_steps
    sink = st.sink
    i = 0
    try:
        for op in ops:
            ev = events[i]
            steps += 1
            if steps > max_steps:
                raise StepLimitExceeded(
                    "step limit {} exceeded".format(max_steps),
                    ev[0].name,
                    ev[1],
                    ev[2],
                )
            if fire_instr:
                sink.on_instr(ev[0], ev[1], ev[2], ev[3])
            op(st, regs)
            i += 1
    finally:
        st.steps = steps
    # Reached when the limit lands exactly on the fused boundary
    # instruction: the segment itself completes, _seg_overflow raises.
    return None


def _wrap_instr_op(op, ev):
    """Exact-instr mode: weave the ``on_instr`` delivery into the
    micro-op itself, so fused fast paths run one uniform op loop."""

    def w(st, regs, _op=op, _e=ev):
        e = _e
        st.sink.on_instr(e[0], e[1], e[2], e[3])
        _op(st, regs)

    return w


def _batch_firer(events):
    """Batch mode: a pseudo-op that replays a segment's ``on_instr``
    events in order before the segment body executes."""

    def w(st, regs, _ev=events):
        on_i = st.sink.on_instr
        for e in _ev:
            on_i(e[0], e[1], e[2], e[3])

    return w


def _seg_overflow(st, frame, ops, events, fire_instr, pn, lb, ix):
    """The batched step check of a fused segment+boundary part found the
    limit.  Replay the segment exactly (raising at the precise inner
    instruction when the limit falls there), then account the boundary
    instruction's own step and raise at the boundary.  Never returns."""
    _replay(st, frame, ops, events, fire_instr)
    st.steps += 1
    raise StepLimitExceeded(
        "step limit {} exceeded".format(st.max_steps), pn, lb, ix
    )


# ----------------------------------------------------------------------
# Plan compiler
# ----------------------------------------------------------------------

_TERMINATORS = (Branch, Jump, Ret)


class _PlanCompiler:
    def __init__(self, proc: Procedure, mode, global_addrs, fingerprint: str):
        self.proc = proc
        self.procname = proc.name
        self.mode = mode
        self.f_instr, self.f_batch, self.f_branch, self.f_call, self.f_ret, self.f_mem = mode
        # Terminators and calls deliver their own on_instr inline in
        # both the exact and the batched mode.
        self.fire_boundary = self.f_instr or self.f_batch
        self.global_addrs = global_addrs
        self.plan = ExecPlan(proc, mode, fingerprint)
        self.slots: Dict[str, int] = {}
        self.missing: Dict[str, PlanBlock] = {}

    # -- operand resolution --------------------------------------------

    def _assign_slots(self) -> None:
        slots = self.slots
        for name, _ty in self.proc.params:
            if name not in slots:
                slots[name] = len(slots)
        self.plan.param_slots = [slots[name] for name, _ in self.proc.params]
        for block in self.proc.blocks.values():
            for instr in block.instrs:
                dest = instr.dest
                if dest is not None and dest.name not in slots:
                    slots[dest.name] = len(slots)
                for used in instr.uses():
                    if used.__class__ is Reg and used.name not in slots:
                        slots[used.name] = len(slots)
        plan = self.plan
        plan.nslots = len(slots)
        plan.simple_frame = not plan.is_varargs and plan.param_slots == list(
            range(plan.nparams)
        )
        if plan.simple_frame:
            plan.pad = (_UNSET,) * (plan.nslots - plan.nparams)

    def _rop(self, op):
        """Resolve one operand to ``(slot, const, regname)``; slot is -1
        for constants.  Raises _BadOperand for unresolvable operands."""
        cls = op.__class__
        if cls is Reg:
            return (self.slots[op.name], None, op.name)
        if cls is Imm:
            return (-1, op.value, None)
        if cls is GlobalRef:
            addr = self.global_addrs.get(op.name)
            if addr is None:
                raise _BadOperand(None)
            return (-1, addr, None)
        if cls is FuncRef:
            return (-1, CodePtr(op.name), None)
        raise _BadOperand(None)

    def _spec(self, op):
        """Raising-path operand spec (see _raise_walk)."""
        cls = op.__class__
        if cls is Reg:
            return (0, self.slots[op.name], op.name)
        if cls is Imm:
            return (1, op.value)
        if cls is GlobalRef:
            addr = self.global_addrs.get(op.name)
            if addr is None:
                return (2, op.name)
            return (1, addr)
        if cls is FuncRef:
            return (1, CodePtr(op.name))
        return (4, op)

    def _raising_specs(self, instr):
        cls = instr.__class__
        if cls is BinOp:
            ops = [instr.lhs, instr.rhs]
        elif cls is Store:
            ops = [instr.addr, instr.value]
        elif cls is Ret:
            ops = [instr.value] if instr.value is not None else []
        elif cls is Call:
            ops = list(instr.args)
        elif cls is ICall:
            specs = [self._spec(instr.func), (3,)]
            specs += [self._spec(a) for a in instr.args]
            return specs
        elif cls is Branch:
            ops = [instr.cond]
        else:  # Mov/UnOp/Load/Alloca
            ops = instr.uses()
        return [self._spec(o) for o in ops]

    # -- micro-ops (segment instructions) ------------------------------

    def _compile_micro(self, instr, label, idx):
        cls = instr.__class__
        pn = self.procname
        try:
            if cls is BinOp:
                d = self.slots[instr.dest.name]
                ls, lc, ln = self._rop(instr.lhs)
                rs, rc, rn = self._rop(instr.rhs)
                factory = _BINOP_FACTORIES.get(instr.op, _generic_binop)
                return factory(d, ls, lc, ln, rs, rc, rn, instr.op, pn, label, idx)

            if cls is Mov:
                d = self.slots[instr.dest.name]
                s, c, n = self._rop(instr.src)
                if s < 0:

                    def mo(st, regs, _d=d, _c=c):
                        regs[_d] = _c

                else:

                    def mo(st, regs, _d=d, _s=s, _n=n, _pn=pn):
                        v = regs[_s]
                        if v is _UNSET:
                            _unset(_n, _pn)
                        regs[_d] = v

                return mo

            if cls is UnOp:
                d = self.slots[instr.dest.name]
                s, c, n = self._rop(instr.src)
                opname = instr.op

                def mo(st, regs, _d=d, _s=s, _c=c, _op=opname):
                    x = regs[_s] if _s >= 0 else _c
                    if x is _UNSET:
                        _unset(n, pn)
                    try:
                        regs[_d] = eval_unop(_op, x)
                    except (EvalError, TypeError) as ex:
                        raise ExecError(str(ex), pn, label, idx)

                return mo

            if cls is Load:
                d = self.slots[instr.dest.name]
                s, c, n = self._rop(instr.addr)
                if self.f_mem:

                    def mo(st, regs, _d=d, _s=s, _c=c):
                        a = regs[_s] if _s >= 0 else _c
                        if a is _UNSET:
                            _unset(n, pn)
                        mem = st.memory
                        if type(a) is int and a >= 0:
                            v = mem.cells.get(a, 0)
                        else:
                            v = mem._load_slow(a)
                        st.sink.on_mem(a, False)
                        regs[_d] = v

                else:

                    def mo(st, regs, _d=d, _s=s, _c=c):
                        a = regs[_s] if _s >= 0 else _c
                        if a is _UNSET:
                            _unset(n, pn)
                        mem = st.memory
                        if type(a) is int and a >= 0:
                            regs[_d] = mem.cells.get(a, 0)
                        else:
                            regs[_d] = mem._load_slow(a)

                return mo

            if cls is Store:
                sa, ca, na = self._rop(instr.addr)
                sv, cv, nv = self._rop(instr.value)
                fire_mem = self.f_mem

                def mo(st, regs, _sa=sa, _ca=ca, _sv=sv, _cv=cv):
                    a = regs[_sa] if _sa >= 0 else _ca
                    if a is _UNSET:
                        _unset(na, pn)
                    v = regs[_sv] if _sv >= 0 else _cv
                    if v is _UNSET:
                        _unset(nv, pn)
                    mem = st.memory
                    if type(a) is int and a >= 0:
                        mem.cells[a] = v
                    else:
                        mem._store_slow(a, v)
                    if fire_mem:
                        st.sink.on_mem(a, True)

                return mo

            if cls is Alloca:
                d = self.slots[instr.dest.name]
                s, c, n = self._rop(instr.size)
                if s < 0 and type(c) is int and c >= 0:

                    def mo(st, regs, _d=d, _c=c):
                        top = st.stack_top - _c
                        st.stack_top = top
                        regs[_d] = top

                else:

                    def mo(st, regs, _d=d, _s=s, _c=c):
                        size = regs[_s] if _s >= 0 else _c
                        if size is _UNSET:
                            _unset(n, pn)
                        if not isinstance(size, int) or size < 0:
                            raise ExecError(
                                "bad alloca size {!r}".format(size), pn, label, idx
                            )
                        top = st.stack_top - size
                        st.stack_top = top
                        regs[_d] = top

                return mo

            if cls is Probe:

                def mo(st, regs, _cid=instr.counter_id):
                    st.probe_counts[_cid] += 1

                return mo

        except _BadOperand:
            return _raise_walk(self._raising_specs(instr), pn, label, idx)

        # Unknown instruction class: trap exactly like the reference.
        def mo(st, regs, _i=instr):
            raise ExecError("unknown instruction {!r}".format(_i), pn, label, idx)

        return mo

    # -- parts ---------------------------------------------------------

    def _make_segment(self, ops, events):
        ops = tuple(ops)
        events = tuple(events)
        k = len(ops)
        if self.f_instr:
            # Exact mode: interleave on_instr with execution, matching
            # the reference ordering against on_mem/on_branch events.
            def part(st, frame, _ops=ops, _ev=events, _k=k):
                ns = st.steps + _k
                if ns > st.max_steps:
                    return _replay(st, frame, _ops, _ev, True)
                st.steps = ns
                regs = frame.regs
                on_i = st.sink.on_instr
                for e, op in zip(_ev, _ops):
                    on_i(e[0], e[1], e[2], e[3])
                    op(st, regs)

            return part
        if self.f_batch:

            def part(st, frame, _ops=ops, _ev=events, _k=k):
                ns = st.steps + _k
                if ns > st.max_steps:
                    return _replay(st, frame, _ops, _ev, True)
                st.steps = ns
                on_i = st.sink.on_instr
                for e in _ev:
                    on_i(e[0], e[1], e[2], e[3])
                regs = frame.regs
                for op in _ops:
                    op(st, regs)

            return part

        if k == 1:
            op0 = ops[0]

            def part(st, frame, _op=op0, _ops=ops, _ev=events):
                ns = st.steps + 1
                if ns > st.max_steps:
                    return _replay(st, frame, _ops, _ev, False)
                st.steps = ns
                _op(st, frame.regs)

            return part

        def part(st, frame, _ops=ops, _ev=events, _k=k):
            ns = st.steps + _k
            if ns > st.max_steps:
                return _replay(st, frame, _ops, _ev, False)
            st.steps = ns
            regs = frame.regs
            for op in _ops:
                op(st, regs)

        return part

    def _target(self, label):
        pb = self.plan.blocks.get(label)
        if pb is not None:
            return pb
        pb = self.missing.get(label)
        if pb is None:
            # Lazy trap: a never-taken edge to a missing block must not
            # fail at compile time.  Raised without a step, like the
            # reference loop's top-of-iteration lookup.
            pb = PlanBlock(str(label), None)
            pn = self.procname
            lbl = str(label)

            def part(st, frame):
                raise ExecError("jump to missing block", pn, lbl, 0)

            pb.parts = [part]
            self.missing[label] = pb
        return pb

    def _seg_bundle(self, seg_ops, seg_events):
        """Freeze the pending straight-line segment for fusion into the
        boundary part that follows it.  Returns ``(raw, events, xops,
        kk)``: ``xops`` is what the fused fast path iterates (instr
        event delivery pre-woven in for sink modes), ``raw``/``events``
        feed the exact replay slow path, and ``kk`` is the batched step
        count — the segment plus the boundary instruction itself."""
        raw = tuple(seg_ops)
        events = tuple(seg_events)
        if self.f_instr:
            xops = tuple(_wrap_instr_op(op, ev) for op, ev in zip(raw, events))
        elif self.f_batch and raw:
            xops = (_batch_firer(events),) + raw
        else:
            xops = raw
        return raw, events, xops, len(raw) + 1

    def _make_jump(self, instr, label, idx, seg_ops, seg_events):
        target = self._target(instr.target)
        pn = self.procname
        ev = (self.proc, label, idx, instr)
        fire_i = self.fire_boundary
        fire_b = self.f_branch
        tlabel = instr.target
        raw, evs, xops, kk = self._seg_bundle(seg_ops, seg_events)

        if not fire_i and not fire_b:
            if not xops:

                def part(st, frame, _t=target, _pn=pn, _lb=label, _ix=idx):
                    ns = st.steps + 1
                    st.steps = ns
                    if ns > st.max_steps:
                        raise StepLimitExceeded(
                            "step limit {} exceeded".format(st.max_steps), _pn, _lb, _ix
                        )
                    return _t

                return part

            def part(st, frame, _t=target, _x=xops, _kk=kk):
                ns = st.steps + _kk
                if ns > st.max_steps:
                    _seg_overflow(st, frame, raw, evs, False, pn, label, idx)
                st.steps = ns
                regs = frame.regs
                for op in _x:
                    op(st, regs)
                return _t

            return part

        def part(st, frame, _t=target, _x=xops, _kk=kk):
            ns = st.steps + _kk
            if ns > st.max_steps:
                _seg_overflow(st, frame, raw, evs, fire_i, pn, label, idx)
            st.steps = ns
            regs = frame.regs
            for op in _x:
                op(st, regs)
            sink = st.sink
            if fire_i:
                sink.on_instr(ev[0], ev[1], ev[2], ev[3])
            if fire_b:
                sink.on_branch(ev[0], label, idx, "jump", True, tlabel)
            return _t

        return part

    def _make_branch(self, instr, label, idx, seg_ops, seg_events):
        pn = self.procname
        try:
            cs, cc, cn = self._rop(instr.cond)
        except _BadOperand:
            return self._make_raising_boundary(instr, label, idx, seg_ops, seg_events)
        then_pb = self._target(instr.then_target)
        else_pb = self._target(instr.else_target)
        then_label = instr.then_target
        else_label = instr.else_target
        ev = (self.proc, label, idx, instr)
        fire_i = self.fire_boundary
        fire_b = self.f_branch
        raw, evs, xops, kk = self._seg_bundle(seg_ops, seg_events)

        if not fire_i and not fire_b:
            if not xops:

                def part(st, frame, _cs=cs, _cc=cc, _tp=then_pb, _ep=else_pb):
                    ns = st.steps + 1
                    st.steps = ns
                    if ns > st.max_steps:
                        raise StepLimitExceeded(
                            "step limit {} exceeded".format(st.max_steps), pn, label, idx
                        )
                    c = frame.regs[_cs] if _cs >= 0 else _cc
                    if c is _UNSET:
                        _unset(cn, pn)
                    return _tp if c else _ep

                return part

            def part(
                st, frame, _cs=cs, _cc=cc, _tp=then_pb, _ep=else_pb, _x=xops, _kk=kk
            ):
                ns = st.steps + _kk
                if ns > st.max_steps:
                    _seg_overflow(st, frame, raw, evs, False, pn, label, idx)
                st.steps = ns
                regs = frame.regs
                for op in _x:
                    op(st, regs)
                c = regs[_cs] if _cs >= 0 else _cc
                if c is _UNSET:
                    _unset(cn, pn)
                return _tp if c else _ep

            return part

        def part(st, frame, _cs=cs, _cc=cc, _tp=then_pb, _ep=else_pb, _x=xops, _kk=kk):
            ns = st.steps + _kk
            if ns > st.max_steps:
                _seg_overflow(st, frame, raw, evs, fire_i, pn, label, idx)
            st.steps = ns
            regs = frame.regs
            for op in _x:
                op(st, regs)
            sink = st.sink
            if fire_i:
                sink.on_instr(ev[0], ev[1], ev[2], ev[3])
            c = regs[_cs] if _cs >= 0 else _cc
            if c is _UNSET:
                _unset(cn, pn)
            if c:
                if fire_b:
                    sink.on_branch(ev[0], label, idx, "cond", True, then_label)
                return _tp
            if fire_b:
                sink.on_branch(ev[0], label, idx, "cond", False, else_label)
            return _ep

        return part

    def _make_ret(self, instr, label, idx, seg_ops, seg_events):
        pn = self.procname
        has_value = instr.value is not None
        if has_value:
            try:
                vs, vc, vn = self._rop(instr.value)
            except _BadOperand:
                return self._make_raising_boundary(instr, label, idx, seg_ops, seg_events)
        else:
            vs, vc, vn = -1, None, None
        ev = (self.proc, label, idx, instr)
        fire_i = self.fire_boundary
        fire_r = self.f_ret
        raw, evs, xops, kk = self._seg_bundle(seg_ops, seg_events)

        def part(st, frame, _vs=vs, _vc=vc, _hv=has_value, _x=xops, _kk=kk):
            ns = st.steps + _kk
            if ns > st.max_steps:
                _seg_overflow(st, frame, raw, evs, fire_i, pn, label, idx)
            st.steps = ns
            regs = frame.regs
            for op in _x:
                op(st, regs)
            if fire_i:
                st.sink.on_instr(ev[0], ev[1], ev[2], ev[3])
            if _hv:
                value = regs[_vs] if _vs >= 0 else _vc
                if value is _UNSET:
                    _unset(vn, pn)
            else:
                value = None
            frames = st.frames
            frames.pop()
            st.stack_top = frame.saved_stack
            if len(frames) == st.depth0:
                st.ret_value = value
                return _DONE
            caller = frames[-1]
            if fire_r:
                st.sink.on_return(pn, caller.plan.proc)
            ds = frame.dest_slot
            if ds is not None:
                if value is None:
                    raise ExecError(
                        "void return into a result register from @{}".format(pn)
                    )
                caller.regs[ds] = value
            return _RETURN

        return part

    def _make_call(self, instr, label, idx, seg_ops, seg_events):
        pn = self.procname
        proc = self.proc
        is_icall = instr.__class__ is ICall
        try:
            if is_icall:
                fs, fc, fn = self._rop(instr.func)
            else:
                fs, fc, fn = -1, None, None
            argspec = tuple(self._rop(a) for a in instr.args)
        except _BadOperand:
            return self._make_raising_boundary(instr, label, idx, seg_ops, seg_events)
        callee_static = None if is_icall else instr.callee
        dest_slot = self.slots[instr.dest.name] if instr.dest is not None else None
        sitekey = (proc.module, instr.site_id)
        ev = (proc, label, idx, instr)
        fire_i = self.fire_boundary
        fire_c = self.f_call
        raw, evs, xops, kk = self._seg_bundle(seg_ops, seg_events)

        def part(st, frame, _fs=fs, _fc=fc, _as=argspec, _ds=dest_slot, _x=xops, _kk=kk):
            ns = st.steps + _kk
            if ns > st.max_steps:
                _seg_overflow(st, frame, raw, evs, fire_i, pn, label, idx)
            st.steps = ns
            regs = frame.regs
            for op in _x:
                op(st, regs)
            if fire_i:
                st.sink.on_instr(ev[0], ev[1], ev[2], ev[3])
            if _fs >= 0 or _fc is not None:  # indirect call
                f = regs[_fs] if _fs >= 0 else _fc
                if f is _UNSET:
                    _unset(fn, pn)
                if not isinstance(f, CodePtr):
                    raise ExecError(
                        "indirect call through non-code value {!r}".format(f),
                        pn,
                        label,
                        idx,
                    )
                callee_name = f.name
                kind = "indirect"
            else:
                callee_name = callee_static
                kind = "direct"
            args = [regs[s] if s >= 0 else c for s, c, _n in _as]
            if _UNSET in args:
                for s, c, n in _as:
                    if s >= 0 and regs[s] is _UNSET:
                        _unset(n, pn)
            st.call_count += 1
            if st.collect_site:
                st.site_counts[sitekey] += 1

            plan = st.link.get(callee_name, _MISS)
            if plan is _MISS:
                plan = st.resolve(callee_name)
            if plan is not None:
                if fire_c:
                    st.sink.on_call(proc, callee_name, kind, len(args))
                if plan.simple_frame and len(args) == plan.nparams:
                    # Inlined fast push: the argument list we just built
                    # becomes the register file (params are the slot
                    # prefix), padded with _UNSET filler.
                    frames = st.frames
                    if len(frames) >= _STACK_LIMIT:
                        raise ExecError(
                            "call stack overflow in @{}".format(plan.proc.name)
                        )
                    nf = _FastFrame()
                    nf.plan = plan
                    nf.dest_slot = _ds
                    nf.saved_stack = st.stack_top
                    nf.block = plan.entry
                    nf.pi = 0
                    nf.varargs = _NO_VARARGS
                    args.extend(plan.pad)
                    nf.regs = args
                    frames.append(nf)
                else:
                    st.push(plan, args, _ds)
                return _ENTER
            builtin = st.builtins.get(callee_name)
            if builtin is None:
                raise ExecError(
                    "call to unresolved external @{}".format(callee_name),
                    pn,
                    label,
                    idx,
                )
            if fire_c:
                st.sink.on_call(proc, callee_name, "builtin", len(args))
            r = builtin(args)
            if _ds is not None:
                regs[_ds] = r
            return None

        return part

    def _make_raising_boundary(self, instr, label, idx, seg_ops, seg_events):
        """A boundary instruction with an unresolvable operand: run the
        fused segment, count the boundary step, deliver on_instr, then
        trap via the spec walk."""
        pn = self.procname
        ev = (self.proc, label, idx, instr)
        fire_i = self.fire_boundary
        walk = _raise_walk(self._raising_specs(instr), pn, label, idx)
        raw, evs, xops, kk = self._seg_bundle(seg_ops, seg_events)

        def part(st, frame, _x=xops, _kk=kk):
            ns = st.steps + _kk
            if ns > st.max_steps:
                _seg_overflow(st, frame, raw, evs, fire_i, pn, label, idx)
            st.steps = ns
            regs = frame.regs
            for op in _x:
                op(st, regs)
            if fire_i:
                st.sink.on_instr(ev[0], ev[1], ev[2], ev[3])
            walk(st, regs)

        return part

    def _make_fell_off(self, label, n):
        pn = self.procname

        def part(st, frame):
            raise ExecError("fell off the end of block", pn, label, n)

        return part

    # -- driver --------------------------------------------------------

    def compile(self) -> ExecPlan:
        proc = self.proc
        plan = self.plan
        self._assign_slots()
        for label in proc.blocks:
            plan.blocks[label] = PlanBlock(label, (proc.name, label))
        for label, block in proc.blocks.items():
            pb = plan.blocks[label]
            parts: List[Any] = []
            seg_ops: List[Any] = []
            seg_events: List[Any] = []
            terminated = False
            for idx, instr in enumerate(block.instrs):
                cls = instr.__class__
                # Boundary instructions (calls and terminators) fuse the
                # straight-line segment that precedes them into their
                # own part: one closure, one batched step check.
                if cls is Call or cls is ICall:
                    parts.append(self._make_call(instr, label, idx, seg_ops, seg_events))
                    seg_ops, seg_events = [], []
                elif cls is Jump:
                    parts.append(self._make_jump(instr, label, idx, seg_ops, seg_events))
                    terminated = True
                    break
                elif cls is Branch:
                    parts.append(
                        self._make_branch(instr, label, idx, seg_ops, seg_events)
                    )
                    terminated = True
                    break
                elif cls is Ret:
                    parts.append(self._make_ret(instr, label, idx, seg_ops, seg_events))
                    terminated = True
                    break
                else:
                    seg_ops.append(self._compile_micro(instr, label, idx))
                    seg_events.append((proc, label, idx, instr))
            if not terminated:
                if seg_ops:
                    parts.append(self._make_segment(seg_ops, seg_events))
                parts.append(self._make_fell_off(label, len(block.instrs)))
            pb.parts = parts
        if proc.entry is not None and proc.entry in plan.blocks:
            plan.entry = plan.blocks[proc.entry]
        else:
            plan.entry = self._target(proc.entry)
        return plan


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


class _FastFrame:
    """Activation record of the fast engine.  Lives on the interpreter's
    shared ``_frames`` list so the varargs builtins see it."""

    __slots__ = ("plan", "regs", "dest_slot", "saved_stack", "varargs", "block", "pi")


class _ExecState:
    """Per-run mutable state threaded through every compiled closure."""

    __slots__ = (
        "interp",
        "cache",
        "mode",
        "global_addrs",
        "frames",
        "memory",
        "sink",
        "builtins",
        "max_steps",
        "steps",
        "stack_top",
        "call_count",
        "probe_counts",
        "site_counts",
        "collect_site",
        "block_counts",
        "collect_block",
        "link",
        "depth0",
        "ret_value",
    )

    def __init__(self, interp, cache: PlanCache, mode) -> None:
        self.interp = interp
        self.cache = cache
        self.mode = mode
        self.global_addrs = interp._global_addrs
        self.frames = interp._frames
        self.memory = interp.memory
        self.sink = interp.sink
        self.builtins = interp._builtins
        self.max_steps = interp.max_steps
        self.steps = interp.steps
        self.stack_top = interp._stack_top
        self.call_count = interp.call_count
        self.probe_counts = interp.probe_counts
        self.site_counts = interp.site_counts
        self.collect_site = interp.collect_site_counts
        self.block_counts = interp.block_counts
        self.collect_block = interp.collect_block_counts
        self.link: Dict[str, Optional[ExecPlan]] = {}
        self.depth0 = len(self.frames)
        self.ret_value = None

    def resolve(self, name: str) -> Optional[ExecPlan]:
        """Resolve a callee name to a (validated) plan, once per run."""
        proc = self.interp._procs.get(name)
        if proc is None:
            plan = None
        else:
            plan = self.cache.get_plan(proc, self.mode, self.global_addrs)
        self.link[name] = plan
        return plan

    def push(self, plan: ExecPlan, args: List[Any], dest_slot: Optional[int]) -> None:
        frames = self.frames
        if len(frames) >= _STACK_LIMIT:
            raise ExecError("call stack overflow in @{}".format(plan.proc.name))
        frame = _FastFrame()
        frame.plan = plan
        frame.dest_slot = dest_slot
        frame.saved_stack = self.stack_top
        frame.block = plan.entry
        frame.pi = 0
        nfixed = plan.nparams
        if plan.is_varargs:
            if len(args) < nfixed:
                raise ExecError("too few args for varargs @{}".format(plan.proc.name))
            frame.varargs = args[nfixed:]
            args = args[:nfixed]
        else:
            if len(args) != nfixed:
                raise ExecError(
                    "arity mismatch calling @{}: {} args for {} params".format(
                        plan.proc.name, len(args), nfixed
                    )
                )
            frame.varargs = []
        regs = [_UNSET] * plan.nslots
        param_slots = plan.param_slots
        for i, value in enumerate(args):
            regs[param_slots[i]] = value
        frame.regs = regs
        frames.append(frame)

    def run(self):
        """The threaded-dispatch driver: execute parts until the root
        frame returns.  Returns the root's return value."""
        frames = self.frames
        frame = frames[-1]
        block = frame.block
        collect_block = self.collect_block
        block_counts = self.block_counts
        if collect_block and block.key is not None:
            block_counts[block.key] += 1
        parts = block.parts
        pi = 0
        while True:
            r = parts[pi](self, frame)
            if r is None:
                pi += 1
            elif r.__class__ is PlanBlock:
                block = r
                parts = block.parts
                pi = 0
                if collect_block and block.key is not None:
                    block_counts[block.key] += 1
            elif r is _ENTER:
                frame.block = block
                frame.pi = pi + 1
                frame = frames[-1]
                block = frame.block
                parts = block.parts
                pi = 0
                if collect_block and block.key is not None:
                    block_counts[block.key] += 1
            elif r is _RETURN:
                frame = frames[-1]
                block = frame.block
                parts = block.parts
                pi = frame.pi
            else:  # _DONE
                return self.ret_value


def execute(interp, proc: Procedure, args: List[Any]):
    """Entry point used by ``Interpreter.run`` for ``engine="fast"``.

    Shares the interpreter's memory, output, counters, builtins, and
    frame list, so builtins (including ``exit`` and the varargs pair)
    behave identically to the reference engine; run totals are synced
    back even when the run unwinds with ``_Exit`` or a trap.
    """
    program = interp.program
    cache = getattr(program, "_plan_cache", None)
    if cache is None:
        cache = PlanCache()
        program._plan_cache = cache
    cache.check_globals(program)
    mode = sink_mode(interp.sink)
    st = _ExecState(interp, cache, mode)
    compiled0 = cache.plans_compiled
    hits0 = cache.cache_hits
    exit_code = 0
    ret = None
    try:
        try:
            plan = st.resolve(proc.name)
            st.push(plan, args, None)
            ret = st.run()
        finally:
            interp.steps = st.steps
            interp.call_count = st.call_count
            interp._stack_top = st.stack_top
            interp.plans_compiled += cache.plans_compiled - compiled0
            interp.plan_cache_hits += cache.cache_hits - hits0
        if isinstance(ret, int):
            exit_code = wrap_int(ret)
    except _Exit as ex:
        exit_code = wrap_int(ex.code)
    return Result(
        exit_code,
        interp.output,
        interp.steps,
        interp.probe_counts,
        interp.site_counts,
        interp.block_counts,
        interp.call_count,
    )
