"""``go`` — a board-position evaluator (analog of SPEC 099.go).

Go programs sweep a board array applying pattern scorers.  Here the
scorers are selected through a function-pointer table: ``eval_board``
makes an *indirect* call per point, and the pointer comes from a
``pattern()`` accessor in another module.  This is the paper's staged
showcase (Section 3.1): cloning/inlining propagates the constant code
pointer to the call site, constant propagation turns the indirect call
direct, and a later pass inlines the scorer.

Inputs: [board size, evaluation sweeps, stone density].
"""

from ..suite import Workload, register

BOARD = """
// Square board, up to 13x13, 0 empty / 1 black / 2 white.
int board[169];
int bsize = 9;

void set_size(int n) {
  if (n > 13) n = 13;
  if (n < 5) n = 5;
  bsize = n;
}

int size() { return bsize; }

int at(int r, int c) {
  if (r < 0 || c < 0 || r >= bsize || c >= bsize) return 3;
  return board[r * 13 + c];
}

void put(int r, int c, int v) {
  if (r < 0 || c < 0 || r >= bsize || c >= bsize) return;
  board[r * 13 + c] = v;
}

int count_neighbors(int r, int c, int color) {
  int n = 0;
  if (at(r - 1, c) == color) n = n + 1;
  if (at(r + 1, c) == color) n = n + 1;
  if (at(r, c - 1) == color) n = n + 1;
  if (at(r, c + 1) == color) n = n + 1;
  return n;
}
"""

PATTERNS = """
extern int at(int r, int c);
extern int count_neighbors(int r, int c, int color);

static int score_territory(int r, int c) {
  if (at(r, c) != 0) return 0;
  int black = count_neighbors(r, c, 1);
  int white = count_neighbors(r, c, 2);
  if (black > white) return black - white;
  if (white > black) return -(white - black);
  return 0;
}

static int score_influence(int r, int c) {
  int v = at(r, c);
  if (v == 1) return 2 + count_neighbors(r, c, 1);
  if (v == 2) return -(2 + count_neighbors(r, c, 2));
  return 0;
}

static int score_connect(int r, int c) {
  int v = at(r, c);
  if (v == 0 || v == 3) return 0;
  int friends = count_neighbors(r, c, v);
  int enemies = count_neighbors(r, c, 3 - v);
  int s = friends * 3 - enemies;
  if (v == 2) return -s;
  return s;
}

// Scorer table accessor: the code pointer constant HLO will propagate.
int pattern(int which) {
  if (which == 0) return &score_territory;
  if (which == 1) return &score_influence;
  return &score_connect;
}
"""

EVAL = """
extern int pattern(int which);
extern int size();

int eval_board(int which) {
  int f = pattern(which);
  int total = 0;
  int n = size();
  int r;
  int c;
  for (r = 0; r < n; r++) {
    for (c = 0; c < n; c++) {
      total = total + f(r, c);
    }
  }
  return total;
}

int full_eval() {
  return eval_board(0) * 4 + eval_board(1) * 2 + eval_board(2);
}
"""

MAIN = """
extern void set_size(int n);
extern void put(int r, int c, int v);
extern int full_eval();
extern int size();

static int seed = 4242;

static int rnd(int m) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) seed = -seed;
  return seed % m;
}

static void setup(int density) {
  int n = size();
  int r;
  int c;
  for (r = 0; r < n; r++) {
    for (c = 0; c < n; c++) {
      if (rnd(100) < density) put(r, c, 1 + rnd(2));
      else put(r, c, 0);
    }
  }
}

int main() {
  int n = input(0);
  int sweeps = input(1);
  int density = input(2);
  set_size(n);
  setup(density);
  int check = 0;
  int s;
  for (s = 0; s < sweeps; s++) {
    check = (check + full_eval() + 1000003) % 1000003;
    // Mutate a few points between sweeps, as moves would.
    put(rnd(size()), rnd(size()), rnd(3));
    put(rnd(size()), rnd(size()), rnd(3));
  }
  print_int(check);
  return check % 97;
}
"""

WORKLOAD = Workload(
    name="go",
    spec_analog="099.go (board evaluation)",
    description="board sweeps through function-pointer pattern scorers",
    sources=(("board", BOARD), ("patterns", PATTERNS), ("goeval", EVAL), ("gomain", MAIN)),
    train_inputs=((7, 3, 40),),
    ref_input=(9, 9, 45),
    suites=("95",),
)


def register_workload() -> None:
    register(WORKLOAD)
