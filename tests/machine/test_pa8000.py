"""Layout and the PA8000 machine model end to end."""

import pytest

from repro.core import HLOConfig, run_hlo
from repro.frontend import compile_program
from repro.machine import (
    CODE_BASE,
    INSTR_BYTES,
    CodeLayout,
    MachineConfig,
    PA8000Model,
    simulate,
)

CALLY = [
    (
        "m",
        """
        int tiny(int x) { return x + 1; }
        int main() {
          int total = 0;
          for (int i = 0; i < 50; i++) total += tiny(i);
          print_int(total);
          return 0;
        }
        """,
    )
]


class TestLayout:
    def test_addresses_contiguous_and_unique(self):
        program = compile_program(CALLY)
        layout = CodeLayout(program)
        addrs = set()
        for proc in program.all_procs():
            for label, block in proc.blocks.items():
                for index in range(len(block)):
                    addr = layout.instr_addr(proc.name, label, index)
                    assert addr not in addrs
                    addrs.add(addr)
        assert min(addrs) == CODE_BASE
        assert layout.code_bytes == len(addrs) * INSTR_BYTES

    def test_entry_block_first(self):
        program = compile_program(CALLY)
        layout = CodeLayout(program)
        for proc in program.all_procs():
            assert (
                layout.instr_addr(proc.name, proc.entry, 0)
                == layout.proc_addrs[proc.name]
            )

    def test_unknown_block_falls_back(self):
        program = compile_program(CALLY)
        layout = CodeLayout(program)
        assert layout.instr_addr("main", "ghost", 0) == layout.proc_addrs["main"]


class TestSimulation:
    def test_metrics_consistency(self):
        program = compile_program(CALLY)
        metrics, result = simulate(program)
        assert result.output == [sum(range(1, 51))]
        assert metrics.instructions >= result.steps  # overhead included
        # Builtin (library) bodies retire instructions without touching
        # the simulated image's I-cache; everything else is fetched.
        assert result.steps <= metrics.icache_accesses <= metrics.instructions
        assert metrics.cycles > 0
        assert 0 <= metrics.icache_miss_rate <= 1
        assert 0 <= metrics.branch_miss_rate <= 1
        assert metrics.cpi == pytest.approx(metrics.cycles / metrics.instructions)

    def test_returns_always_mispredict(self):
        program = compile_program(CALLY)
        metrics, result = simulate(program)
        # 50 calls to tiny + builtin print: every return mispredicts, so
        # mispredicts >= dynamic calls.
        assert metrics.branch_mispredicts >= 50

    def test_inlining_removes_call_overhead(self):
        program = compile_program(CALLY)
        base_metrics, base_result = simulate(program)

        inlined = compile_program(CALLY)
        run_hlo(inlined, HLOConfig(budget_percent=2000))
        opt_metrics, opt_result = simulate(inlined)

        assert opt_result.behavior() == base_result.behavior()
        # The Figure 7 shape: fewer retired instructions, fewer D-cache
        # accesses (save/restore gone), fewer branches, fewer cycles.
        assert opt_metrics.instructions < base_metrics.instructions
        assert opt_metrics.dcache_accesses < base_metrics.dcache_accesses
        assert opt_metrics.branches < base_metrics.branches
        assert opt_metrics.cycles < base_metrics.cycles

    def test_relative_to(self):
        program = compile_program(CALLY)
        metrics, _ = simulate(program)
        rel = metrics.relative_to(metrics)
        assert rel["relative_cycles"] == 1.0
        assert rel["relative_dcache_accesses"] == 1.0

    def test_machine_config_penalties_matter(self):
        program = compile_program(CALLY)
        cheap, _ = simulate(program, config=MachineConfig(mispredict_penalty=0.0))
        dear, _ = simulate(program, config=MachineConfig(mispredict_penalty=50.0))
        assert dear.cycles > cheap.cycles

    def test_small_icache_hurts(self):
        program = compile_program(CALLY)
        big, _ = simulate(program, config=MachineConfig(icache_bytes=65536))
        tiny, _ = simulate(program, config=MachineConfig(icache_bytes=64))
        assert tiny.icache_misses > big.icache_misses


class TestRegisterPressure:
    """The spill model: big routines pay per-instruction memory traffic."""

    def build_fat_proc(self, nregs):
        from repro.frontend import compile_program

        # A chain of dependent locals forces many live virtual registers.
        lines = ["int main() {", "  int a0 = input(0);"]
        for i in range(1, nregs):
            lines.append("  int a{} = a{} + {};".format(i, i - 1, i))
        total = " + ".join("a{}".format(i) for i in range(nregs))
        lines.append("  print_int({});".format(total))
        lines.append("  return 0;")
        lines.append("}")
        return compile_program([("m", "\n".join(lines))])

    def test_small_proc_never_spills(self):
        program = self.build_fat_proc(6)
        model = PA8000Model(program)
        from repro.interp import Interpreter

        Interpreter(program, [1], sink=model).run()
        assert model.spills == 0

    def test_fat_proc_spills(self):
        program = self.build_fat_proc(80)
        model = PA8000Model(program)
        from repro.interp import Interpreter

        Interpreter(program, [1], sink=model).run()
        assert model.spills > 0

    def test_spills_raise_cycles(self):
        program = self.build_fat_proc(80)
        free, _ = simulate(program, [1], config=MachineConfig(spill_rate_per_reg=0.0))
        taxed, _ = simulate(program, [1], config=MachineConfig(spill_rate_per_reg=0.05))
        assert taxed.cycles > free.cycles
        assert taxed.dcache_accesses > free.dcache_accesses

    def test_spill_rate_capped(self):
        config = MachineConfig()
        program = self.build_fat_proc(120)
        model = PA8000Model(program)
        assert max(model._spill_rates.values()) <= config.max_spill_rate
