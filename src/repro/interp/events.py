"""Execution event stream consumed by trace-driven models.

The interpreter optionally streams its dynamic behaviour to an
:class:`EventSink`; the PA8000 machine model is the main consumer.  The
callbacks deliberately carry *IR-level* identities (procedure, block
label, instruction index) — the machine model owns the mapping from
those identities to code addresses via its layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.instructions import Instr
    from ..ir.procedure import Procedure


class EventSink:
    """Base class with no-op callbacks; override what you consume."""

    def on_instr(self, proc: "Procedure", label: str, index: int, instr: "Instr") -> None:
        """An IR instruction was executed."""

    def on_branch(
        self,
        proc: "Procedure",
        label: str,
        index: int,
        kind: str,
        taken: bool,
        target_label: str,
    ) -> None:
        """A control transfer resolved.  ``kind`` is ``cond``/``jump``."""

    def on_call(self, caller: "Procedure", callee_name: str, kind: str, n_args: int) -> None:
        """A call executed.  ``kind`` is ``direct``/``indirect``/``builtin``."""

    def on_return(self, callee_name: str, caller: "Procedure") -> None:
        """A procedure returned to ``caller`` (builtins excluded)."""

    def on_mem(self, addr: int, is_store: bool) -> None:
        """A data memory access at word address ``addr``."""


class CountingSink(EventSink):
    """A cheap sink that tallies event counts; handy in tests."""

    def __init__(self) -> None:
        self.instrs = 0
        self.branches = 0
        self.calls = 0
        self.returns = 0
        self.mems = 0

    def on_instr(self, proc, label, index, instr) -> None:
        self.instrs += 1

    def on_branch(self, proc, label, index, kind, taken, target_label) -> None:
        self.branches += 1

    def on_call(self, caller, callee_name, kind, n_args) -> None:
        self.calls += 1

    def on_return(self, callee_name, caller) -> None:
        self.returns += 1

    def on_mem(self, addr, is_store) -> None:
        self.mems += 1
