"""Conditional constant propagation.

A forward dataflow over the register-constancy lattice
(UNDEF < CONST(v) < NAC) per (block, register), followed by a rewrite
that substitutes constant registers, folds arithmetic, and collapses
branches on constant conditions to jumps.  Iterating this pass with
simplify-CFG approximates SCCP: once a branch folds, the dead arm stops
polluting the merge, so the next round can propagate further.

This is the pass that cashes in cloning's "caller passes constant 0"
specialization: the clone's entry block materializes the constant, and
this pass folds the parameter tests downstream.
"""

from __future__ import annotations

from typing import Dict, Union

from ..ir.instructions import Alloca, BinOp, Branch, Call, ICall, Jump, Load, Mov, UnOp
from ..ir.ops import EvalError, eval_binop, eval_unop
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.types import Type
from ..ir.values import FuncRef, GlobalRef, Imm, Operand, Reg

# Lattice values: None = NAC; the _Undef sentinel = unknown-yet; an
# operand (Imm/FuncRef/GlobalRef) = known constant.
_UNDEF = object()
Lattice = Union[None, object, Imm, FuncRef, GlobalRef]


def _meet(a: Lattice, b: Lattice) -> Lattice:
    if a is _UNDEF:
        return b
    if b is _UNDEF:
        return a
    if a is None or b is None:
        return None
    return a if a == b else None


def _transfer(block, state: Dict[str, Lattice]) -> Dict[str, Lattice]:
    """Apply one block's instructions to a copy of ``state``."""
    out = dict(state)

    def value_of(op: Operand) -> Lattice:
        if isinstance(op, Reg):
            return out.get(op.name, _UNDEF)
        return op  # Imm / FuncRef / GlobalRef are constants

    for instr in block.instrs:
        cls = instr.__class__
        if cls is Mov:
            out[instr.dest.name] = value_of(instr.src)
        elif cls is BinOp:
            out[instr.dest.name] = _fold_binop(instr.op, value_of(instr.lhs), value_of(instr.rhs))
        elif cls is UnOp:
            out[instr.dest.name] = _fold_unop(instr.op, value_of(instr.src))
        elif instr.dest is not None:  # Load, Call, ICall, Alloca
            out[instr.dest.name] = None
    return out


def _fold_binop(op: str, lhs: Lattice, rhs: Lattice) -> Lattice:
    if lhs is _UNDEF or rhs is _UNDEF:
        return _UNDEF
    if lhs is None or rhs is None:
        return None
    if isinstance(lhs, FuncRef) and isinstance(rhs, FuncRef):
        if op == "eq":
            return Imm(1 if lhs.name == rhs.name else 0)
        if op == "ne":
            return Imm(0 if lhs.name == rhs.name else 1)
        return None
    if not isinstance(lhs, Imm) or not isinstance(rhs, Imm):
        return None  # address arithmetic on globals stays symbolic
    try:
        value = eval_binop(op, lhs.value, rhs.value)
    except (EvalError, TypeError):
        return None  # e.g. division by a constant zero: keep the trap
    if isinstance(value, float):
        return Imm(value, Type.FLT)
    return Imm(value)


def _fold_unop(op: str, src: Lattice) -> Lattice:
    if src is _UNDEF:
        return _UNDEF
    if not isinstance(src, Imm):
        return None
    try:
        value = eval_unop(op, src.value)
    except (EvalError, TypeError):
        return None
    if isinstance(value, float):
        return Imm(value, Type.FLT)
    return Imm(value)


def constant_propagation(program: Program, proc: Procedure) -> bool:
    """Run the analysis and rewrite; returns True when IR changed."""
    labels = proc.rpo_labels()
    if not labels:
        return False
    preds = proc.predecessors()

    # Dataflow to fixpoint.
    ins: Dict[str, Dict[str, Lattice]] = {}
    outs: Dict[str, Dict[str, Lattice]] = {}
    entry_state: Dict[str, Lattice] = {name: None for name, _ in proc.params}
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for label in labels:
            if label == proc.entry:
                in_state = dict(entry_state)
            else:
                in_state = {}
                merged: Dict[str, Lattice] = {}
                first = True
                for pred in preds[label]:
                    pstate = outs.get(pred)
                    if pstate is None:
                        continue
                    if first:
                        merged = dict(pstate)
                        first = False
                    else:
                        keys = set(merged) | set(pstate)
                        merged = {
                            k: _meet(merged.get(k, _UNDEF), pstate.get(k, _UNDEF))
                            for k in keys
                        }
                if first:
                    merged = {}
                in_state = merged
            if ins.get(label) != in_state:
                ins[label] = in_state
                changed = True
            out_state = _transfer(proc.blocks[label], in_state)
            if outs.get(label) != out_state:
                outs[label] = out_state
                changed = True

    # Rewrite using the in-states.
    rewritten = False
    for label in labels:
        state = dict(ins.get(label, {}))
        block = proc.blocks[label]
        new_instrs = []
        for instr in block.instrs:
            def subst(op: Operand) -> Operand:
                nonlocal rewritten
                if isinstance(op, Reg):
                    known = state.get(op.name, _UNDEF)
                    if isinstance(known, (Imm, FuncRef, GlobalRef)):
                        rewritten = True
                        return known
                return op

            instr.map_operands(subst)

            replacement = instr
            cls = instr.__class__
            if cls is BinOp:
                folded = _fold_binop(
                    instr.op,
                    instr.lhs if not isinstance(instr.lhs, Reg) else state.get(instr.lhs.name, _UNDEF),
                    instr.rhs if not isinstance(instr.rhs, Reg) else state.get(instr.rhs.name, _UNDEF),
                )
                if isinstance(folded, (Imm, FuncRef, GlobalRef)):
                    replacement = Mov(instr.dest, folded)
                    rewritten = True
            elif cls is UnOp:
                folded = _fold_unop(
                    instr.op,
                    instr.src if not isinstance(instr.src, Reg) else state.get(instr.src.name, _UNDEF),
                )
                if isinstance(folded, (Imm, FuncRef, GlobalRef)):
                    replacement = Mov(instr.dest, folded)
                    rewritten = True
            elif cls is Branch and isinstance(instr.cond, Imm):
                target = instr.then_target if instr.cond.value else instr.else_target
                replacement = Jump(target)
                rewritten = True
            elif cls is ICall and isinstance(instr.func, FuncRef):
                # Devirtualization: a constant code pointer reached the
                # function position (Section 3.1's staged optimization).
                replacement = instr.to_direct()
                rewritten = True

            # Track state forward within the block for subsequent instrs.
            state = _transfer_one(replacement, state)
            new_instrs.append(replacement)
        block.instrs = new_instrs
    return rewritten


def _transfer_one(instr, state: Dict[str, Lattice]) -> Dict[str, Lattice]:
    class _OneBlock:
        instrs = [instr]

    return _transfer(_OneBlock, state)
