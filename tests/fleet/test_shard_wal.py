"""Shard framing and the write-ahead spool's truncate-tolerant replay."""

from __future__ import annotations

import pytest

from repro.fleet import ProfileShard, ShardSpool
from repro.resilience import ShardFormatError


def make_shard(seq=0, payload="profiledb 1\nruns 1 steps 10\n", epoch=0):
    return ProfileShard(source="inst0", seq=seq, epoch=epoch, payload=payload)


class TestShardFraming:
    def test_wire_roundtrip(self):
        shard = make_shard(seq=3, epoch=2)
        parsed = ProfileShard.parse_message(shard.to_wire())
        assert parsed == shard

    def test_whitespace_source_rejected(self):
        with pytest.raises(ValueError):
            ProfileShard("bad source", 0, 0, "x").to_wire()

    def test_truncated_frame_detected(self):
        wire = make_shard().to_wire()
        with pytest.raises(ShardFormatError) as err:
            ProfileShard.parse_message(wire[: len(wire) - 5])
        assert err.value.kind == "truncated"

    def test_corrupted_payload_detected(self):
        wire = make_shard().to_wire()
        damaged = wire[:-3] + "#" + wire[-2:]
        with pytest.raises(ShardFormatError) as err:
            ProfileShard.parse_message(damaged)
        assert err.value.kind == "corrupted"

    def test_malformed_header_detected(self):
        with pytest.raises(ShardFormatError) as err:
            ProfileShard.parse_message("not a shard header\npayload")
        assert err.value.kind == "malformed"

    def test_trailing_bytes_rejected(self):
        wire = make_shard().to_wire() + "extra"
        with pytest.raises(ShardFormatError) as err:
            ProfileShard.parse_message(wire)
        assert err.value.kind == "malformed"

    def test_payload_with_newlines_survives_length_framing(self):
        shard = make_shard(payload="line one\nline two\n\nline four")
        assert ProfileShard.parse_message(shard.to_wire()).payload == shard.payload


class TestShardSpool:
    def test_append_replay_roundtrip(self, tmp_path):
        spool = ShardSpool(str(tmp_path / "shards.wal"))
        shards = [make_shard(seq=i, epoch=i % 2) for i in range(5)]
        for shard in shards:
            spool.append(shard)
        assert spool.appended == 5
        replayed, truncated = ShardSpool(spool.path).replay()
        assert replayed == shards
        assert not truncated

    def test_missing_spool_is_empty_not_an_error(self, tmp_path):
        replayed, truncated = ShardSpool(str(tmp_path / "absent.wal")).replay()
        assert replayed == [] and not truncated

    def test_torn_tail_is_cut_back_to_last_intact_frame(self, tmp_path):
        spool = ShardSpool(str(tmp_path / "shards.wal"))
        for i in range(4):
            spool.append(make_shard(seq=i))
        # Tear the final write: drop the frame's last 7 characters.
        text = spool.raw()
        spool.rewrite(text[:-7])
        replayed, truncated = ShardSpool(spool.path).replay()
        assert truncated
        assert [s.seq for s in replayed] == [0, 1, 2]
        # The file was truncated back to the good prefix: a second
        # replay is clean, and appends continue from a frame boundary.
        again, truncated_again = ShardSpool(spool.path).replay()
        assert [s.seq for s in again] == [0, 1, 2]
        assert not truncated_again
        spool2 = ShardSpool(spool.path)
        spool2.append(make_shard(seq=9))
        final, _ = ShardSpool(spool.path).replay()
        assert [s.seq for s in final] == [0, 1, 2, 9]

    def test_garbled_mid_file_loses_only_the_suffix(self, tmp_path):
        spool = ShardSpool(str(tmp_path / "shards.wal"))
        for i in range(4):
            spool.append(make_shard(seq=i))
        text = spool.raw()
        # Damage inside frame 2's payload region: frames 0-1 survive.
        frame_len = len(make_shard(seq=0).to_wire())
        pos = 2 * frame_len + frame_len // 2
        spool.rewrite(text[:pos] + "#" + text[pos + 1:])
        replayed, truncated = ShardSpool(spool.path).replay()
        assert truncated
        assert [s.seq for s in replayed] == [0, 1]
