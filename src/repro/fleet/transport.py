"""The shard transport: a tick-based in-memory channel with a fault seam.

The fleet loop is deterministic — no threads, no wall clock in the
logic.  Time is a round counter (*ticks*); a shard sent at tick *t* is
delivered at *t + 1* unless a fault delays it further.  All disorder
comes from the seeded :class:`~repro.resilience.faults.FaultInjector`,
which gets one decision per send (keyed on the shard's identity and
attempt number, so replays and retries are reproducible independent of
everything else that fired):

``drop``
    the frame vanishes — the source's retry timer is the only recovery;
``corrupt`` / ``truncate``
    the frame arrives damaged and fails its CRC at the collector, which
    NACKs it back for a retry;
``duplicate``
    the frame arrives twice — the collector's (source, seq) dedupe
    absorbs the second copy;
``delay``
    delivery slips 1–3 extra ticks, re-ordering it behind newer shards.

The envelope (source, seq) rides *outside* the frame — transports know
their peers — so the collector can attribute even an unparseable frame
to its sender for NACKs and circuit-breaker accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs import NULL_METRICS
from ..obs import names
from ..resilience.faults import FaultInjector
from .shard import ProfileShard


@dataclass
class _InFlight:
    deliver_at: int
    order: int  # FIFO tiebreak within a tick
    source: str
    seq: int
    wire: str


class ShardTransport:
    """In-memory shard channel; all faults come from the injector."""

    def __init__(
        self,
        injector: Optional[FaultInjector] = None,
        metrics=NULL_METRICS,
    ):
        self.injector = injector
        self.metrics = metrics
        self._queue: List[_InFlight] = []
        self._order = 0
        self.sent = 0
        self.dropped = 0
        self.damaged = 0
        self.duplicated = 0
        self.delayed = 0

    def send(self, shard: ProfileShard, tick: int, attempt: int = 0) -> None:
        self.sent += 1
        self.metrics.count(names.FLEET_SHARDS_SENT)
        wire = shard.to_wire()
        fault = None
        if self.injector is not None:
            fault = self.injector.shard_fault(shard.source, shard.seq, attempt)
        if fault == "drop":
            self.dropped += 1
            self.metrics.count(names.FLEET_SHARDS_DROPPED)
            return
        deliver_at = tick + 1
        if fault == "delay":
            deliver_at += self.injector.delay_ticks(shard.source, shard.seq, attempt)
            self.delayed += 1
            self.metrics.count(names.FLEET_SHARDS_DELAYED)
        if fault in ("corrupt", "truncate"):
            wire = self.injector.damage_shard(
                wire, fault, shard.source, shard.seq, attempt
            )
            self.damaged += 1
            self.metrics.count(names.FLEET_SHARDS_DAMAGED)
        self._push(deliver_at, shard.source, shard.seq, wire)
        if fault == "duplicate":
            self.duplicated += 1
            self.metrics.count(names.FLEET_SHARDS_DUPLICATED)
            self._push(deliver_at + 1, shard.source, shard.seq, shard.to_wire())

    def _push(self, deliver_at: int, source: str, seq: int, wire: str) -> None:
        self._queue.append(_InFlight(deliver_at, self._order, source, seq, wire))
        self._order += 1

    def deliver(self, tick: int, collector) -> List["object"]:
        """Hand every due frame to the collector; returns its acks."""
        due = [m for m in self._queue if m.deliver_at <= tick]
        self._queue = [m for m in self._queue if m.deliver_at > tick]
        due.sort(key=lambda m: (m.deliver_at, m.order))
        acks = []
        for message in due:
            acks.append(
                collector.receive(
                    message.wire, source=message.source, seq=message.seq,
                    tick=tick,
                )
            )
        return acks

    @property
    def in_flight(self) -> int:
        return len(self._queue)
