"""The observer end to end: build traces, ledger coverage, rollback.

Covers the satellite requirements: HLOReport per-pass traces and
TransformEvent ordering stay coherent when guarded stages roll back or
quarantine, and a rolled-back stage leaves no phantom ledger decisions.
"""

from repro.core.budget import Budget
from repro.core.cloner import CloneDatabase
from repro.core.config import HLOConfig
from repro.core.hlo import _guarded_stage, run_hlo
from repro.core.report import HLOReport
from repro.frontend import compile_program
from repro.obs import (
    BuildObserver,
    InliningLedger,
    MetricsRegistry,
    Tracer,
)
from repro.obs.validate import validate_ledger_jsonl, validate_trace
from repro.resilience import FaultInjector, GuardConfig, InjectedFault, PassGuard

LIB = """
static int twice(int x) { return x + x; }
static int shift(int x, int k) { return x * k; }
int api(int x) { return twice(x) + shift(x, 2) + 3; }
"""
MAIN = """
extern int api(int x);
int main() {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 8; i = i + 1) { acc = acc + api(i); }
  print_int(acc);
  return 0;
}
"""


def program():
    return compile_program([("lib", LIB), ("main", MAIN)])


def full_observer():
    return BuildObserver(
        tracer=Tracer(), metrics=MetricsRegistry(), ledger=InliningLedger()
    )


class TestHealthyRun:
    def test_ledger_covers_every_evaluated_site(self):
        obs = full_observer()
        report = run_hlo(program(), HLOConfig(cross_module=True), observer=obs)
        assert report.sites_considered > 0
        assert obs.ledger.considered == report.sites_considered
        counts = obs.ledger.decision_counts()
        assert sum(counts.values()) == report.sites_considered
        assert validate_ledger_jsonl(obs.ledger.to_jsonl()) == []

    def test_trace_has_stage_hierarchy(self):
        obs = full_observer()
        run_hlo(program(), HLOConfig(cross_module=True), observer=obs)
        names = [e["name"] for e in obs.tracer.events()]
        assert "input-stage" in names
        assert "output-stage" in names
        assert any(n.startswith("inline-pass-") for n in names)
        assert any(n.startswith("clone-pass-") for n in names)
        assert validate_trace(obs.tracer.to_dict()) == []

    def test_null_observer_run_is_identical(self):
        obs = full_observer()
        with_obs = run_hlo(program(), HLOConfig(cross_module=True), observer=obs)
        without = run_hlo(program(), HLOConfig(cross_module=True))
        assert with_obs.inlines == without.inlines
        assert with_obs.clones == without.clones
        assert with_obs.sites_considered == without.sites_considered

    def test_pass_traces_cover_every_pass(self):
        obs = full_observer()
        config = HLOConfig(cross_module=True)
        report = run_hlo(program(), config, observer=obs)
        by_pass = {(t.pass_number, t.phase) for t in report.pass_traces}
        for n in range(report.passes_run):
            assert (n, "clone") in by_pass
            assert (n, "inline") in by_pass
        for trace in report.pass_traces:
            assert trace.cost_after >= 0
            assert trace.performed >= 0


class TestRollback:
    def sabotaged_stage(self, obs, report):
        """A stage body that transforms, records, then dies."""

        def run():
            report.record_inline(0, "main", "api", 1)
            report.sites_considered += 1
            obs.ledger.record("inline", 0, "main", "api", 1, "inlined",
                              "accepted within staged budget", "accepted")
            raise InjectedFault("boom")

        return run

    def test_rolled_back_stage_leaves_no_phantom_records(self):
        prog = program()
        report = HLOReport()
        obs = full_observer()
        budget = Budget(prog, 100.0, 4)
        guard = PassGuard(GuardConfig(), report, observer=obs)
        result = _guarded_stage(
            guard, prog, "inline", self.sabotaged_stage(obs, report),
            0, "inline", None, report, budget, CloneDatabase(), obs=obs,
        )
        assert result == 0
        # IR rolled back, and so did every observability side-channel:
        # no transform events, no sites considered, no ledger decisions.
        assert report.inlines == 0
        assert report.events == []
        assert report.sites_considered == 0
        assert obs.ledger.considered == 0
        # The failure itself is visible: a PassFailure plus a trace
        # instant from the guard.
        assert len(report.pass_failures) == 1
        instants = [e for e in obs.tracer.events() if e["ph"] == "i"]
        assert any(e["name"] == "pass-failure:inline" for e in instants)

    def test_ledger_report_invariant_survives_rollback(self):
        prog = program()
        report = HLOReport()
        obs = full_observer()
        budget = Budget(prog, 100.0, 4)
        guard = PassGuard(GuardConfig(), report, observer=obs)
        _guarded_stage(
            guard, prog, "inline", self.sabotaged_stage(obs, report),
            0, "inline", None, report, budget, CloneDatabase(), obs=obs,
        )
        assert obs.ledger.considered == report.sites_considered


class TestQuarantine:
    def run_with_crashing_scalar_pass(self, obs):
        injector = FaultInjector(seed=3, crash_pass="cse")
        from repro.opt.pass_manager import default_pipeline

        pipeline = injector.wrap_pipeline(default_pipeline())
        return run_hlo(
            program(), HLOConfig(cross_module=True), pipeline=pipeline,
            observer=obs,
        )

    def test_transform_events_stay_ordered_under_quarantine(self):
        obs = full_observer()
        report = self.run_with_crashing_scalar_pass(obs)
        # The crashing scalar pass fails, quarantines, and the build
        # still transforms; event order must stay monotone by pass.
        assert report.pass_failures
        assert "cse" in report.quarantined_passes
        pass_numbers = [e.pass_number for e in report.events
                        if e.pass_number >= 0]
        assert pass_numbers == sorted(pass_numbers)

    def test_ledger_invariant_and_pass_traces_under_quarantine(self):
        obs = full_observer()
        report = self.run_with_crashing_scalar_pass(obs)
        assert obs.ledger.considered == report.sites_considered
        by_pass = {(t.pass_number, t.phase) for t in report.pass_traces}
        for n in range(report.passes_run):
            assert (n, "clone") in by_pass
            assert (n, "inline") in by_pass
        # Guard failures surfaced on the trace as instants.
        instants = {e["name"] for e in obs.tracer.events() if e["ph"] == "i"}
        assert any(name.startswith("pass-failure:") for name in instants)

    def test_metrics_count_rollbacks(self):
        obs = full_observer()
        report = self.run_with_crashing_scalar_pass(obs)
        assert obs.metrics.value("resilience.rollbacks") == len(
            report.pass_failures
        )
