"""Flat memory model and code pointers."""

import pytest

from repro.interp import CodePtr, ExecError, Memory
from repro.interp.memory import HEAP_BASE


class TestMemory:
    def test_default_zero(self):
        assert Memory().load(12345) == 0

    def test_store_load(self):
        mem = Memory()
        mem.store(10, 42)
        mem.store(11, 2.5)
        assert mem.load(10) == 42
        assert mem.load(11) == 2.5

    def test_code_pointers_storable(self):
        mem = Memory()
        mem.store(5, CodePtr("f"))
        assert mem.load(5) == CodePtr("f")

    def test_negative_address_traps(self):
        mem = Memory()
        with pytest.raises(ExecError):
            mem.load(-1)
        with pytest.raises(ExecError):
            mem.store(-1, 0)

    def test_non_integer_address_traps(self):
        mem = Memory()
        with pytest.raises(ExecError):
            mem.load(1.5)
        with pytest.raises(ExecError):
            mem.store(CodePtr("f"), 1)

    def test_sbrk_bump_allocates(self):
        mem = Memory()
        a = mem.sbrk(10)
        b = mem.sbrk(1)
        assert a == HEAP_BASE
        assert b == a + 10

    def test_sbrk_negative_traps(self):
        with pytest.raises(ExecError):
            Memory().sbrk(-1)


class TestCodePtr:
    def test_equality_and_hash(self):
        assert CodePtr("f") == CodePtr("f")
        assert CodePtr("f") != CodePtr("g")
        assert CodePtr("f") != 42
        assert len({CodePtr("f"), CodePtr("f"), CodePtr("g")}) == 2
