"""Canonical metric names, in one place.

Every dotted metric name the registry ever sees is declared here as a
constant; emitters (``collect_*`` in :mod:`repro.obs.metrics`, the
fleet subsystem, the toolchain, the resilience guard) and readers
(``repro.obs.validate``, ``repro.bench.smoke``, tests) import the same
constant, so a producer and its consumer cannot drift apart by typo —
which is exactly what had happened before this module existed: the
transport counted transit-duplicated frames as
``fleet.shards_duplicated`` while the collector counted dedupe hits as
``fleet.shards_duplicate``, two near-identical names for two different
facts.  The collector's name is now :data:`FLEET_SHARDS_DEDUPED`
(what it does: drop an already-seen shard), keeping
:data:`FLEET_SHARDS_DUPLICATED` for the transport fault that *creates*
the extra copies.

Naming scheme (unchanged from PR 3): ``<subsystem>.<fact>``, all
lowercase, underscores inside a segment, dots only between segments.
Per-instance fleet series append the instance name as a segment via
the ``fleet_instance_*`` helpers.
"""

from __future__ import annotations

# -- build-time (collect_build_metrics) --------------------------------
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_INVALIDATIONS = "cache.invalidations"
CACHE_ENABLED = "cache.enabled"
CACHE_HIT_RATE = "cache.hit_rate"
CACHE_EVICTIONS_SIZE = "cache.evictions_size"  # disk objects LRU-evicted

BUILD_MODULES_COMPILED = "build.modules_compiled"
BUILD_MODULES_FROM_CACHE = "build.modules_from_cache"
BUILD_PARALLEL_JOBS = "build.parallel_jobs"
BUILD_PARALLEL_FALLBACKS = "build.parallel_fallbacks"
BUILD_COMPILE_TIMEOUTS = "build.compile_timeouts"
BUILD_WORKER_ERRORS = "build.worker_errors"
BUILD_WARNINGS = "build.warnings"
BUILD_COMPILE_UNITS = "build.compile_units"
BUILD_CODE_SIZE_INSTRS = "build.code_size_instrs"
BUILD_TRAIN_STEPS = "build.train_steps"
BUILD_TRAIN_RUNS = "build.train_runs"
BUILD_ANNOTATED_BLOCKS = "build.annotated_blocks"
BUILD_WALL_SECONDS = "build.wall_seconds"
BUILD_WALL_S_HIST = "build.wall_s"  # histogram: per-build wall samples

HLO_INLINES = "hlo.inlines"
HLO_CLONES = "hlo.clones"
HLO_CLONE_REPLACEMENTS = "hlo.clone_replacements"
HLO_DELETIONS = "hlo.deletions"
HLO_PROMOTIONS = "hlo.promotions"
HLO_DEVIRTUALIZED = "hlo.devirtualized"
HLO_OUTLINES = "hlo.outlines"
HLO_CLONE_DB_HITS = "hlo.clone_db_hits"
HLO_SITES_CONSIDERED = "hlo.sites_considered"
HLO_PASSES_RUN = "hlo.passes_run"
HLO_INITIAL_COST = "hlo.initial_cost"
HLO_FINAL_COST = "hlo.final_cost"
HLO_BUDGET_LIMIT = "hlo.budget_limit"
HLO_REGIONS_FORMED = "hlo.regions_formed"
HLO_REGION_BUDGET_EXHAUSTED = "hlo.region_budget_exhausted"

ANALYSIS_HITS = "analysis.hits"
ANALYSIS_MISSES = "analysis.misses"
ANALYSIS_INVALIDATIONS = "analysis.invalidations"

RESILIENCE_MODULE_FALLBACKS = "resilience.module_fallbacks"
RESILIENCE_PROFILE_FALLBACK = "resilience.profile_fallback"
RESILIENCE_PASS_FAILURES = "resilience.pass_failures"
RESILIENCE_QUARANTINED_PASSES = "resilience.quarantined_passes"
RESILIENCE_ROLLBACKS = "resilience.rollbacks"

# -- profile database quality (collect_profile_metrics) ----------------
PROFILE_SAMPLED = "profile.sampled"
PROFILE_RUNS = "profile.runs"
PROFILE_STEPS = "profile.steps"
PROFILE_BLOCKS = "profile.blocks"
PROFILE_SITES = "profile.sites"
PROFILE_CONFIDENCE = "profile.confidence"
PROFILE_SAMPLE_RATE = "profile.sample_rate"
PROFILE_SAMPLES = "profile.samples"
PROFILE_EVENTS = "profile.events"
PROFILE_CONTEXT_DEPTH = "profile.context_depth"
PROFILE_CONTEXTS = "profile.contexts"
PROFILE_COVERAGE = "profile.coverage"
PROFILE_MATCH_RATIO = "profile.match_ratio"

# -- interpreter (collect_interp_metrics) ------------------------------
INTERP_ENGINE = "interp.engine"
INTERP_STEPS = "interp.steps"
INTERP_PLANS_COMPILED = "interp.plans_compiled"
INTERP_PLAN_CACHE_HITS = "interp.plan_cache_hits"
INTERP_STEPS_PER_SEC = "interp.steps_per_sec"

# -- guest runtime profiler (collect_runtime_metrics) ------------------
RUNTIME_SAMPLES = "runtime.samples"
RUNTIME_EVENTS = "runtime.events"
RUNTIME_SAMPLE_RATE = "runtime.sample_rate"
RUNTIME_CONTEXTS = "runtime.contexts"
RUNTIME_FRAMES = "runtime.frames"
RUNTIME_CALL_EDGES = "runtime.call_edges"
RUNTIME_MAX_STACK_DEPTH = "runtime.max_stack_depth"

# -- fleet data plane ---------------------------------------------------
FLEET_SHARDS_SENT = "fleet.shards_sent"
FLEET_SHARDS_DROPPED = "fleet.shards_dropped"
FLEET_SHARDS_DELAYED = "fleet.shards_delayed"
FLEET_SHARDS_DAMAGED = "fleet.shards_damaged"
FLEET_SHARDS_DUPLICATED = "fleet.shards_duplicated"  # transport fault
FLEET_SHARDS_RETRIED = "fleet.shards_retried"
FLEET_SHARDS_ACCEPTED = "fleet.shards_accepted"
FLEET_SHARDS_DEDUPED = "fleet.shards_deduped"  # collector dedupe hit
FLEET_SHARDS_CORRUPT = "fleet.shards_corrupt"
FLEET_SHARDS_QUARANTINED = "fleet.shards_quarantined"
FLEET_SHARDS_REJECTED_BREAKER = "fleet.shards_rejected_breaker"
FLEET_BREAKER_OPENS = "fleet.breaker_opens"
FLEET_WAL_APPENDED = "fleet.wal_appended"
FLEET_WAL_REPLAYED = "fleet.wal_replayed"
FLEET_WAL_TRUNCATIONS = "fleet.wal_truncations"

# -- fleet control plane ------------------------------------------------
FLEET_DRIFT = "fleet.drift"
FLEET_CONFIDENCE = "fleet.confidence"
FLEET_REBUILDS = "fleet.rebuilds"
FLEET_ROLLBACKS = "fleet.rollbacks"
FLEET_SWAPS = "fleet.swaps"
FLEET_CANARY_PASS = "fleet.canary_pass"
FLEET_CANARY_FAIL = "fleet.canary_fail"
FLEET_EPOCHS_QUARANTINED = "fleet.epochs_quarantined"
FLEET_SERVE_TRAPS = "fleet.serve_traps"
FLEET_INSTANCE_RESTARTS = "fleet.instance_restarts"
FLEET_COLLECTOR_RESTARTS = "fleet.collector_restarts"
FLEET_CURRENT_BUILD = "fleet.current_build"
FLEET_ROUNDS = "fleet.rounds"
FLEET_CONVERGENCE_JACCARD = "fleet.convergence_jaccard"
FLEET_JACCARD_EXACT = "fleet.jaccard_exact"  # per-tick series
FLEET_SWAP_EPOCH = "fleet.swap_epoch"  # per-tick series (marker)
FLEET_ROLLBACK_EPOCH = "fleet.rollback_epoch"  # per-tick series (marker)
FLEET_LEDGER_ENTRIES = "fleet.ledger_entries"

# -- build daemon (repro serve) -----------------------------------------
SERVE_REQUESTS = "serve.requests"
SERVE_REQUESTS_OK = "serve.requests_ok"
SERVE_REQUESTS_ERROR = "serve.requests_error"
SERVE_BUILDS = "serve.builds"  # builds actually executed (not deduped)
SERVE_RESULT_HITS = "serve.result_hits"  # served from the warm result LRU
SERVE_DEDUPE_HITS = "serve.dedupe_hits"  # joined an identical in-flight build
SERVE_SHED = "serve.shed"  # BUSY replies from the bounded queue
SERVE_TIMEOUTS = "serve.timeouts"
SERVE_CANCELLED = "serve.cancelled"
SERVE_PROTOCOL_ERRORS = "serve.protocol_errors"
SERVE_QUEUE_DEPTH = "serve.queue_depth"  # per-request series
SERVE_INFLIGHT = "serve.inflight"  # per-request series
SERVE_LATENCY_S = "serve.latency_s"  # histogram: per-request wall samples
SERVE_CONNECTIONS = "serve.connections"
SERVE_DRAINS = "serve.drains"


def fleet_instance_pending(source: str) -> str:
    """Per-instance health series: unacknowledged shards in flight."""
    return "fleet.inst.{}.pending".format(source)


def fleet_instance_traps(source: str) -> str:
    """Per-instance health series: cumulative serve traps."""
    return "fleet.inst.{}.serve_traps".format(source)


#: Every fixed canonical name declared above (templates excluded).
ALL_NAMES = tuple(
    sorted(
        value
        for key, value in list(globals().items())
        if key.isupper() and key != "ALL_NAMES" and isinstance(value, str)
    )
)
