"""The guarded pass runner: isolate, roll back, quarantine, bisect.

The HLO sits between front ends and the back end and must never turn a
working build into a broken one — a bad pass should degrade
*optimization quality*, not correctness.  The guard enforces that
contract mechanically:

1. snapshot the IR a pass is about to mutate;
2. run the pass with a step budget;
3. optionally verify the result;
4. on any exception (including verifier failures), restore the
   snapshot, record a structured :class:`~repro.core.report.PassFailure`
   on the report, and let the remaining pipeline continue.

A pass that fails ``max_failures`` times is **quarantined**: the guard
stops running it for the rest of the build, so one buggy pass cannot
turn every procedure's compile into a snapshot/rollback treadmill.

Under ``strict`` the first failure re-raises instead of degrading —
the CI / debugging mode where you want the crash, not the save.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..core.report import HLOReport, PassFailure
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.verifier import verify_proc, verify_program
from ..obs import names
from .snapshot import ProcedureSnapshot, ProgramSnapshot

T = TypeVar("T")

ProcPass = Callable[[Program, Procedure], bool]

PROGRAM_SCOPE = "<program>"


@dataclass
class GuardConfig:
    """Knobs for the guarded pass runner."""

    # Verify IR after every guarded pass application (a checkpoint per
    # pass, not just at the end of HLO).  Catches IR-corrupting passes
    # at the point of corruption instead of at program exit.
    verify_each_pass: bool = False

    # Failures of one pass before it is quarantined for the build.
    max_failures: int = 2

    # Re-raise the first failure instead of rolling back.
    strict: bool = False

    # On a program-level stage failure, bisect to the minimal failing
    # (pass, procedure) pair for the diagnostic.
    bisect: bool = True


class PassGuard:
    """Per-build failure containment shared by every guarded stage."""

    def __init__(self, config: Optional[GuardConfig] = None,
                 report: Optional[HLOReport] = None,
                 observer=None):
        from ..obs import NULL_OBSERVER

        self.config = config or GuardConfig()
        self.report = report
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.failure_counts: Dict[str, int] = {}
        self.failures: List[PassFailure] = []
        self.quarantined: set = set()

    # ------------------------------------------------------------------
    # Guarded execution
    # ------------------------------------------------------------------

    def run_proc_pass(
        self,
        program: Program,
        proc: Procedure,
        name: str,
        run: ProcPass,
        pass_number: int = -1,
        phase: str = "scalar",
    ) -> bool:
        """Run one per-procedure pass under isolation; False on rollback."""
        if name in self.quarantined:
            return False
        snapshot = ProcedureSnapshot(proc)
        try:
            changed = bool(run(program, proc))
            if self.config.verify_each_pass:
                verify_proc(program, proc)
            return changed
        except Exception as exc:
            if self.config.strict:
                raise
            snapshot.restore(proc)
            self._record(name, proc.name, pass_number, phase, exc)
            return False

    def run_program_stage(
        self,
        program: Program,
        name: str,
        run: Callable[[], T],
        pass_number: int = -1,
        phase: str = "input",
        default: Optional[T] = None,
        bisect_pipeline: Optional[Sequence[Tuple[str, ProcPass]]] = None,
    ) -> Optional[T]:
        """Run a whole-program stage under isolation; ``default`` on rollback.

        When the stage is (or wraps) a scalar pipeline, pass it as
        ``bisect_pipeline`` so a failure is narrowed to the minimal
        failing (pass, procedure) pair before the snapshot is restored.
        """
        if name in self.quarantined:
            return default
        snapshot = ProgramSnapshot(program)
        try:
            result = run()
            if self.config.verify_each_pass:
                verify_program(program)
            return result
        except Exception as exc:
            if self.config.strict:
                raise
            culprit = ""
            if self.config.bisect and bisect_pipeline is not None:
                pair = bisect_failure(program, bisect_pipeline)
                if pair is not None:
                    culprit = "{} on @{}".format(pair[0], pair[1])
            snapshot.restore(program)
            self._record(name, PROGRAM_SCOPE, pass_number, phase, exc, culprit=culprit)
            return default

    def run_region_stage(
        self,
        program: Program,
        procs: Sequence[str],
        name: str,
        run: Callable[[], T],
        pass_number: int = -1,
        phase: str = "region",
        default: Optional[T] = None,
        bisect_pipeline: Optional[Sequence[Tuple[str, ProcPass]]] = None,
    ) -> Optional[T]:
        """Run a stage that only mutates ``procs`` (plus additions).

        The region-scoped sibling of :meth:`run_program_stage`: the
        snapshot covers only the named procedures, so a 1000-module
        program doesn't pay a whole-program IR copy for every small
        region the demand planner optimizes.  The *caller* owns the
        scoping contract — a stage that mutates a procedure outside
        ``procs`` and then fails will not have that procedure restored.
        New procedures the stage adds (clones) are deleted on rollback.
        """
        if name in self.quarantined:
            return default
        snapshots = []
        for proc_name in procs:
            proc = program.proc(proc_name)
            if proc is not None:
                snapshots.append(ProcedureSnapshot(proc))
        names_before = {proc.name for proc in program.all_procs()}
        try:
            result = run()
            if self.config.verify_each_pass:
                verify_program(program)
            return result
        except Exception as exc:
            if self.config.strict:
                raise
            culprit = ""
            if self.config.bisect and bisect_pipeline is not None:
                pair = bisect_failure(program, bisect_pipeline)
                if pair is not None:
                    culprit = "{} on @{}".format(pair[0], pair[1])
            for proc in list(program.all_procs()):
                if proc.name not in names_before:
                    program.delete_proc(proc.name)
            for snapshot in snapshots:
                proc = program.proc(snapshot.name)
                if proc is not None:
                    snapshot.restore(proc)
            self._record(name, PROGRAM_SCOPE, pass_number, phase, exc, culprit=culprit)
            return default

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _record(
        self,
        name: str,
        proc: str,
        pass_number: int,
        phase: str,
        exc: Exception,
        culprit: str = "",
    ) -> None:
        count = self.failure_counts.get(name, 0) + 1
        self.failure_counts[name] = count
        quarantined = count >= self.config.max_failures
        if quarantined:
            self.quarantined.add(name)
        failure = PassFailure(
            pass_name=name,
            proc=proc,
            pass_number=pass_number,
            phase=phase,
            error_type=type(exc).__name__,
            error=str(exc) or repr(exc),
            quarantined=quarantined,
            culprit=culprit,
        )
        self.failures.append(failure)
        if self.report is not None:
            self.report.record_pass_failure(failure)
        # A rollback is a moment, not a duration: an instant event at
        # the point the guard caught it, so the trace shows exactly
        # where the degraded build diverged from the healthy one.
        self.observer.tracer.instant(
            "pass-failure:{}".format(name),
            cat="resilience",
            proc=proc,
            phase=phase,
            pass_number=pass_number,
            error=type(exc).__name__,
            quarantined=quarantined,
        )
        self.observer.metrics.count(names.RESILIENCE_ROLLBACKS)


def bisect_failure(
    program: Program,
    pipeline: Sequence[Tuple[str, ProcPass]],
) -> Optional[Tuple[str, str]]:
    """Find the minimal failing (pass name, procedure name) pair.

    Applies every (pass, procedure) combination in isolation, rolling
    each attempt back whether or not it fails, and returns the first
    pair whose application raises (or breaks the verifier).  The
    program is left exactly as it was found.  Returns ``None`` when no
    single pair reproduces the failure (e.g. the bug needs a
    multi-procedure interaction).
    """
    whole = ProgramSnapshot(program)
    try:
        for name, run in pipeline:
            for proc in list(program.all_procs()):
                snapshot = ProcedureSnapshot(proc)
                try:
                    run(program, proc)
                    verify_proc(program, proc)
                except Exception:
                    return (name, proc.name)
                finally:
                    snapshot.restore(proc)
        return None
    finally:
        whole.restore(program)
