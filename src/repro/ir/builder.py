"""A convenience builder for constructing IR procedures by hand.

Used by tests, examples, and the random program generator.  The builder
tracks a current insertion block; instruction helpers return the
destination register so expressions compose naturally::

    b = IRBuilder(module, "add3", [("x", Type.INT)])
    total = b.add(b.reg("x"), b.const(3))
    b.ret(total)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from .basicblock import BasicBlock
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    UnOp,
)
from .module import Module
from .procedure import Procedure
from .types import Type
from .values import FuncRef, GlobalRef, Imm, Operand, Reg

ConstLike = Union[int, float, Operand]


class IRBuilder:
    """Builds one procedure, inserting into a current block."""

    def __init__(
        self,
        module: Module,
        name: str,
        params: Optional[Sequence[Tuple[str, Type]]] = None,
        ret_type: Type = Type.INT,
        linkage: str = "global",
        attrs: Optional[Sequence[str]] = None,
    ):
        self.module = module
        self.proc = Procedure(
            name,
            list(params or []),
            ret_type=ret_type,
            module=module.name,
            linkage=linkage,
            attrs=set(attrs or []),
        )
        module.add_proc(self.proc)
        self.block: BasicBlock = self.proc.add_block(BasicBlock("entry"), entry=True)

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------

    def reg(self, name: str) -> Reg:
        return Reg(name)

    def const(self, value: Union[int, float]) -> Imm:
        if isinstance(value, float):
            return Imm(value, Type.FLT)
        return Imm(value)

    def func(self, name: str) -> FuncRef:
        return FuncRef(name)

    def glob(self, name: str) -> GlobalRef:
        return GlobalRef(name)

    def _op(self, value: ConstLike) -> Operand:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return self.const(value)
        if isinstance(value, bool):
            return self.const(int(value))
        return value

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    def new_block(self, hint: str = "b") -> BasicBlock:
        return self.proc.new_block(hint)

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    # ------------------------------------------------------------------
    # Instruction helpers
    # ------------------------------------------------------------------

    def mov(self, src: ConstLike, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.proc.new_reg()
        self.block.append(Mov(dest, self._op(src)))
        return dest

    def unop(self, op: str, src: ConstLike, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.proc.new_reg()
        self.block.append(UnOp(dest, op, self._op(src)))
        return dest

    def binop(
        self, op: str, lhs: ConstLike, rhs: ConstLike, dest: Optional[Reg] = None
    ) -> Reg:
        dest = dest or self.proc.new_reg()
        self.block.append(BinOp(dest, op, self._op(lhs), self._op(rhs)))
        return dest

    # Common binops as direct helpers.
    def add(self, a: ConstLike, b: ConstLike) -> Reg:
        return self.binop("add", a, b)

    def sub(self, a: ConstLike, b: ConstLike) -> Reg:
        return self.binop("sub", a, b)

    def mul(self, a: ConstLike, b: ConstLike) -> Reg:
        return self.binop("mul", a, b)

    def div(self, a: ConstLike, b: ConstLike) -> Reg:
        return self.binop("div", a, b)

    def eq(self, a: ConstLike, b: ConstLike) -> Reg:
        return self.binop("eq", a, b)

    def lt(self, a: ConstLike, b: ConstLike) -> Reg:
        return self.binop("lt", a, b)

    def load(self, addr: ConstLike, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.proc.new_reg()
        self.block.append(Load(dest, self._op(addr)))
        return dest

    def store(self, addr: ConstLike, value: ConstLike) -> None:
        self.block.append(Store(self._op(addr), self._op(value)))

    def alloca(self, size: ConstLike, dest: Optional[Reg] = None) -> Reg:
        dest = dest or self.proc.new_reg()
        self.block.append(Alloca(dest, self._op(size)))
        return dest

    def call(
        self,
        callee: str,
        args: Sequence[ConstLike] = (),
        dest: Union[Reg, None, bool] = True,
    ) -> Optional[Reg]:
        """Direct call. ``dest=True`` allocates a result register; ``None`` drops it."""
        if dest is True:
            dest = self.proc.new_reg()
        elif dest is False:
            dest = None
        site = self.module.new_site_id()
        self.block.append(Call(dest, callee, [self._op(a) for a in args], site))
        return dest

    def icall(
        self,
        func: ConstLike,
        args: Sequence[ConstLike] = (),
        dest: Union[Reg, None, bool] = True,
    ) -> Optional[Reg]:
        if dest is True:
            dest = self.proc.new_reg()
        elif dest is False:
            dest = None
        site = self.module.new_site_id()
        self.block.append(
            ICall(dest, self._op(func), [self._op(a) for a in args], site)
        )
        return dest

    def jump(self, target: BasicBlock) -> None:
        self.block.append(Jump(target.label))

    def branch(
        self, cond: ConstLike, then_block: BasicBlock, else_block: BasicBlock
    ) -> None:
        self.block.append(Branch(self._op(cond), then_block.label, else_block.label))

    def ret(self, value: Optional[ConstLike] = None) -> None:
        self.block.append(Ret(self._op(value) if value is not None else None))
