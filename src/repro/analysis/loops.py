"""Natural loop discovery and per-block loop depth.

Back edges are CFG edges whose target dominates their source; each back
edge's natural loop is the set of blocks that can reach the edge source
without passing through the header.  Loop depth drives the static
frequency heuristic (a block nested two loops deep is presumed to run
about 10^2 times per procedure entry).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.procedure import Procedure
from .dominators import dominates, immediate_dominators


class Loop:
    """One natural loop: a header and its body block labels."""

    __slots__ = ("header", "body")

    def __init__(self, header: str, body: Set[str]):
        self.header = header
        self.body = body

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Loop header={} |body|={}>".format(self.header, len(self.body))


def find_loops(proc: Procedure) -> List[Loop]:
    """All natural loops, loops with a shared header merged."""
    idom = immediate_dominators(proc)
    preds = proc.predecessors()
    reachable = set(idom)
    by_header: Dict[str, Set[str]] = {}

    for label in reachable:
        for succ in proc.blocks[label].successors():
            if succ in reachable and dominates(idom, succ, label):
                body = _natural_loop(proc, preds, succ, label)
                by_header.setdefault(succ, set()).update(body)

    return [Loop(header, body) for header, body in sorted(by_header.items())]


def _natural_loop(
    proc: Procedure, preds: Dict[str, List[str]], header: str, latch: str
) -> Set[str]:
    body = {header, latch}
    work = [latch]
    while work:
        label = work.pop()
        if label == header:
            continue
        for pred in preds.get(label, []):
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body


def loop_depths(proc: Procedure) -> Dict[str, int]:
    """Loop-nesting depth for every reachable block (0 = not in a loop).

    Nesting is inferred from body containment: a loop nested in another
    has a strictly smaller body contained in the outer body.
    """
    loops = find_loops(proc)
    depths = {label: 0 for label in proc.reachable_labels()}
    for label in depths:
        depths[label] = sum(1 for loop in loops if label in loop.body)
    return depths


def loop_stats(proc: Procedure) -> Tuple[int, int]:
    """(number of loops, maximum nesting depth) for reporting."""
    loops = find_loops(proc)
    depths = loop_depths(proc)
    return len(loops), max(depths.values()) if depths else 0
