"""Workloads: the SPEC-analog benchmark suite and a random program generator."""

from .suite import Workload, all_workloads, get_workload, register, workload_names

__all__ = [
    "Workload",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
]
