"""Exceptions raised during program execution."""

from __future__ import annotations


class ExecError(Exception):
    """A dynamic execution error (trap): bad address, unresolved call,
    division by zero, stack overflow, or exceeding the step limit."""

    def __init__(self, message: str, proc: str = "", label: str = "", index: int = -1):
        location = ""
        if proc:
            location = " at @{}:{}[{}]".format(proc, label, index)
        super().__init__(message + location)
        self.proc = proc
        self.label = label
        self.index = index


class StepLimitExceeded(ExecError):
    """The configured maximum instruction count was reached."""
