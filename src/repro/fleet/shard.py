"""Profile shards: the fleet's unit of transfer, CRC32-framed.

A shard is one instance's sampled evidence from one collection round,
serialized as profiledb text and wrapped in a length- and
CRC32-delimited frame::

    shard <source> <seq> <epoch> <len> crc32 <8hex>
    <len characters of profiledb text>

The frame serves two masters with one format.  On the *transport* it is
the end-to-end integrity check: a corrupted or truncated shard fails
its CRC at the collector and is NACKed back to the source for a retry.
In the *write-ahead spool* (:mod:`repro.fleet.wal`) the same frames are
appended back-to-back; because each one is length-delimited, replay
after a crash walks frame-by-frame and a torn final write is detected
exactly — everything before it is intact by CRC, everything after it
is discarded.

Frame parsing treats its input as hostile (the transport is the fault
injector's favourite seam) and raises a typed
:class:`~repro.resilience.errors.ShardFormatError` — the transit twin
of the profiledb parser's ``ProfileFormatError``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from ..resilience.errors import ShardFormatError

WIRE_MAGIC = "shard"


def _crc(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


@dataclass(frozen=True)
class ProfileShard:
    """One source's profile evidence for one (round, epoch)."""

    source: str  # instance name; no whitespace
    seq: int  # per-source monotonically increasing sequence number
    epoch: int  # collection epoch the evidence was gathered under
    payload: str  # profiledb text (ProfileDatabase.to_text())

    def key(self) -> Tuple[str, int]:
        """The deduplication identity: (source, seq)."""
        return (self.source, self.seq)

    def to_wire(self) -> str:
        if not self.source or any(ch.isspace() for ch in self.source):
            raise ValueError(
                "shard source must be non-empty and whitespace-free: "
                "{!r}".format(self.source)
            )
        return "{} {} {} {} {} crc32 {}\n{}".format(
            WIRE_MAGIC, self.source, self.seq, self.epoch,
            len(self.payload), _crc(self.payload), self.payload,
        )

    @classmethod
    def from_wire(cls, text: str, offset: int = 0) -> Tuple["ProfileShard", int]:
        """Parse one frame starting at ``offset``.

        Returns ``(shard, next_offset)`` so spool replay can walk a
        file of concatenated frames.  Raises
        :class:`ShardFormatError` (kind ``"truncated"``,
        ``"corrupted"``, or ``"malformed"``) on any damage.
        """
        newline = text.find("\n", offset)
        if newline < 0:
            raise ShardFormatError("truncated shard header", "truncated")
        header = text[offset:newline]
        fields = header.split()
        if len(fields) != 7 or fields[0] != WIRE_MAGIC or fields[5] != "crc32":
            raise ShardFormatError(
                "malformed shard header: {!r}".format(header[:80]), "malformed"
            )
        try:
            seq = int(fields[2])
            epoch = int(fields[3])
            length = int(fields[4])
        except ValueError:
            raise ShardFormatError(
                "malformed shard header numbers: {!r}".format(header[:80]),
                "malformed",
            ) from None
        if length < 0:
            raise ShardFormatError("negative shard length", "malformed")
        start = newline + 1
        payload = text[start:start + length]
        if len(payload) < length:
            raise ShardFormatError(
                "truncated shard payload: header says {} chars, "
                "{} present".format(length, len(payload)),
                "truncated",
            )
        computed = _crc(payload)
        if computed != fields[6]:
            raise ShardFormatError(
                "shard checksum mismatch (stated {}, computed {}): "
                "frame is corrupted".format(fields[6], computed),
                "corrupted",
            )
        return cls(fields[1], seq, epoch, payload), start + length

    @classmethod
    def parse_message(cls, text: str) -> "ProfileShard":
        """Parse a transport message that must be exactly one frame."""
        shard, consumed = cls.from_wire(text)
        if text[consumed:].strip():
            raise ShardFormatError(
                "trailing bytes after shard frame", "malformed"
            )
        return shard
