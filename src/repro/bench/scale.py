"""Compile-scaling benchmark (``python -m repro.bench.scale``).

Measures how HLO planning cost grows with program size under each
inlining strategy (docs/performance.md "Inlining strategies").  Two
generated tiers — *small* and *mega* (``workloads/generator.py`` with
``extern_window``, so a 1000-module program generates in O(modules)
and stays statically reachable through its spine while only the
trailing window ever executes) — are trained once per tier, then HLO
runs over a fresh compile per strategy, recording:

- **strategy-stage wall** (``HLOReport.strategy_wall_s``): the wall of
  exactly the planning + transform section the ``strategy`` knob
  selects.  The shared input/output scalar stages cost the same under
  every strategy and would drown the comparison.
- **strategy-stage allocation peak** (``strategy_peak_bytes`` under a
  tracemalloc trace), plus ``resource.getrusage`` ``ru_maxrss`` as a
  whole-process spot check.  ``ru_maxrss`` is monotonic for the life
  of the process, so only the resettable tracemalloc peak can be
  compared across measurements inside one run.
- **sites considered** and transforms performed — the deterministic
  witness: the demand planner's site count tracks the (constant) hot
  footprint while the global planner's tracks program size.

The gates, recorded with their inputs in the report:

- *sublinearity*: for wall, allocation peak, and sites considered, the
  demand strategy's small→mega growth factor must stay below the
  global strategy's times a safety fraction (timing gates can be
  disabled for noisy hosts; the sites gate is deterministic and always
  on).
- *cycles parity*: on the real suite workloads (compress/sc/vortex by
  default) a demand build's achieved simulated cycles must stay within
  ``MAX_PARITY_RATIO`` of the global build's — scaling must not cost
  performance where it matters.

``repro bench-scale`` wires this up with ``--merge-into`` so the
``scale`` section lands in ``BENCH_smoke.json`` (schema v8) next to
the smoke measurements, and ``--summary-out`` renders the per-strategy
table for ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

import argparse
import gc
import json
import time
import tracemalloc
from typing import List, Optional, Sequence, Tuple

SCALE_SEED = 7
DEFAULT_SMALL_MODULES = 40
DEFAULT_MEGA_MODULES = 1000
DEFAULT_FUNCS_PER_MODULE = 4
DEFAULT_EXTERN_WINDOW = 8
DEFAULT_PARITY_WORKLOADS = ("compress", "sc", "vortex")
PARITY_SCOPE = "cp"
STRATEGIES = ("global", "demand")

# Sublinearity: demand growth factor must stay below global's times
# this fraction.  Measured headroom is large (demand tracks the
# constant hot footprint), so these are not tight.
MAX_WALL_GROWTH_FRACTION = 0.75
MAX_PEAK_GROWTH_FRACTION = 0.9
MAX_SITES_GROWTH_FRACTION = 0.5
# Cycles parity: demand cycles <= global cycles * this ratio.
MAX_PARITY_RATIO = 1.05


def _ru_maxrss_mb() -> float:
    """Whole-process peak RSS in MB (sticky: monotonic per process)."""
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return round(peak / divisor, 1)


def _measure_tier(
    n_modules: int,
    funcs_per_module: int,
    extern_window: int,
    seed: int,
) -> dict:
    """Generate, train once, then run HLO per strategy on fresh compiles."""
    from ..frontend.driver import compile_program
    from ..linker.toolchain import Toolchain
    from ..profile.annotate import annotate_program
    from ..core.config import HLOConfig
    from ..core.hlo import run_hlo
    from ..workloads.generator import generate_sources

    n_globals = max(4, n_modules // 4)
    sources = generate_sources(
        seed, n_modules=n_modules, funcs_per_module=funcs_per_module,
        n_globals=n_globals, extern_window=extern_window,
    )

    started = time.perf_counter()
    toolchain = Toolchain(sources, train_inputs=[[]], jobs=1)
    profile, _units = toolchain._train()
    train_wall = time.perf_counter() - started

    tier = {
        "n_modules": n_modules,
        "funcs_per_module": funcs_per_module,
        "n_globals": n_globals,
        "train_wall_s": round(train_wall, 4),
        "strategies": {},
    }
    for strategy in STRATEGIES:
        started = time.perf_counter()
        program = compile_program(sources)
        frontend_wall = time.perf_counter() - started
        annotate_program(program, profile)
        config = HLOConfig(strategy=strategy).with_scope(True, True)
        gc.collect()
        tracemalloc.start()
        started = time.perf_counter()
        report = run_hlo(
            program, config, site_counts=profile.site_counts,
            context_counts=profile.context_view(),
        )
        hlo_wall = time.perf_counter() - started
        tracemalloc.stop()
        tier["strategies"][strategy] = {
            "strategy_wall_s": round(report.strategy_wall_s, 4),
            "strategy_peak_kb": round(report.strategy_peak_bytes / 1024.0, 1),
            "hlo_wall_s": round(hlo_wall, 4),
            "frontend_wall_s": round(frontend_wall, 4),
            "sites_considered": report.sites_considered,
            "transforms": report.transform_count,
            "regions_formed": report.regions_formed,
            "region_budget_exhausted": report.region_budget_exhausted,
            "final_procs": sum(1 for _ in program.all_procs()),
            "final_size": program.size(),
            "ru_maxrss_mb": _ru_maxrss_mb(),
        }
    return tier


def _measure_parity(names: Sequence[str], scope: str) -> dict:
    """Suite workloads built under both strategies; cycles compared."""
    from ..core.config import HLOConfig
    from ..linker.toolchain import Toolchain
    from ..workloads.suite import get_workload

    parity = {}
    for name in names:
        workload = get_workload(name)
        entry = {}
        for strategy in STRATEGIES:
            toolchain = Toolchain(
                list(workload.sources),
                train_inputs=[list(t) for t in workload.train_inputs],
                config=HLOConfig(strategy=strategy),
                jobs=1,
            )
            result = toolchain.build(scope)
            metrics, _run = result.run(workload.ref_input)
            entry["{}_cycles".format(strategy)] = round(metrics.cycles, 2)
            entry["{}_sites".format(strategy)] = result.report.sites_considered
        entry["ratio"] = round(
            entry["demand_cycles"] / entry["global_cycles"], 4
        ) if entry["global_cycles"] else 0.0
        parity[name] = entry
    return parity


def _growth(tiers: dict, strategy: str, key: str) -> float:
    small = tiers["small"]["strategies"][strategy][key]
    mega = tiers["mega"]["strategies"][strategy][key]
    if not small:
        return 0.0
    return round(mega / small, 3)


def run_scale(
    small_modules: int = DEFAULT_SMALL_MODULES,
    mega_modules: int = DEFAULT_MEGA_MODULES,
    funcs_per_module: int = DEFAULT_FUNCS_PER_MODULE,
    extern_window: int = DEFAULT_EXTERN_WINDOW,
    seed: int = SCALE_SEED,
    parity_workloads: Sequence[str] = DEFAULT_PARITY_WORKLOADS,
    gate_timing: bool = True,
) -> Tuple[dict, List[str]]:
    """The full scaling measurement; returns (scale section, failures)."""
    failures: List[str] = []
    tiers = {
        "small": _measure_tier(small_modules, funcs_per_module,
                               extern_window, seed),
        "mega": _measure_tier(mega_modules, funcs_per_module,
                              extern_window, seed),
    }
    growth = {
        strategy: {
            "strategy_wall": _growth(tiers, strategy, "strategy_wall_s"),
            "strategy_peak": _growth(tiers, strategy, "strategy_peak_kb"),
            "sites_considered": _growth(tiers, strategy, "sites_considered"),
        }
        for strategy in STRATEGIES
    }

    def ratio(key: str) -> float:
        if not growth["global"][key]:
            return 0.0
        return round(growth["demand"][key] / growth["global"][key], 3)

    ratios = {
        "wall_growth_ratio": ratio("strategy_wall"),
        "peak_growth_ratio": ratio("strategy_peak"),
        "sites_growth_ratio": ratio("sites_considered"),
    }

    gates = {
        "sites_sublinear": ratios["sites_growth_ratio"] < MAX_SITES_GROWTH_FRACTION,
        "wall_sublinear": ratios["wall_growth_ratio"] < MAX_WALL_GROWTH_FRACTION,
        "peak_sublinear": ratios["peak_growth_ratio"] < MAX_PEAK_GROWTH_FRACTION,
    }
    if not gates["sites_sublinear"]:
        failures.append(
            "scale: demand sites-considered growth ratio {:.3f} not below "
            "{:.2f} of global's".format(
                ratios["sites_growth_ratio"], MAX_SITES_GROWTH_FRACTION
            )
        )
    if gate_timing and not gates["wall_sublinear"]:
        failures.append(
            "scale: demand strategy-wall growth ratio {:.3f} not below "
            "{:.2f} of global's".format(
                ratios["wall_growth_ratio"], MAX_WALL_GROWTH_FRACTION
            )
        )
    if gate_timing and not gates["peak_sublinear"]:
        failures.append(
            "scale: demand allocation-peak growth ratio {:.3f} not below "
            "{:.2f} of global's".format(
                ratios["peak_growth_ratio"], MAX_PEAK_GROWTH_FRACTION
            )
        )

    parity = _measure_parity(parity_workloads, PARITY_SCOPE)
    parity_ok = True
    for name, entry in parity.items():
        if entry["ratio"] > MAX_PARITY_RATIO:
            parity_ok = False
            failures.append(
                "scale: {} demand cycles {:.2f} exceed global {:.2f} by "
                "more than {:.0f}% (ratio {:.3f})".format(
                    name, entry["demand_cycles"], entry["global_cycles"],
                    (MAX_PARITY_RATIO - 1) * 100, entry["ratio"],
                )
            )
    gates["cycles_parity"] = parity_ok

    section = {
        "seed": seed,
        "extern_window": extern_window,
        "module_growth": round(mega_modules / small_modules, 2),
        "tiers": tiers,
        "growth": growth,
        "ratios": ratios,
        "parity": parity,
        "gates": gates,
        "timing_gated": gate_timing,
        "limits": {
            "max_wall_growth_fraction": MAX_WALL_GROWTH_FRACTION,
            "max_peak_growth_fraction": MAX_PEAK_GROWTH_FRACTION,
            "max_sites_growth_fraction": MAX_SITES_GROWTH_FRACTION,
            "max_parity_ratio": MAX_PARITY_RATIO,
        },
    }
    return section, failures


def step_summary(section: dict, failures: Sequence[str]) -> str:
    """A GitHub step-summary Markdown view of one scale section."""
    tiers = section.get("tiers", {})
    lines = [
        "## Bench scale ({}x module growth, window {})".format(
            section.get("module_growth", "?"), section.get("extern_window", "?")
        ),
        "",
        "| tier | strategy | stage wall (s) | stage peak (KB) | sites "
        "| transforms | RSS spot (MB) |",
        "|---|---|---:|---:|---:|---:|---:|",
    ]
    for tier_name in ("small", "mega"):
        tier = tiers.get(tier_name, {})
        for strategy, entry in sorted(tier.get("strategies", {}).items()):
            lines.append(
                "| {} ({} mod) | {} | {:.3f} | {:.1f} | {:,} | {} "
                "| {:.1f} |".format(
                    tier_name, tier.get("n_modules", "?"), strategy,
                    entry.get("strategy_wall_s", 0.0),
                    entry.get("strategy_peak_kb", 0.0),
                    entry.get("sites_considered", 0),
                    entry.get("transforms", 0),
                    entry.get("ru_maxrss_mb", 0.0),
                )
            )
    ratios = section.get("ratios", {})
    lines += [
        "",
        "- growth ratios (demand/global, small→mega): wall {}, "
        "allocation peak {}, sites {}".format(
            ratios.get("wall_growth_ratio", "?"),
            ratios.get("peak_growth_ratio", "?"),
            ratios.get("sites_growth_ratio", "?"),
        ),
    ]
    parity = section.get("parity", {})
    if parity:
        pieces = [
            "{} {:.3f}".format(name, entry.get("ratio", 0.0))
            for name, entry in sorted(parity.items())
        ]
        lines.append(
            "- cycles parity (demand/global, ceiling {:.2f}): {}".format(
                section.get("limits", {}).get("max_parity_ratio",
                                              MAX_PARITY_RATIO),
                ", ".join(pieces),
            )
        )
    if failures:
        lines += ["", "### Failures", ""]
        lines += ["- `{}`".format(failure) for failure in failures]
    else:
        lines += ["", "All scale gates green."]
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.scale",
        description="compile-scaling benchmark: global vs demand strategy",
    )
    parser.add_argument("--small", type=int, default=DEFAULT_SMALL_MODULES,
                        metavar="N", help="small-tier module count")
    parser.add_argument("--mega", type=int, default=DEFAULT_MEGA_MODULES,
                        metavar="N", help="mega-tier module count")
    parser.add_argument("--funcs-per-module", type=int,
                        default=DEFAULT_FUNCS_PER_MODULE, metavar="N")
    parser.add_argument("--window", type=int, default=DEFAULT_EXTERN_WINDOW,
                        metavar="K", help="generator extern visibility window")
    parser.add_argument("--seed", type=int, default=SCALE_SEED)
    parser.add_argument("--parity-workloads",
                        default=",".join(DEFAULT_PARITY_WORKLOADS),
                        help="comma-separated suite workloads for the "
                        "cycles-parity gate")
    parser.add_argument("--no-timing-gates", action="store_true",
                        help="record wall/peak growth but gate only the "
                        "deterministic sites ratio and cycles parity")
    parser.add_argument("--output", metavar="FILE",
                        help="write the scale section as JSON here")
    parser.add_argument("--merge-into", metavar="FILE",
                        help="merge the scale section into an existing "
                        "BENCH_smoke.json report")
    parser.add_argument("--summary-out", metavar="FILE",
                        help="append a Markdown summary table here "
                        "(point at $GITHUB_STEP_SUMMARY in CI)")
    args = parser.parse_args(argv)

    names = [p.strip() for p in args.parity_workloads.split(",") if p.strip()]
    section, failures = run_scale(
        small_modules=args.small,
        mega_modules=args.mega,
        funcs_per_module=args.funcs_per_module,
        extern_window=args.window,
        seed=args.seed,
        parity_workloads=names,
        gate_timing=not args.no_timing_gates,
    )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(section, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote", args.output)
    if args.merge_into:
        with open(args.merge_into) as handle:
            report = json.load(handle)
        report["scale"] = section
        with open(args.merge_into, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("merged scale section into", args.merge_into)
    if args.summary_out:
        with open(args.summary_out, "a") as handle:
            handle.write(step_summary(section, failures))
        print("appended summary to", args.summary_out)

    growth = section["growth"]
    for strategy in STRATEGIES:
        print(
            "scale: {:<6} growth small→mega: wall x{}, peak x{}, "
            "sites x{}".format(
                strategy, growth[strategy]["strategy_wall"],
                growth[strategy]["strategy_peak"],
                growth[strategy]["sites_considered"],
            )
        )
    print(
        "scale: demand/global growth ratios: wall {}, peak {}, sites {}".format(
            section["ratios"]["wall_growth_ratio"],
            section["ratios"]["peak_growth_ratio"],
            section["ratios"]["sites_growth_ratio"],
        )
    )
    for name, entry in sorted(section["parity"].items()):
        print(
            "scale: parity {}: global {:.2f} vs demand {:.2f} cycles "
            "(ratio {:.3f})".format(
                name, entry["global_cycles"], entry["demand_cycles"],
                entry["ratio"],
            )
        )
    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
