"""HLOReport bookkeeping."""

from repro.core import HLOReport
from repro.core.report import PassTrace, TransformEvent


class TestReport:
    def test_record_inline(self):
        report = HLOReport()
        report.record_inline(0, "a", "b", 7)
        assert report.inlines == 1
        event = report.events[0]
        assert event.kind == "inline"
        assert (event.caller, event.callee, event.site_id) == ("a", "b", 7)

    def test_record_clone_replacement(self):
        report = HLOReport()
        report.record_clone_replacement(1, "caller", "f.c1", 3, "f")
        assert report.clone_replacements == 1
        assert report.events[0].kind == "clone-replace"
        assert report.events[0].detail == "f"

    def test_transform_count_is_figure8_axis(self):
        report = HLOReport()
        report.record_inline(0, "a", "b", 1)
        report.record_clone_replacement(0, "a", "b.c1", 2, "b")
        report.clones += 1  # clone creation itself does not count
        assert report.transform_count == 2

    def test_deletions_and_promotions(self):
        report = HLOReport()
        report.record_deletion("dead")
        report.record_promotion("@secret$lib")
        assert report.deletions == 1
        assert report.deleted_procs == ["dead"]
        assert report.promotions == 1
        assert report.promoted_symbols == ["@secret$lib"]

    def test_summary_row_columns(self):
        report = HLOReport()
        row = report.summary_row()
        assert set(row) == {
            "inlines", "clones", "clone_replacements", "deletions", "compile_cost",
        }

    def test_str_mentions_counts(self):
        report = HLOReport()
        report.inlines = 5
        report.outlines = 2
        text = str(report)
        assert "inlines=5" in text

    def test_event_ordering_preserved(self):
        report = HLOReport()
        for i in range(5):
            report.record_inline(i % 2, "a", "b", i)
        assert [e.site_id for e in report.events] == [0, 1, 2, 3, 4]
