"""HLO driver: the multi-pass inline-and-clone loop (Figure 2).

    Inline_and_Clone(G):
        C = sum over routines of size(R)^2
        B = C * growth
        stage the budget across passes
        while C < B and passes remain:
            C = Clone(G, S[P], C, D)
            C = Inline(G, S[P], C)

Before the loop an input-stage cleanup runs (the paper performs classic
optimizations at input "mainly to reduce its size", plus the
interprocedural side-effect analysis that deletes no-op calls); after
each pass unreachable routines are deleted ("the clonee may become
unreachable in the call graph and will be deleted"); after the loop the
whole program is re-optimized.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.callgraph import CallGraph
from ..ir.instructions import ICall
from ..ir.program import Program
from ..ir.verifier import verify_program
from ..obs import NULL_OBSERVER
from ..opt.pass_manager import default_pipeline, optimize_program
from .budget import Budget
from .cloner import CloneDatabase, clone_pass
from .config import HLOConfig
from .inliner import inline_pass
from .report import HLOReport, PassTrace

SiteCounts = Dict[Tuple[str, int], int]


def run_hlo(
    program: Program,
    config: Optional[HLOConfig] = None,
    site_counts: Optional[SiteCounts] = None,
    verify: bool = True,
    pipeline: Optional[list] = None,
    observer=None,
    context_counts=None,
) -> HLOReport:
    """Run the full HLO pipeline over ``program`` in place.

    ``context_counts`` carries a context-sensitive profile's per-caller
    block counts (:meth:`~repro.profile.ProfileDatabase.context_view`)
    into the cloner's benefit estimation; ``None`` keeps the classic
    aggregate estimates.

    ``pipeline`` overrides the scalar pipeline used by the input/output
    optimization stages (the fault-injection harness substitutes
    sabotaged passes here; production callers leave it ``None``).

    ``observer`` is a :class:`~repro.obs.BuildObserver`: every stage
    and pass below becomes a trace span, guarded-pass failures become
    instant events, and each call site the transforms evaluate leaves
    a decision on the inlining ledger.  ``None`` (the default) is the
    no-op fast path.

    With ``config.guarded`` (the default) every stage runs behind the
    resilience layer's :class:`~repro.resilience.PassGuard`: a failing
    pass rolls back to the last good IR and the build continues,
    recording a :class:`~repro.core.report.PassFailure` on the report.
    Under ``config.strict`` the first failure raises instead.
    """
    config = config or HLOConfig()
    if config.strategy not in ("global", "demand"):
        raise ValueError("unknown HLO strategy: {!r}".format(config.strategy))
    report = HLOReport()
    obs = observer if observer is not None else NULL_OBSERVER

    guard = None
    if config.guarded:
        from ..resilience.guard import GuardConfig, PassGuard

        guard = PassGuard(
            GuardConfig(
                verify_each_pass=config.verify_each_pass,
                max_failures=config.max_pass_failures,
                strict=config.strict,
            ),
            report,
            observer=obs,
        )

    icalls_before = _count_icalls(program)

    # Input stage: classic clean-up plus interprocedural dead-call
    # elimination, before any budget measurement.
    with obs.tracer.span("input-stage", cat="hlo"):
        optimize_program(program, pipeline, guard=guard, phase="input")
        _delete_unreachable(program, report, config.cross_module)

    if config.enable_outlining:
        # Section 5's complement: shrink hot routines by extracting cold
        # blocks *before* the budget is measured, so the freed quadratic
        # headroom funds additional hot-path inlining below.
        from .outliner import outline_pass

        def run_outline() -> None:
            outline_pass(
                program,
                report,
                cold_ratio=config.outline_cold_ratio,
                min_block_size=config.outline_min_block_size,
            )

        with obs.tracer.span("outline", cat="hlo"):
            if guard is not None:
                guard.run_program_stage(program, "outline", run_outline, phase="input")
            else:
                run_outline()

    # Analyses computed from here on are memoized across stages and
    # passes; the inliner/cloner invalidate exactly what they mutate
    # (docs/performance.md).  Created after the input stage so the
    # scalar clean-up above never leaves stale entries behind.
    manager = None
    if config.memoize_analyses:
        from ..analysis.manager import AnalysisManager

        manager = AnalysisManager(program)

    budget = Budget(program, config.budget_percent, config.pass_limit)
    report.initial_cost = budget.initial_cost
    report.budget_limit = budget.limit
    database = CloneDatabase()

    # Strategy-stage accounting: wall and (when a tracemalloc trace is
    # already running, e.g. under ``repro bench-scale``) allocation peak
    # over exactly the planning + transform work the strategy knob
    # controls.  The shared input/output optimization stages are the
    # same cost for every strategy and would drown the comparison.
    import time as _time

    if _tracemalloc_tracing():
        import tracemalloc

        tracemalloc.reset_peak()
        strategy_mem_base = tracemalloc.get_traced_memory()[0]
    else:
        strategy_mem_base = None
    strategy_started = _time.perf_counter()

    if config.strategy == "demand":
        # Demand-driven region-based strategy (docs/performance.md
        # "Inlining strategies"): form profile-hot regions and optimize
        # only their interiors under per-region budgets.  Replaces the
        # global multi-pass loop below; everything around it (input /
        # output stages, sweeps, verification) is shared.
        from .regions import demand_stage

        with obs.tracer.span("demand-stage", cat="hlo"):
            demand_stage(
                program, config, budget, report, database, site_counts,
                manager, obs, context_counts, guard, pipeline,
            )
        with obs.tracer.span("unreachable-sweep", cat="hlo"):
            _delete_unreachable(program, report, config.cross_module, manager)

    pass_number = 0
    while config.strategy == "global" and pass_number < config.pass_limit and not budget.exhausted():
        if config.stop_after is not None and report.transform_count >= config.stop_after:
            break
        performed = 0
        if config.enable_cloning:
            before = budget.current

            def run_clone() -> int:
                return clone_pass(
                    program, config, budget, report, pass_number, database,
                    site_counts, manager, obs, context_counts,
                )

            with obs.tracer.span(
                "clone-pass-{}".format(pass_number), cat="hlo"
            ) as span:
                replaced = _guarded_stage(
                    guard, program, "clone", run_clone, pass_number, "clone",
                    pipeline, report, budget, database, manager, obs,
                )
                span.add(performed=replaced)
            report.pass_traces.append(
                PassTrace(
                    pass_number, "clone", replaced, before, budget.current,
                    budget.stage_limit(pass_number),
                )
            )
            performed += replaced
        if config.enable_inlining:
            before = budget.current

            def run_inline() -> int:
                return inline_pass(
                    program, config, budget, report, pass_number, site_counts,
                    manager, obs,
                )

            with obs.tracer.span(
                "inline-pass-{}".format(pass_number), cat="hlo"
            ) as span:
                inlined = _guarded_stage(
                    guard, program, "inline", run_inline, pass_number, "inline",
                    pipeline, report, budget, database, manager, obs,
                )
                span.add(performed=inlined)
            report.pass_traces.append(
                PassTrace(
                    pass_number, "inline", inlined, before, budget.current,
                    budget.stage_limit(pass_number),
                )
            )
            performed += inlined

        with obs.tracer.span("unreachable-sweep", cat="hlo"):
            _delete_unreachable(program, report, config.cross_module, manager)
        budget.recalibrate(program)
        pass_number += 1
        report.passes_run = pass_number
        # A zero-progress pass does NOT end the loop: later passes get a
        # larger stage allotment (Figure 2's staging), so a site that
        # was too expensive for this stage may be accepted next pass.

    report.strategy_wall_s = _time.perf_counter() - strategy_started
    if strategy_mem_base is not None:
        import tracemalloc

        report.strategy_peak_bytes = max(
            0, tracemalloc.get_traced_memory()[1] - strategy_mem_base
        )

    # Output stage: intensive re-optimization of the final bodies.
    # The scalar pipeline mutates arbitrary procedures, so every
    # memoized analysis is stale afterwards.
    with obs.tracer.span("output-stage", cat="hlo"):
        optimize_program(program, pipeline, guard=guard, phase="output")
        if manager is not None:
            manager.invalidate_all()
        _delete_unreachable(program, report, config.cross_module, manager)
    budget.recalibrate(program)
    report.final_cost = budget.current
    report.clone_db_hits = database.hits
    report.devirtualized = max(0, icalls_before - _count_icalls(program))
    if manager is not None:
        report.analysis_hits = manager.hits
        report.analysis_misses = manager.misses
        report.analysis_invalidations = manager.invalidations

    if verify:
        verify_program(program)
    return report


def _tracemalloc_tracing() -> bool:
    import tracemalloc

    return tracemalloc.is_tracing()


def _guarded_stage(
    guard,
    program: Program,
    name: str,
    run,
    pass_number: int,
    phase: str,
    pipeline,
    report: HLOReport,
    budget: Budget,
    database: CloneDatabase,
    manager=None,
    obs=NULL_OBSERVER,
) -> int:
    """Run one clone/inline stage, unwinding side-state on rollback.

    The guard restores the IR; this helper additionally restores the
    report counters, clone database, inlining ledger, and budget so a
    rolled-back stage leaves no phantom transforms, stale clone names,
    phantom ledger decisions, or charged cost.  A rollback replaces
    procedure *objects*, so every memoized analysis is dropped too.
    """
    if guard is None:
        return run()
    report_mark = report.mark()
    db_mark = database.mark()
    ledger_mark = obs.ledger.mark()
    failures_before = len(guard.failures)
    result = guard.run_program_stage(
        program, name, run, pass_number, phase,
        default=0, bisect_pipeline=pipeline or default_pipeline(),
    )
    if len(guard.failures) > failures_before:
        report.rollback_to(report_mark)
        database.rollback_to(db_mark)
        obs.ledger.rollback_to(ledger_mark)
        budget.recalibrate(program)
        if manager is not None:
            manager.invalidate_all()
        return 0
    return result


def _count_icalls(program: Program) -> int:
    return sum(
        1
        for proc in program.all_procs()
        for instr in proc.instructions()
        if isinstance(instr, ICall)
    )


def _delete_unreachable(
    program: Program, report: HLOReport, whole_program: bool, manager=None
) -> None:
    """Delete routines unreachable from the roots.

    With the whole program visible (link-time scope), ``main`` is the
    only root, so clonees whose every call was cloned or inlined die,
    as do dead file-scope user routines.  Module-at-a-time compilation
    must assume unseen callers of every global-linkage routine, so only
    unreferenced statics can go.
    """
    if program.proc("main") is None:
        return
    graph = manager.callgraph() if manager is not None else CallGraph(program)
    if whole_program:
        roots = ["main"]
    else:
        roots = [
            p.name for p in program.all_procs() if p.linkage != "static"
        ]
    keep = set(graph.reachable_from(roots))
    deleted = []
    for proc in list(program.all_procs()):
        if proc.name not in keep:
            program.delete_proc(proc.name)
            report.record_deletion(proc.name)
            deleted.append(proc.name)
    if manager is not None and deleted:
        manager.invalidate_procs(deleted)
