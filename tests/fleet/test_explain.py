"""The fleet decision ledger is complete by construction.

Every collector verdict and every controller decision the loop makes
must land in the ledger — the loop tallies them independently in the
:class:`FleetReport`, so the two counts can be compared without
trusting either side.  ``repro fleet explain`` surfaces the same
invariant from the CLI.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.fleet import FleetConfig, FleetLoop
from repro.obs import BuildObserver, MetricsRegistry
from repro.obs import names
from repro.obs.fleetledger import FleetLedger
from repro.obs.validate import (
    validate_fleet_ledger_jsonl,
    validate_series_jsonl,
)
from repro.resilience import SHARD_FAULTS, FaultInjector

from .conftest import REF_INPUT, TRAIN_INPUTS

INSTANCE_SERIES_RE = re.compile(r"^fleet\.inst\.[a-z0-9_]+\.[a-z0-9_]+$")


def matrix_loop(sources, tmp_path, observer):
    injector = FaultInjector(
        seed=7,
        shard_faults=SHARD_FAULTS,
        shard_fault_rate=0.25,
        wal_tail_rounds=(3,),
        kill_mid_swap_epochs=(1,),
        canary_trap_epochs=(1,),
        flap_sources=("inst0",),
    )
    return FleetLoop(
        sources, TRAIN_INPUTS, REF_INPUT,
        config=FleetConfig(rounds=10, seed=7),
        injector=injector,
        spool_path=str(tmp_path / "shards.wal"),
        observer=observer,
    )


class TestLedgerCompleteness:
    @pytest.fixture()
    def run(self, sources, tmp_path):
        observer = BuildObserver(
            metrics=MetricsRegistry(), fleet=FleetLedger()
        )
        report = matrix_loop(sources, tmp_path, observer).run()
        return observer, report

    def test_every_verdict_and_decision_is_ledgered(self, run):
        observer, report = run
        ledger = observer.fleet
        # The report tallies verdicts/decisions independently of the
        # ledger; equality means nothing bypassed the recording funnel.
        assert report.collector_verdicts > 0
        assert report.controller_decisions > 0
        assert ledger.verdicts == report.collector_verdicts
        assert ledger.decisions == report.controller_decisions

    def test_fault_matrix_exercises_the_code_vocabulary(self, run):
        observer, _report = run
        codes = observer.fleet.code_counts()
        assert codes.get("verdict.accepted", 0) > 0
        assert codes.get("decision.swap", 0) >= 1
        assert codes.get("decision.rollback", 0) >= 1

    def test_ledger_jsonl_round_trips(self, run, tmp_path):
        observer, _report = run
        path = tmp_path / "ledger.jsonl"
        observer.fleet.write_jsonl(str(path))
        assert validate_fleet_ledger_jsonl(path.read_text()) == []

    def test_series_are_sampled_per_tick(self, run, tmp_path):
        observer, report = run
        bank = observer.metrics.series
        assert names.FLEET_JACCARD_EXACT in bank.names()
        assert names.FLEET_LEDGER_ENTRIES in bank.names()
        # One ledger-size point per tick, monotonically non-decreasing,
        # ending at the final ledger size.
        points = bank.get(names.FLEET_LEDGER_ENTRIES).points()
        values = [value for _tick, value in points]
        assert values == sorted(values)
        assert values[-1] == observer.fleet.total
        path = tmp_path / "series.jsonl"
        bank.write_jsonl(str(path))
        assert validate_series_jsonl(path.read_text()) == []

    def test_series_names_are_canonical(self, run):
        observer, _report = run
        for name in observer.metrics.series.names():
            assert name in names.ALL_NAMES or INSTANCE_SERIES_RE.match(
                name
            ), name


class TestExplainCli:
    MATRIX = [
        "--rounds", "10", "--seed", "7", "--fault-rate", "0.25",
        "--wal-tail", "3", "--kill-mid-swap", "1", "--canary-trap", "1",
        "--flap", "inst0",
    ]

    def test_explain_reports_full_completeness(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        code = main(
            ["fleet", "explain", "compress", *self.MATRIX,
             "--spool", str(tmp_path / "shards.wal"),
             "-o", str(ledger_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        match = re.search(
            r"completeness: (\d+)/(\d+) collector verdicts, "
            r"(\d+)/(\d+) controller decisions ledgered",
            out,
        )
        assert match, out
        ledgered_v, total_v, ledgered_d, total_d = map(int, match.groups())
        assert ledgered_v == total_v > 0
        assert ledgered_d == total_d > 0
        assert validate_fleet_ledger_jsonl(ledger_path.read_text()) == []

    def test_explain_json_is_the_ledger_jsonl(self, tmp_path, capsys):
        code = main(
            ["fleet", "explain", "compress", "--rounds", "3",
             "--spool", str(tmp_path / "shards.wal"), "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert validate_fleet_ledger_jsonl(out) == []
        header = json.loads(out.splitlines()[0])
        assert header["kind"] == "fleet-ledger"
