"""Demand-driven region-based inlining (``strategy="demand"``).

The paper's whole-program loop (Figure 2) walks every call site each
pass, so compile time and peak memory scale with *program* size.
Way & Pollock's region-based formulation inverts that: form hot
regions from the profile, inline only what each region demands, and
bound work by region size.  This module is that strategy:

- :func:`form_regions` seeds regions at the hottest procedures (entry
  count above a fraction of the hottest), marks each member's hot
  blocks, widens the hot set along dominator / loop structure
  (control-equivalent classes and natural-loop bodies), and grows the
  region through its hottest interior call sites until a per-region
  size cap — at most ``region_limit`` regions, so planner work is
  bounded regardless of program size;
- :func:`demand_stage` walks only region-interior call sites,
  requesting inlines and clones from the existing legality / benefit /
  budget machinery (``inline_blocker`` / ``rank_site`` /
  ``perform_inline``, ``clone_blocker`` / ``make_clone_spec`` /
  ``copy_into_new_proc``) under a :class:`RegionBudget` — the
  region-local analogue of the global quadratic budget.

Cold procedures are never block-analyzed, ranked, or copied; their
memoized analyses are never invalidated (the manager's
``invalidate_region``).  Every ledger decision carries the region
name, and a guarded region failure rolls back only that region's
decisions and analyses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.callgraph import CallGraph, CallSite
from ..analysis.dominators import control_equivalent_classes
from ..analysis.freq import entry_counts, site_weight
from ..analysis.loops import find_loops
from ..ir.instructions import Call
from ..ir.program import Program
from ..obs import NULL_OBSERVER
from ..obs.ledger import record_decision
from ..opt.pass_manager import default_pipeline, optimize_proc
from .benefit import cached_block_freqs, rank_site
from .budget import Budget
from .cloner import (
    CloneDatabase,
    _address_taken,
    _entry_count,
    _retarget_site,
    context_matches,
    make_clone_spec,
    param_usage_weights,
    spec_key,
)
from .config import HLOConfig
from .inliner import GLUE_FIXED, GLUE_PER_ARG, perform_inline
from .legality import clone_blocker, inline_blocker
from .report import HLOReport, PassTrace
from .transplant import copy_into_new_proc, subtract_moved_counts, transfer_ratio

SiteCounts = Dict[Tuple[str, int], int]


class Region:
    """One profile-hot region: member procedures and their hot sites."""

    __slots__ = ("name", "index", "seed", "procs", "sites", "size", "cost",
                 "cut")

    def __init__(self, index: int, seed: str, cut: float):
        self.index = index
        self.seed = seed
        self.name = "r{}:{}".format(index, seed)
        self.procs: Set[str] = set()
        self.sites: List[CallSite] = []
        self.size = 0
        self.cost = 0.0
        # The absolute heat threshold this region was formed at; reused
        # when the planner re-enumerates hot sites between iterations.
        self.cut = cut

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Region {} procs={} sites={} size={}>".format(
            self.name, len(self.procs), len(self.sites), self.size
        )


class RegionBudget:
    """Per-region compile-cost allowance (region-local Figure 2 budget).

    Seeded with the region's own quadratic cost; transforms charge the
    same :meth:`Budget.inline_delta` / :meth:`Budget.clone_delta`
    statics the global strategy uses, but against the region's
    allowance — growth is bounded by hot-footprint size, not program
    size.
    """

    __slots__ = ("initial", "limit", "current", "ran_out")

    def __init__(self, region_cost: float, percent: float):
        self.initial = region_cost
        self.limit = region_cost + region_cost * percent / 100.0
        self.current = region_cost
        self.ran_out = False

    def fits(self, delta: float) -> bool:
        if self.current + delta <= self.limit:
            return True
        self.ran_out = True
        return False

    def charge(self, delta: float) -> None:
        self.current += delta


# ----------------------------------------------------------------------
# Region formation
# ----------------------------------------------------------------------


def _hot_blocks(proc, cut: float, proc_entry: float, use_profile: bool,
                freq_cache) -> Set[str]:
    """Seed blocks above the heat threshold, widened along structure.

    A block is seed-hot when its absolute heat (procedure entry count
    times relative block frequency) reaches ``cut``.  The seed set is
    then widened along dominator / loop structure: a control-equivalent
    class containing a hot block is wholly hot (its blocks execute
    together), and a natural loop whose header is hot pulls in its
    whole body.
    """
    rel = cached_block_freqs(proc, use_profile, freq_cache)
    hot = {label for label, freq in rel.items() if proc_entry * freq >= cut}
    if not hot:
        return hot
    for cls in control_equivalent_classes(proc):
        if any(label in hot for label in cls):
            hot.update(cls)
    for loop in find_loops(proc):
        if loop.header in hot:
            hot.update(loop.body)
    return hot


def _proc_heat(
    entry: Dict[str, float],
    graph: CallGraph,
    counts: Optional[SiteCounts],
) -> Dict[str, float]:
    """Absolute heat per procedure, for seeding.

    Entry count alone misses the canonical hot shape: ``main`` enters
    once but spins the program's hottest loop.  With measured counts,
    a caller is at least as hot as its hottest call site (the site ran
    inside the caller), which lifts loop-driving callers to the heat of
    the loops they drive — without block-analyzing anything.
    """
    heat = dict(entry)
    if counts:
        for site in graph.sites:
            measured = counts.get(site.key)
            if measured and measured > heat.get(site.caller.name, 0.0):
                heat[site.caller.name] = float(measured)
    return heat


def form_regions(
    program: Program,
    config: HLOConfig,
    graph: CallGraph,
    entry: Dict[str, float],
    freq_cache,
    counts: Optional[SiteCounts],
) -> List[Region]:
    """Form disjoint hot regions, hottest seed first.

    Only procedures that become region members are ever block-analyzed;
    cold code contributes nothing but its (already computed) entry
    count.  Each procedure joins at most one region; a seed whose hot
    interior contains no call sites forms no region (it demands
    nothing).
    """
    heat = _proc_heat(entry, graph, counts)
    max_heat = max(heat.values(), default=0.0)
    if max_heat <= 0.0:
        return []
    cut = max_heat * config.region_hot_fraction

    hot_procs = sorted(
        (name for name, value in heat.items()
         if value > 0.0 and value >= cut and program.proc(name) is not None),
        key=lambda name: (-heat[name], name),
    )

    def hot_sites_of(name: str) -> List[CallSite]:
        proc = program.proc(name)
        hot = _hot_blocks(proc, cut, entry.get(name, 0.0), config.use_profile,
                          freq_cache)
        return [s for s in graph.sites_in(name) if s.block.label in hot]

    regions: List[Region] = []
    assigned: Set[str] = set()
    for seed in hot_procs:
        if seed in assigned:
            continue
        if config.region_limit and len(regions) >= config.region_limit:
            break
        region = Region(len(regions), seed, cut)
        region.procs.add(seed)
        assigned.add(seed)
        region.size = program.proc(seed).size()
        region.sites = hot_sites_of(seed)

        # Grow through the hottest interior sites: pulling a hot callee
        # into the region exposes *its* hot sites as further demand.
        frontier = [s for s in region.sites if s.callee is not None]
        while frontier:
            frontier.sort(key=lambda s: (
                -site_weight(s, entry, counts, config.use_profile),
                s.caller.name, s.instr.site_id,
            ))
            site = frontier.pop(0)
            callee = site.callee
            if callee is None or callee.name in assigned:
                continue
            if region.size + callee.size() > config.region_size_cap:
                continue
            region.procs.add(callee.name)
            assigned.add(callee.name)
            region.size += callee.size()
            new_sites = hot_sites_of(callee.name)
            region.sites.extend(new_sites)
            frontier.extend(s for s in new_sites if s.callee is not None)

        if not region.sites:
            # A siteless region demands nothing; release its members so
            # a later (caller-side) region can claim them — otherwise a
            # hot leaf would fragment its caller's region.
            assigned.difference_update(region.procs)
            continue
        region.cost = float(sum(
            program.proc(name).size() ** 2 for name in region.procs
        ))
        region.index = len(regions)
        region.name = "r{}:{}".format(region.index, seed)
        regions.append(region)
    return regions


# ----------------------------------------------------------------------
# The demand planner
# ----------------------------------------------------------------------


def _current_callee(program: Program, site: CallSite):
    """The procedure this site calls *now* (it may have been retargeted
    to a clone since the plan-time graph was built)."""
    if not isinstance(site.instr, Call):
        return site.callee
    name = site.instr.callee
    if site.callee is not None and site.callee.name == name:
        return site.callee
    return program.proc(name)


def _refresh_site(program: Program, site: CallSite) -> CallSite:
    """A copy of ``site`` whose callee reflects the current instruction."""
    callee = _current_callee(program, site)
    if callee is site.callee:
        return site
    return CallSite(site.caller, site.block, site.index, site.instr,
                    callee, site.category)


def _classify_live(proc, instr, callee) -> str:
    """Figure 5 category for a freshly enumerated site (no SCC pass:
    only self-recursion is recognized, which is all the region screens
    consult — blockers test INDIRECT/EXTERNAL and compare names)."""
    from ..analysis.callgraph import (
        CROSS_MODULE, EXTERNAL, INDIRECT, RECURSIVE, WITHIN_MODULE,
    )
    from ..ir.instructions import ICall

    if isinstance(instr, ICall):
        return INDIRECT
    if callee is None:
        return EXTERNAL
    if callee.name == proc.name:
        return RECURSIVE
    if callee.module != proc.module:
        return CROSS_MODULE
    return WITHIN_MODULE


def _live_region_sites(
    program: Program,
    region: Region,
    config: HLOConfig,
    entry: Dict[str, float],
    freq_cache,
) -> List[CallSite]:
    """Re-enumerate the region's hot interior from the *current* IR.

    After an iteration transforms, the plan-time site list is stale:
    inlined bodies brought new call sites into members, retargets moved
    edges, and migrated profile counts shifted which blocks are hot.
    Work stays region-bounded — only member procedures are walked.
    """
    sites: List[CallSite] = []
    for name in sorted(region.procs):
        proc = program.proc(name)
        if proc is None:
            continue
        hot = _hot_blocks(proc, region.cut, entry.get(name, 0.0),
                          config.use_profile, freq_cache)
        for block, index, instr in proc.call_sites():
            if block.label not in hot:
                continue
            callee = None
            if isinstance(instr, Call):
                callee = program.proc(instr.callee)
            sites.append(CallSite(
                proc, block, index, instr, callee,
                _classify_live(proc, instr, callee),
            ))
    return sites


def demand_stage(
    program: Program,
    config: HLOConfig,
    budget: Budget,
    report: HLOReport,
    database: CloneDatabase,
    site_counts: Optional[SiteCounts] = None,
    manager=None,
    obs=NULL_OBSERVER,
    context_counts=None,
    guard=None,
    pipeline=None,
) -> int:
    """Form regions and optimize each under its own budget.

    Runs in place of the global clone/inline loop.  Each region is one
    guarded unit: a failing region rolls back its own IR, report
    counters, clone-database entries, ledger decisions (by mark *and*
    by region tag), and analyses — the rest of the program's memo pool
    stays warm (``AnalysisManager.invalidate_region``).  Returns the
    number of transforms performed.
    """
    counts = site_counts if config.use_profile else None
    if manager is not None:
        graph = manager.callgraph()
        entry = manager.entry_counts(counts)
        freq_cache = manager.freq_cache()
    else:
        graph = CallGraph(program)
        entry = entry_counts(program, graph, counts)
        freq_cache = {}

    regions = form_regions(program, config, graph, entry, freq_cache, counts)
    report.regions_formed = len(regions)
    address_taken = _address_taken(program)

    performed_total = 0
    all_mutated: Set[str] = set()
    # One whole-program size table, kept current as regions commit, so
    # the shared budget can be charged incrementally: recomputing the
    # program cost per region is O(program x regions) and dominates
    # compile wall on mega-programs.  A region can mutate procs outside
    # its membership (inlining subtracts moved counts from the callee),
    # so the table must cover everything, not just region interiors.
    sizes = {proc.name: proc.size() for proc in program.all_procs()}
    for region in regions:
        rbudget = RegionBudget(region.cost, config.region_budget_percent)
        cost_before = budget.current

        def run_region(region=region, rbudget=rbudget):
            return _optimize_region(
                program, region, rbudget, graph, config, report, database,
                entry, freq_cache, counts, obs, context_counts, address_taken,
            )

        if guard is None:
            performed, mutated = run_region()
        else:
            report_mark = report.mark()
            db_mark = database.mark()
            ledger_mark = obs.ledger.mark()
            # Shallow snapshot of the frequency memo table: the region
            # loop pops and refills entries mid-run, so on rollback the
            # table must return to exactly its pre-region state (values
            # are never mutated in place, so sharing them is safe).
            freq_mark = dict(freq_cache)
            failures_before = len(guard.failures)
            with obs.tracer.span(
                "demand:{}".format(region.name) if obs.tracer.enabled else "",
                cat="hlo", region=region.name,
            ):
                result = guard.run_region_stage(
                    program, region.procs, "demand", run_region, region.index,
                    "demand", default=None,
                    bisect_pipeline=pipeline or default_pipeline(),
                )
            if len(guard.failures) > failures_before:
                # Region-scoped rollback: the guard restored the IR;
                # unwind only this region's side state.  Frequency
                # memos added during the failed run (clones, procs
                # analyzed post-mutation) describe IR that no longer
                # exists, so they go too; everything cached before the
                # region ran still matches the restored IR.
                report.rollback_to(report_mark)
                database.rollback_to(db_mark)
                obs.ledger.rollback_to(ledger_mark)
                obs.ledger.truncate_region(region.name)
                freq_cache.clear()
                freq_cache.update(freq_mark)
                if manager is not None:
                    manager.invalidate_region(region.procs)
                # No budget resync needed: only the *region* budget is
                # charged while a region runs, and the guard restored
                # the IR, so the shared budget still matches the program.
                continue
            performed, mutated = result if result is not None else (0, set())

        performed_total += performed
        if mutated:
            all_mutated |= mutated
            # One region's mutation invalidates only its own memos; the
            # rest of the pool stays warm for the remaining regions.
            if manager is not None:
                manager.invalidate_region(mutated)
            else:
                for name in mutated:
                    freq_cache.pop(name, None)
        if rbudget.ran_out:
            report.region_budget_exhausted += 1
        # Incremental shared-budget accounting: the program-cost delta
        # is exactly the sum of size^2 changes over the mutated procs.
        # Clones start from zero; everything pre-existing is in the
        # table, which is updated here so later regions see committed
        # sizes.
        delta = 0.0
        for name in mutated:
            proc = program.proc(name)
            new_size = proc.size() if proc is not None else 0
            old_size = sizes.get(name, 0)
            delta += float(new_size * new_size) - float(old_size * old_size)
            sizes[name] = new_size
        if delta:
            budget.charge(delta)
        report.pass_traces.append(PassTrace(
            region.index, "demand", performed, cost_before, budget.current,
            rbudget.limit,
        ))

    report.passes_run = 1 if regions else 0
    # The plan-time graph / entry snapshot is now stale wherever the
    # regions transformed; later consumers (unreachable sweep, output
    # stage) need fresh program-level analyses.
    if manager is not None and all_mutated:
        manager.invalidate_procs(all_mutated)
    return performed_total


def _optimize_region(
    program: Program,
    region: Region,
    rbudget: RegionBudget,
    graph: CallGraph,
    config: HLOConfig,
    report: HLOReport,
    database: CloneDatabase,
    entry: Dict[str, float],
    freq_cache,
    counts: Optional[SiteCounts],
    obs,
    context_counts,
    address_taken: Set[str],
) -> Tuple[int, Set[str]]:
    """Optimize one region to a fixpoint; returns (performed, mutated).

    Mirrors the global loop's clone/inline alternation, but region-
    scoped: each iteration clones then inlines the region's current hot
    interior, re-optimizes what it touched, drops the touched members'
    frequency memos, and re-enumerates — an inlined body's own call
    sites become the next iteration's demand.  Stops after
    ``config.pass_limit`` iterations or the first iteration that
    performs nothing.
    """
    performed = 0
    mutated: Set[str] = set()
    sites = region.sites
    for _iteration in range(max(1, config.pass_limit)):
        round_performed = 0
        touched: Set[str] = set()
        if config.enable_cloning:
            round_performed += _clone_in_region(
                program, region, rbudget, sites, graph, config, report,
                database, entry, freq_cache, counts, obs, address_taken,
                mutated, touched,
            )
        if config.enable_inlining:
            round_performed += _inline_in_region(
                program, region, rbudget, sites, graph, config, report,
                entry, freq_cache, counts, obs, mutated, touched,
            )
        if config.reoptimize:
            for name in sorted(touched):
                proc = program.proc(name)
                if proc is not None:
                    optimize_proc(program, proc)
        performed += round_performed
        if round_performed == 0:
            break
        # Transformed members (and callees whose counts migrated) have
        # stale frequency memos; drop just those before re-enumerating.
        for name in mutated:
            freq_cache.pop(name, None)
        sites = _live_region_sites(program, region, config, entry, freq_cache)
    return performed, mutated


def _clone_in_region(
    program: Program,
    region: Region,
    rbudget: RegionBudget,
    sites: List[CallSite],
    graph: CallGraph,
    config: HLOConfig,
    report: HLOReport,
    database: CloneDatabase,
    entry: Dict[str, float],
    freq_cache,
    counts: Optional[SiteCounts],
    obs,
    address_taken: Set[str],
    mutated: Set[str],
    touched: Set[str],
) -> int:
    """Region-scoped cloning: group only region-interior sites.

    Same screens, spec intersection, and benefit model as the global
    cloner, but candidate sites and group members come from the
    region's hot interior — a cold caller of the same callee is never
    visited, so ``deletes_clonee`` (checked against the *real* incoming
    edge set) is simply rarer here.
    """
    usage_cache: Dict[str, List[float]] = {}
    region_keys = {s.key for s in sites}
    grouped: Set[Tuple[str, int]] = set()
    replaced = 0
    for site in sites:
        if site.key in grouped:
            continue
        blocker = clone_blocker(
            program, site, config.cross_module, config.local_modules
        )
        if blocker is not None:
            record_decision(
                obs, report, "clone", region.index, site, "rejected", blocker,
                region=region.name,
            )
            continue
        callee = site.callee
        assert callee is not None
        usage = usage_cache.get(callee.name)
        if usage is None:
            usage = param_usage_weights(callee, config, freq_cache)
            usage_cache[callee.name] = usage
        spec = make_clone_spec(site, usage)
        if not spec:
            record_decision(
                obs, report, "clone", region.index, site, "rejected",
                "no caller-supplied constant meets an interesting parameter",
                reason_class="benefit", region=region.name,
            )
            continue

        members = [site]
        if config.clone_groups:
            for other in graph.callers_of(callee.name):
                if other.key == site.key or other.key in grouped:
                    continue
                if other.key not in region_keys:
                    continue  # demand: never visit cold callers
                if clone_blocker(
                    program, other, config.cross_module, config.local_modules
                ) is not None:
                    continue
                if context_matches(other.instr, spec):  # type: ignore[arg-type]
                    members.append(other)

        value = sum(usage[pos] for pos in spec)
        benefit = sum(
            site_weight(m, entry, counts, config.use_profile) * value
            for m in members
        )
        if benefit <= config.min_clone_benefit:
            record_decision(
                obs, report, "clone", region.index, site, "rejected",
                "benefit below threshold", reason_class="benefit",
                benefit=benefit, region=region.name,
            )
            continue

        incoming = graph.callers_of(callee.name)
        member_keys = {m.key for m in members}
        covers_all = all(s.key in member_keys for s in incoming)
        deletes = (
            covers_all
            and callee.name not in address_taken
            and callee.name != "main"
        )

        key = spec_key(callee.name, spec)
        clone_name = database.lookup(key) if config.clone_database else None
        if clone_name is not None and program.proc(clone_name) is None:
            clone_name = None
        cost = 0.0 if clone_name is not None else Budget.clone_delta(
            callee.size(), deletes
        )
        if not rbudget.fits(cost):
            for member in members:
                record_decision(
                    obs, report, "clone", region.index, member, "rejected",
                    "region budget exhausted", reason_class="budget",
                    benefit=benefit, region=region.name,
                )
                grouped.add(member.key)
            continue

        if clone_name is None:
            clone_name = database.fresh_name(program, callee.name)
            group_count = None
            if counts is not None:
                total, seen = 0, False
                for member in members:
                    if member.key in counts:
                        total += counts[member.key]
                        seen = True
                group_count = total if seen else None
            ratio = transfer_ratio(group_count, _entry_count(callee))
            with obs.tracer.span(
                "clone:{}".format(clone_name) if obs.tracer.enabled else "",
                cat="transform", clonee=callee.name, region=region.name,
            ):
                clone = copy_into_new_proc(
                    program,
                    callee,
                    program.modules[callee.module],
                    clone_name,
                    spec,
                    ratio,
                    on_promote=report.record_promotion,
                )
                program.modules[callee.module].add_proc(clone)
                subtract_moved_counts(callee, ratio)
                mutated.add(callee.name)
                mutated.add(clone_name)
                report.clones += 1
                if config.clone_database:
                    database.record(key, clone_name)
                touched.add(clone_name)
                if config.reoptimize:
                    optimize_proc(program, clone)
            rbudget.charge(cost)

        for member in members:
            grouped.add(member.key)
            if _retarget_site(member, spec, clone_name):
                replaced += 1
                record_decision(
                    obs, report, "clone", region.index, member, "cloned",
                    "call site retargeted to clone", reason_class="accepted",
                    benefit=benefit, region=region.name,
                )
                report.record_clone_replacement(
                    region.index, member.caller.name, clone_name,
                    member.instr.site_id, callee.name,
                )
                touched.add(member.caller.name)
                mutated.add(member.caller.name)
            else:
                record_decision(
                    obs, report, "clone", region.index, member, "rejected",
                    "call site changed before retargeting",
                    reason_class="mechanical", region=region.name,
                )
    return replaced


def _inline_in_region(
    program: Program,
    region: Region,
    rbudget: RegionBudget,
    sites: List[CallSite],
    graph: CallGraph,
    config: HLOConfig,
    report: HLOReport,
    entry: Dict[str, float],
    freq_cache,
    counts: Optional[SiteCounts],
    obs,
    mutated: Set[str],
    touched: Set[str],
) -> int:
    """Region-scoped inlining: screen, rank, and perform hot sites.

    Greedy acceptance in benefit order against the region budget, using
    the same per-transform delta model as the global schedule
    (``Budget.inline_delta`` over projected member sizes); performed
    bottom-up so a callee's accepted inlines land before its body is
    copied upward.
    """
    candidates = []
    for stale in sites:
        site = _refresh_site(program, stale)
        blocker = inline_blocker(
            program, site, config.cross_module, config.inline_recursive,
            config.local_modules,
        )
        if blocker is not None:
            record_decision(
                obs, report, "inline", region.index, site, "rejected", blocker,
                region=region.name,
            )
            continue
        ranked = rank_site(site, entry, config, counts, freq_cache)
        if ranked.always_inline or ranked.benefit > config.min_inline_benefit:
            candidates.append(ranked)
        else:
            record_decision(
                obs, report, "inline", region.index, site, "rejected",
                "benefit below threshold", reason_class="benefit",
                benefit=ranked.benefit, region=region.name,
            )
    candidates.sort(key=lambda r: r.sort_key)

    projected: Dict[str, int] = {}
    for name in region.procs:
        proc = program.proc(name)
        if proc is not None:
            projected[name] = proc.size()

    accepted = []
    for ranked in candidates:
        caller = ranked.site.caller.name
        callee = ranked.site.callee.name  # type: ignore[union-attr]
        caller_size = projected.get(caller, ranked.site.caller.size())
        callee_size = projected.get(
            callee, ranked.site.callee.size()  # type: ignore[union-attr]
        )
        glue = len(ranked.site.instr.args) * GLUE_PER_ARG + GLUE_FIXED - 1
        delta = Budget.inline_delta(caller_size, callee_size + glue)
        if ranked.always_inline or rbudget.fits(delta):
            accepted.append(ranked)
            if not ranked.always_inline:
                rbudget.charge(delta)
            projected[caller] = caller_size + callee_size + glue
        else:
            record_decision(
                obs, report, "inline", region.index, ranked.site, "rejected",
                "region budget exhausted", reason_class="budget",
                benefit=ranked.benefit, region=region.name,
            )

    if not accepted:
        return 0

    perform_rank = {name: i for i, name in enumerate(graph.bottom_up_order())}
    accepted.sort(key=lambda r: (
        perform_rank.get(r.site.caller.name, 0), -r.benefit
    ))
    performed = 0
    for ranked in accepted:
        caller = program.proc(ranked.site.caller.name)
        if caller is None:
            record_decision(
                obs, report, "inline", region.index, ranked.site, "rejected",
                "caller deleted before transform", reason_class="mechanical",
                region=region.name,
            )
            continue
        callee_name = ranked.site.callee.name  # type: ignore[union-attr]
        with obs.tracer.span(
            "inline:{}<-{}".format(caller.name, callee_name)
            if obs.tracer.enabled else "",
            cat="transform", site=ranked.site.instr.site_id, region=region.name,
        ):
            done = perform_inline(
                program, caller, ranked.site.instr.site_id, report, region.index
            )
        if done:
            performed += 1
            record_decision(
                obs, report, "inline", region.index, ranked.site, "inlined",
                "accepted within region budget", reason_class="accepted",
                benefit=ranked.benefit, region=region.name,
            )
            touched.add(caller.name)
            mutated.add(caller.name)
            mutated.add(callee_name)
        else:
            record_decision(
                obs, report, "inline", region.index, ranked.site, "rejected",
                "call site vanished before transform",
                reason_class="mechanical", region=region.name,
            )
    return performed
