"""Lowering: minic AST to ucode-like IR.

Each function lowers to a CFG of basic blocks through a small
block-cursor state machine.  Conventions:

- Local scalars live in virtual registers (one fresh register per
  declaration, so shadowing works).  Their address cannot be taken —
  minic keeps address-taken data in arrays and globals, which keeps the
  IR's memory model word-granular and honest.
- Local arrays lower to a fixed-size ``alloca`` hoisted into the entry
  block (allocated once per call, as in C).  The special form
  ``alloca(n)`` produces a *dynamic* alloca, which marks the procedure
  un-inlinable (one of the paper's pragmatic restrictions).
- Global scalars are loads/stores of their one-word cell; arrays decay
  to base addresses; pointer arithmetic is word-granular.
- Mixed int/float arithmetic inserts explicit conversions, C-style
  (ints promote to float; float-to-int assignment truncates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    UnOp,
)
from ..ir.module import GlobalVar, Module
from ..ir.procedure import ATTR_VARARGS, LINK_GLOBAL, LINK_STATIC, Procedure
from ..ir.types import Type
from ..ir.values import FuncRef, GlobalRef, Imm, Operand, Reg
from . import ast
from .errors import CompileError
from .sema import ALLOCA_NAME, FuncInfo, ModuleSymbols

# Value categories a Name can lower to.
_SCALAR = "scalar"
_ARRAY = "array"


class _LocalVar:
    __slots__ = ("reg", "type", "kind")

    def __init__(self, reg: Reg, ty: Type, kind: str):
        self.reg = reg
        self.type = ty
        self.kind = kind  # _SCALAR: reg holds the value; _ARRAY: base addr


class FunctionLowerer:
    def __init__(self, module: Module, syms: ModuleSymbols, decl: ast.FuncDef, info: FuncInfo):
        self.module = module
        self.syms = syms
        self.decl = decl
        self.info = info

        attrs = set(info.attrs)
        if decl.varargs:
            attrs.add(ATTR_VARARGS)
        self.proc = Procedure(
            info.ir_name,
            [(p.name, p.type) for p in decl.params],
            ret_type=decl.ret_type,
            module=module.name,
            linkage=LINK_STATIC if info.static else LINK_GLOBAL,
            attrs=attrs,
        )
        module.add_proc(self.proc)

        self.entry = self.proc.add_block(BasicBlock("entry"), entry=True)
        self.block = self.entry
        self._entry_alloca_index = 0
        self.scopes: List[Dict[str, _LocalVar]] = [
            {p.name: _LocalVar(Reg(p.name), p.type, _SCALAR) for p in decl.params}
        ]
        self.break_targets: List[BasicBlock] = []  # loops and switches
        self.continue_targets: List[BasicBlock] = []  # loops only

    # ------------------------------------------------------------------
    # Emission plumbing
    # ------------------------------------------------------------------

    def emit(self, instr) -> None:
        if self.block.terminator is None:
            self.block.append(instr)
        # Silently drop instructions in dead code after a terminator;
        # the parser produced them, but they can never execute.

    def new_block(self, hint: str) -> BasicBlock:
        return self.proc.new_block(hint)

    def start_block(self, block: BasicBlock) -> None:
        self.block = block

    def terminate(self, instr) -> None:
        if self.block.terminator is None:
            self.block.append(instr)

    def reg(self, hint: str = "t") -> Reg:
        return self.proc.new_reg(hint)

    def lookup_local(self, name: str) -> Optional[_LocalVar]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def error(self, message: str, node) -> CompileError:
        return CompileError(message, getattr(node, "line", 0), self.module.name)

    # ------------------------------------------------------------------
    # Types and conversions
    # ------------------------------------------------------------------

    def convert(self, op: Operand, src: Type, dst: Type, node) -> Operand:
        if src == dst:
            return op
        if src is Type.INT and dst is Type.FLT:
            if isinstance(op, Imm):
                return Imm(float(op.value), Type.FLT)
            dest = self.reg()
            self.emit(UnOp(dest, "itof", op))
            return dest
        if src is Type.FLT and dst is Type.INT:
            dest = self.reg()
            self.emit(UnOp(dest, "ftoi", op))
            return dest
        raise self.error("cannot convert {} to {}".format(src, dst), node)

    @staticmethod
    def _common_type(a: Type, b: Type) -> Type:
        return Type.FLT if Type.FLT in (a, b) else Type.INT

    # ------------------------------------------------------------------
    # Function body
    # ------------------------------------------------------------------

    def lower_body(self) -> Procedure:
        assert self.decl.body is not None
        self.lower_stmt(self.decl.body)
        if self.block.terminator is None:
            if self.proc.ret_type is Type.VOID:
                self.terminate(Ret(None))
            elif self.proc.ret_type is Type.FLT:
                self.terminate(Ret(Imm(0.0, Type.FLT)))
            else:
                self.terminate(Ret(Imm(0)))
        # Any block left unterminated (dead joins) gets a default return.
        for block in self.proc.blocks.values():
            if block.terminator is None:
                if self.proc.ret_type is Type.VOID:
                    block.append(Ret(None))
                elif self.proc.ret_type is Type.FLT:
                    block.append(Ret(Imm(0.0, Type.FLT)))
                else:
                    block.append(Ret(Imm(0)))
        return self.proc

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        cls = stmt.__class__
        if cls is ast.Block:
            self.scopes.append({})
            for child in stmt.stmts:
                self.lower_stmt(child)
            self.scopes.pop()
        elif cls is ast.LocalDecl:
            self.lower_local_decl(stmt)
        elif cls is ast.ExprStmt:
            self.lower_expr(stmt.expr, want_value=False)
        elif cls is ast.If:
            self.lower_if(stmt)
        elif cls is ast.While:
            self.lower_while(stmt)
        elif cls is ast.DoWhile:
            self.lower_do_while(stmt)
        elif cls is ast.For:
            self.lower_for(stmt)
        elif cls is ast.Return:
            self.lower_return(stmt)
        elif cls is ast.Switch:
            self.lower_switch(stmt)
        elif cls is ast.Break:
            if not self.break_targets:
                raise self.error("break outside a loop or switch", stmt)
            self.terminate(Jump(self.break_targets[-1].label))
        elif cls is ast.Continue:
            if not self.continue_targets:
                raise self.error("continue outside a loop", stmt)
            self.terminate(Jump(self.continue_targets[-1].label))
        else:  # pragma: no cover
            raise self.error("unknown statement {!r}".format(stmt), stmt)

    def lower_local_decl(self, decl: ast.LocalDecl) -> None:
        if self.lookup_local(decl.name) is not None and decl.name in self.scopes[-1]:
            raise self.error("redeclaration of {!r}".format(decl.name), decl)
        if decl.array_size is not None:
            if decl.array_size <= 0:
                raise self.error("array size must be positive", decl)
            if decl.init is not None:
                raise self.error("local arrays cannot have initializers", decl)
            base = self.reg("arr")
            # Hoist to the entry block so the allocation happens once
            # per call, regardless of loops around the declaration.
            self.entry.instrs.insert(
                self._entry_alloca_index, Alloca(base, Imm(decl.array_size))
            )
            self._entry_alloca_index += 1
            self.scopes[-1][decl.name] = _LocalVar(base, decl.type, _ARRAY)
            return
        reg = self.reg("v_" + decl.name)
        self.scopes[-1][decl.name] = _LocalVar(reg, decl.type, _SCALAR)
        if decl.init is not None:
            value, vtype = self.lower_expr(decl.init)
            value = self.convert(value, vtype, decl.type, decl)
            self.emit(Mov(reg, value))
        else:
            zero = Imm(0.0, Type.FLT) if decl.type is Type.FLT else Imm(0)
            self.emit(Mov(reg, zero))

    def lower_if(self, stmt: ast.If) -> None:
        then_block = self.new_block("if.then")
        join = self.new_block("if.join")
        else_block = self.new_block("if.else") if stmt.else_body else join
        self.lower_condition(stmt.cond, then_block, else_block)
        self.start_block(then_block)
        self.lower_stmt(stmt.then_body)
        self.terminate(Jump(join.label))
        if stmt.else_body is not None:
            self.start_block(else_block)
            self.lower_stmt(stmt.else_body)
            self.terminate(Jump(join.label))
        self.start_block(join)

    def lower_while(self, stmt: ast.While) -> None:
        head = self.new_block("while.head")
        body = self.new_block("while.body")
        done = self.new_block("while.done")
        self.terminate(Jump(head.label))
        self.start_block(head)
        self.lower_condition(stmt.cond, body, done)
        self.start_block(body)
        self.break_targets.append(done)
        self.continue_targets.append(head)
        self.lower_stmt(stmt.body)
        self.continue_targets.pop()
        self.break_targets.pop()
        self.terminate(Jump(head.label))
        self.start_block(done)

    def lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.new_block("do.body")
        cond = self.new_block("do.cond")
        done = self.new_block("do.done")
        self.terminate(Jump(body.label))
        self.start_block(body)
        self.break_targets.append(done)
        self.continue_targets.append(cond)
        self.lower_stmt(stmt.body)
        self.continue_targets.pop()
        self.break_targets.pop()
        self.terminate(Jump(cond.label))
        self.start_block(cond)
        self.lower_condition(stmt.cond, body, done)
        self.start_block(done)

    def lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.new_block("for.head")
        body = self.new_block("for.body")
        step = self.new_block("for.step")
        done = self.new_block("for.done")
        self.terminate(Jump(head.label))
        self.start_block(head)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, done)
        else:
            self.terminate(Jump(body.label))
        self.start_block(body)
        self.break_targets.append(done)
        self.continue_targets.append(step)
        self.lower_stmt(stmt.body)
        self.continue_targets.pop()
        self.break_targets.pop()
        self.terminate(Jump(step.label))
        self.start_block(step)
        if stmt.step is not None:
            self.lower_expr(stmt.step, want_value=False)
        self.terminate(Jump(head.label))
        self.start_block(done)
        self.scopes.pop()

    def lower_switch(self, stmt: ast.Switch) -> None:
        """C switch with fallthrough.

        The scrutinee is evaluated once; a chain of equality tests
        dispatches to the matching arm's body block; bodies fall through
        to the next arm's body in source order; ``break`` exits.
        """
        scrutinee, stype = self.lower_expr(stmt.cond)
        if stype is not Type.INT:
            raise self.error("switch requires an integer expression", stmt)
        # Pin the value in a register: the dispatch chain re-reads it.
        pinned = self.reg("sw")
        self.emit(Mov(pinned, scrutinee))

        exit_block = self.new_block("sw.exit")
        body_blocks = [self.new_block("sw.case") for _ in stmt.cases]
        default_body: Optional[BasicBlock] = None
        for case, body in zip(stmt.cases, body_blocks):
            if case.value is None:
                default_body = body

        # Dispatch chain: one test per non-default case, in order.
        current = self.block
        for index, case in enumerate(stmt.cases):
            if case.value is None:
                continue
            self.start_block(current)
            test = self.reg()
            self.emit(BinOp(test, "eq", pinned, Imm(case.value)))
            next_test = self.new_block("sw.test")
            self.terminate(Branch(test, body_blocks[index].label, next_test.label))
            current = next_test
        self.start_block(current)
        fallback = default_body if default_body is not None else exit_block
        self.terminate(Jump(fallback.label))

        # Bodies in source order, falling through to the next.
        self.break_targets.append(exit_block)
        for index, case in enumerate(stmt.cases):
            self.start_block(body_blocks[index])
            for child in case.stmts:
                self.lower_stmt(child)
            following = (
                body_blocks[index + 1] if index + 1 < len(body_blocks) else exit_block
            )
            self.terminate(Jump(following.label))
        self.break_targets.pop()
        self.start_block(exit_block)

    def lower_return(self, stmt: ast.Return) -> None:
        if self.proc.ret_type is Type.VOID:
            if stmt.value is not None:
                raise self.error("return with value in void function", stmt)
            self.terminate(Ret(None))
            return
        if stmt.value is None:
            raise self.error("return without value in non-void function", stmt)
        value, vtype = self.lower_expr(stmt.value)
        value = self.convert(value, vtype, self.proc.ret_type, stmt)
        self.terminate(Ret(value))

    def lower_condition(self, expr: ast.Expr, then_block: BasicBlock, else_block: BasicBlock) -> None:
        """Lower a boolean context, short-circuiting && and || into CFG."""
        if isinstance(expr, ast.ShortCircuit):
            mid = self.new_block("sc.mid")
            if expr.op == "&&":
                self.lower_condition(expr.lhs, mid, else_block)
            else:
                self.lower_condition(expr.lhs, then_block, mid)
            self.start_block(mid)
            self.lower_condition(expr.rhs, then_block, else_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, else_block, then_block)
            return
        value, vtype = self.lower_expr(expr)
        if vtype is Type.FLT:
            test = self.reg()
            self.emit(BinOp(test, "ne", value, Imm(0.0, Type.FLT)))
            value = test
        self.terminate(Branch(value, then_block.label, else_block.label))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Tuple[Operand, Type]:
        cls = expr.__class__
        if cls is ast.IntLit:
            return Imm(expr.value), Type.INT
        if cls is ast.FloatLit:
            return Imm(expr.value, Type.FLT), Type.FLT
        if cls is ast.Name:
            return self.lower_name(expr)
        if cls is ast.Binary:
            return self.lower_binary(expr)
        if cls is ast.ShortCircuit:
            return self.lower_short_circuit(expr)
        if cls is ast.Unary:
            return self.lower_unary(expr)
        if cls is ast.Conditional:
            return self.lower_conditional(expr)
        if cls is ast.Assign:
            return self.lower_assign(expr)
        if cls is ast.IncDec:
            return self.lower_incdec(expr)
        if cls is ast.CallExpr:
            return self.lower_call(expr, want_value)
        if cls is ast.Index:
            addr, elem = self.lower_address_of_index(expr)
            dest = self.reg()
            self.emit(Load(dest, addr))
            return dest, elem
        raise self.error("unknown expression {!r}".format(expr), expr)  # pragma: no cover

    def lower_name(self, expr: ast.Name) -> Tuple[Operand, Type]:
        local = self.lookup_local(expr.name)
        if local is not None:
            if local.kind == _ARRAY:
                return local.reg, Type.INT  # decay to base address
            return local.reg, local.type
        ginfo = self.syms.lookup_global(expr.name)
        if ginfo is not None:
            if ginfo.is_array:
                return GlobalRef(ginfo.ir_name), Type.INT
            dest = self.reg()
            self.emit(Load(dest, GlobalRef(ginfo.ir_name)))
            return dest, ginfo.type
        finfo = self.syms.lookup_func(expr.name)
        if finfo is not None:
            if finfo.ir_name == ALLOCA_NAME:
                raise self.error("alloca must be called directly", expr)
            return FuncRef(finfo.ir_name), Type.INT  # code pointer
        raise self.error("undeclared identifier {!r}".format(expr.name), expr)

    def lower_binary(self, expr: ast.Binary) -> Tuple[Operand, Type]:
        lhs, ltype = self.lower_expr(expr.lhs)
        rhs, rtype = self.lower_expr(expr.rhs)
        common = self._common_type(ltype, rtype)
        if expr.op in ("mod", "and", "or", "xor", "shl", "shr") and common is Type.FLT:
            raise self.error("operator {!r} requires integers".format(expr.op), expr)
        lhs = self.convert(lhs, ltype, common, expr)
        rhs = self.convert(rhs, rtype, common, expr)
        dest = self.reg()
        self.emit(BinOp(dest, expr.op, lhs, rhs))
        from ..ir.ops import COMPARISON_OPS

        return dest, Type.INT if expr.op in COMPARISON_OPS else common

    def lower_short_circuit(self, expr: ast.ShortCircuit) -> Tuple[Operand, Type]:
        result = self.reg("sc")
        true_block = self.new_block("sc.true")
        false_block = self.new_block("sc.false")
        join = self.new_block("sc.join")
        self.lower_condition(expr, true_block, false_block)
        self.start_block(true_block)
        self.emit(Mov(result, Imm(1)))
        self.terminate(Jump(join.label))
        self.start_block(false_block)
        self.emit(Mov(result, Imm(0)))
        self.terminate(Jump(join.label))
        self.start_block(join)
        return result, Type.INT

    def lower_unary(self, expr: ast.Unary) -> Tuple[Operand, Type]:
        if expr.op == "*":
            value, _ = self.lower_expr(expr.operand)
            dest = self.reg()
            self.emit(Load(dest, value))
            return dest, Type.INT
        if expr.op == "&":
            return self.lower_address_of(expr.operand), Type.INT
        value, vtype = self.lower_expr(expr.operand)
        dest = self.reg()
        if expr.op == "-":
            self.emit(UnOp(dest, "neg", value))
            return dest, vtype
        if expr.op == "!":
            if vtype is Type.FLT:
                test = self.reg()
                self.emit(BinOp(test, "eq", value, Imm(0.0, Type.FLT)))
                return test, Type.INT
            self.emit(UnOp(dest, "lnot", value))
            return dest, Type.INT
        if expr.op == "~":
            if vtype is not Type.INT:
                raise self.error("~ requires an integer", expr)
            self.emit(UnOp(dest, "not", value))
            return dest, Type.INT
        raise self.error("unknown unary {!r}".format(expr.op), expr)  # pragma: no cover

    def lower_address_of(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Name):
            local = self.lookup_local(expr.name)
            if local is not None:
                if local.kind == _ARRAY:
                    return local.reg
                raise self.error(
                    "cannot take the address of register local {!r}; "
                    "use a one-element array".format(expr.name),
                    expr,
                )
            ginfo = self.syms.lookup_global(expr.name)
            if ginfo is not None:
                return GlobalRef(ginfo.ir_name)
            finfo = self.syms.lookup_func(expr.name)
            if finfo is not None and finfo.ir_name != ALLOCA_NAME:
                return FuncRef(finfo.ir_name)
            raise self.error("undeclared identifier {!r}".format(expr.name), expr)
        if isinstance(expr, ast.Index):
            addr, _ = self.lower_address_of_index(expr)
            return addr
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value, _ = self.lower_expr(expr.operand)
            return value
        raise self.error("cannot take the address of this expression", expr)

    def lower_address_of_index(self, expr: ast.Index) -> Tuple[Operand, Type]:
        """Address of base[index]; returns (address operand, element type)."""
        elem = Type.INT
        base_op: Operand
        if isinstance(expr.base, ast.Name):
            name = expr.base.name
            local = self.lookup_local(name)
            ginfo = self.syms.lookup_global(name) if local is None else None
            if local is not None:
                base_op = local.reg
                if local.kind == _ARRAY:
                    elem = local.type
            elif ginfo is not None:
                base_op = GlobalRef(ginfo.ir_name)
                elem = ginfo.type if ginfo.is_array else Type.INT
                if not ginfo.is_array:
                    # Indexing a scalar global treats its value as a pointer.
                    loaded = self.reg()
                    self.emit(Load(loaded, base_op))
                    base_op = loaded
                    elem = Type.INT
            else:
                base_val, _ = self.lower_name(expr.base)
                base_op = base_val
        else:
            base_val, _ = self.lower_expr(expr.base)
            base_op = base_val
        index, itype = self.lower_expr(expr.index)
        if itype is not Type.INT:
            raise self.error("array index must be an integer", expr)
        if isinstance(index, Imm) and index.value == 0:
            return base_op, elem
        addr = self.reg("addr")
        self.emit(BinOp(addr, "add", base_op, index))
        return addr, elem

    def lower_conditional(self, expr: ast.Conditional) -> Tuple[Operand, Type]:
        result = self.reg("sel")
        then_block = self.new_block("sel.then")
        else_block = self.new_block("sel.else")
        join = self.new_block("sel.join")
        self.lower_condition(expr.cond, then_block, else_block)

        self.start_block(then_block)
        tval, ttype = self.lower_expr(expr.then_expr)
        then_end = self.block

        self.start_block(else_block)
        eval_, etype = self.lower_expr(expr.else_expr)
        else_end = self.block

        common = self._common_type(ttype, etype)
        self.start_block(then_end)
        tval = self.convert(tval, ttype, common, expr)
        self.emit(Mov(result, tval))
        self.terminate(Jump(join.label))
        self.start_block(else_end)
        eval_ = self.convert(eval_, etype, common, expr)
        self.emit(Mov(result, eval_))
        self.terminate(Jump(join.label))
        self.start_block(join)
        return result, common

    def lower_assign(self, expr: ast.Assign) -> Tuple[Operand, Type]:
        target = expr.target
        # Compound assignment reads the old value.
        if isinstance(target, ast.Name):
            local = self.lookup_local(target.name)
            if local is not None and local.kind == _SCALAR:
                value, vtype = self._assigned_value(expr, lambda: (local.reg, local.type))
                value = self.convert(value, vtype, local.type, expr)
                self.emit(Mov(local.reg, value))
                return local.reg, local.type
            ginfo = self.syms.lookup_global(target.name)
            if ginfo is not None and not ginfo.is_array:
                addr = GlobalRef(ginfo.ir_name)
                return self._assign_through(expr, addr, ginfo.type)
            raise self.error("invalid assignment target {!r}".format(target.name), expr)
        if isinstance(target, ast.Index):
            addr, elem = self.lower_address_of_index(target)
            return self._assign_through(expr, addr, elem)
        if isinstance(target, ast.Unary) and target.op == "*":
            addr, _ = self.lower_expr(target.operand)
            return self._assign_through(expr, addr, Type.INT)
        raise self.error("invalid assignment target", expr)

    def _assigned_value(self, expr: ast.Assign, read_old) -> Tuple[Operand, Type]:
        value, vtype = self.lower_expr(expr.value)
        if expr.op:
            old, old_type = read_old()
            common = self._common_type(old_type, vtype)
            old = self.convert(old, old_type, common, expr)
            value = self.convert(value, vtype, common, expr)
            dest = self.reg()
            self.emit(BinOp(dest, expr.op, old, value))
            return dest, common
        return value, vtype

    def _assign_through(self, expr: ast.Assign, addr: Operand, elem: Type) -> Tuple[Operand, Type]:
        def read_old() -> Tuple[Operand, Type]:
            old = self.reg()
            self.emit(Load(old, addr))
            return old, elem

        value, vtype = self._assigned_value(expr, read_old)
        value = self.convert(value, vtype, elem, expr)
        self.emit(Store(addr, value))
        return value, elem

    def lower_incdec(self, expr: ast.IncDec) -> Tuple[Operand, Type]:
        delta = 1 if expr.op == "++" else -1
        target = expr.target
        if isinstance(target, ast.Name):
            local = self.lookup_local(target.name)
            if local is not None and local.kind == _SCALAR:
                if local.type is Type.FLT:
                    step: Operand = Imm(float(delta), Type.FLT)
                else:
                    step = Imm(delta)
                old = None
                if not expr.prefix:
                    old = self.reg("post")
                    self.emit(Mov(old, local.reg))
                updated = self.reg()
                self.emit(BinOp(updated, "add", local.reg, step))
                self.emit(Mov(local.reg, updated))
                return (old if old is not None else local.reg), local.type
            ginfo = self.syms.lookup_global(target.name)
            if ginfo is not None and not ginfo.is_array:
                return self._incdec_through(expr, GlobalRef(ginfo.ir_name), ginfo.type, delta)
            raise self.error("invalid ++/-- target {!r}".format(target.name), expr)
        if isinstance(target, ast.Index):
            addr, elem = self.lower_address_of_index(target)
            return self._incdec_through(expr, addr, elem, delta)
        if isinstance(target, ast.Unary) and target.op == "*":
            addr, _ = self.lower_expr(target.operand)
            return self._incdec_through(expr, addr, Type.INT, delta)
        raise self.error("invalid ++/-- target", expr)

    def _incdec_through(self, expr: ast.IncDec, addr: Operand, elem: Type, delta: int) -> Tuple[Operand, Type]:
        old = self.reg()
        self.emit(Load(old, addr))
        step: Operand = Imm(float(delta), Type.FLT) if elem is Type.FLT else Imm(delta)
        updated = self.reg()
        self.emit(BinOp(updated, "add", old, step))
        self.emit(Store(addr, updated))
        return (old if not expr.prefix else updated), elem

    def lower_call(self, expr: ast.CallExpr, want_value: bool) -> Tuple[Operand, Type]:
        func = expr.func
        # Direct call through a function name (unless shadowed by a local).
        if isinstance(func, ast.Name) and self.lookup_local(func.name) is None:
            finfo = self.syms.lookup_func(func.name)
            if finfo is not None:
                if finfo.ir_name == ALLOCA_NAME:
                    return self.lower_alloca(expr)
                return self.lower_direct_call(expr, finfo, want_value)
            # A global scalar holding a code pointer is an indirect call.
        # Indirect call: evaluate the function expression to a code pointer.
        fval, _ = self.lower_expr(func)
        args = [self.lower_expr(a)[0] for a in expr.args]
        dest = self.reg() if want_value else None
        self.emit(ICall(dest, fval, args, self.module.new_site_id()))
        return (dest if dest is not None else Imm(0)), Type.INT

    def lower_direct_call(self, expr: ast.CallExpr, finfo: FuncInfo, want_value: bool) -> Tuple[Operand, Type]:
        sig = finfo.sig
        fixed = len(sig.params)
        if sig.varargs:
            if len(expr.args) < fixed:
                raise self.error(
                    "too few arguments to {!r}".format(finfo.source_name), expr
                )
        elif len(expr.args) != fixed:
            raise self.error(
                "{!r} expects {} arguments, got {}".format(
                    finfo.source_name, fixed, len(expr.args)
                ),
                expr,
            )
        args: List[Operand] = []
        for position, arg in enumerate(expr.args):
            value, vtype = self.lower_expr(arg)
            if position < fixed:
                value = self.convert(value, vtype, sig.params[position], expr)
            args.append(value)
        returns_value = sig.ret is not Type.VOID
        dest = self.reg() if (want_value and returns_value) else None
        self.emit(Call(dest, finfo.ir_name, args, self.module.new_site_id()))
        if want_value and not returns_value:
            raise self.error(
                "void value of {!r} used".format(finfo.source_name), expr
            )
        return (dest if dest is not None else Imm(0)), sig.ret if returns_value else Type.INT

    def lower_alloca(self, expr: ast.CallExpr) -> Tuple[Operand, Type]:
        if len(expr.args) != 1:
            raise self.error("alloca takes exactly one argument", expr)
        size, stype = self.lower_expr(expr.args[0])
        if stype is not Type.INT:
            raise self.error("alloca size must be an integer", expr)
        dest = self.reg("dyn")
        self.emit(Alloca(dest, size))
        return dest, Type.INT


def lower_unit(unit: ast.TranslationUnit, syms: ModuleSymbols) -> Module:
    """Lower one analyzed translation unit to an IR module."""
    module = Module(syms.module_name)

    for decl in unit.decls:
        if isinstance(decl, ast.GlobalDecl) and not decl.extern:
            info = syms.globals[decl.name]
            size = decl.array_size if decl.array_size is not None else 1
            init = list(decl.init)
            if decl.type is Type.FLT:
                init = [float(v) for v in init]
            module.add_global(
                GlobalVar(
                    info.ir_name,
                    size,
                    init,
                    linkage=LINK_STATIC if decl.static else LINK_GLOBAL,
                )
            )

    for decl in unit.decls:
        if isinstance(decl, ast.FuncDef) and not decl.is_proto:
            info = syms.funcs[decl.name]
            FunctionLowerer(module, syms, decl, info).lower_body()

    # Record externs: declared functions not defined in this unit.
    for name, finfo in syms.funcs.items():
        if not finfo.defined and not finfo.builtin:
            module.declare_extern(finfo.ir_name, finfo.sig)
    return module
