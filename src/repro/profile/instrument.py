"""Probe insertion: the instrumenting compile of the PGO pipeline.

One ``probe`` instruction is prepended to every basic block; executing
it bumps a counter in the run's profile buffer.  The probe map records
which (procedure, block) each counter measures so the database can be
reconstructed after the training run.  Instrumentation is real code —
it costs compile size and run time, exactly the overhead the paper
notes when reporting profile-based compile times.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.instructions import Probe
from ..ir.program import Program

ProbeMap = Dict[int, Tuple[str, str]]  # counter id -> (proc name, block label)


def instrument_program(program: Program) -> ProbeMap:
    """Insert one probe per block, in place; returns the probe map."""
    probe_map: ProbeMap = {}
    counter = 0
    for proc in program.all_procs():
        for label, block in proc.blocks.items():
            block.instrs.insert(0, Probe(counter))
            probe_map[counter] = (proc.name, label)
            counter += 1
    return probe_map


def strip_probes(program: Program) -> int:
    """Remove every probe (used when reusing an instrumented image)."""
    removed = 0
    for proc in program.all_procs():
        for block in proc.blocks.values():
            before = len(block.instrs)
            block.instrs = [i for i in block.instrs if not isinstance(i, Probe)]
            removed += before - len(block.instrs)
    return removed
