"""Local common-subexpression elimination by block-level value numbering.

Pure expressions (``mov``/``unop``/non-trapping ``binop``) are hashed by
(opcode, operand identities); a repeat within the block is rewritten to
copy the earlier result.  Loads participate too, keyed by address, and
are invalidated by any store or call (no alias analysis — stores kill
all remembered loads, calls may store anywhere).

Division and modulo by a non-constant divisor can trap, but CSE only
*reuses* a previously executed instance with identical operands, which
would have trapped identically — so they participate safely.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.instructions import BinOp, Call, ICall, Load, Mov, Store, UnOp
from ..ir.ops import COMMUTATIVE_OPS
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import FuncRef, GlobalRef, Imm, Operand, Reg


def _op_key(op: Operand) -> Tuple:
    if isinstance(op, Reg):
        return ("r", op.name)
    if isinstance(op, Imm):
        return ("i", op.type.value, repr(op.value))
    if isinstance(op, FuncRef):
        return ("f", op.name)
    if isinstance(op, GlobalRef):
        return ("g", op.name)
    raise TypeError(op)  # pragma: no cover


def local_cse(program: Program, proc: Procedure) -> bool:
    changed = False
    for block in proc.blocks.values():
        exprs: Dict[Tuple, Reg] = {}  # expression key -> register holding it
        loads: Dict[Tuple, Reg] = {}  # address key -> register holding the load

        def kill_reg(name: str) -> None:
            for table in (exprs, loads):
                dead = [k for k, v in table.items() if v.name == name]
                for k in dead:
                    del table[k]
                dead_keys = [k for k in table if ("r", name) in k]
                for k in dead_keys:
                    table.pop(k, None)

        for index, instr in enumerate(block.instrs):
            cls = instr.__class__
            key: Optional[Tuple] = None
            table = exprs

            if cls is BinOp:
                a, b = _op_key(instr.lhs), _op_key(instr.rhs)
                if instr.op in COMMUTATIVE_OPS and b < a:
                    a, b = b, a
                key = ("bin", instr.op, a, b)
            elif cls is UnOp:
                key = ("un", instr.op, _op_key(instr.src))
            elif cls is Load:
                key = ("ld", _op_key(instr.addr))
                table = loads
            elif cls is Store:
                loads.clear()
            elif cls is Call or cls is ICall:
                loads.clear()

            if key is not None:
                prior = table.get(key)
                if prior is not None and prior.name != instr.dest.name:
                    block.instrs[index] = Mov(instr.dest, prior)
                    changed = True
                    kill_reg(instr.dest.name)
                    continue

            if instr.dest is not None:
                kill_reg(instr.dest.name)
                # Do not record expressions that read their own
                # destination (x = add x, 1): the key would describe the
                # pre-assignment value of x.
                if key is not None and ("r", instr.dest.name) not in _flatten(key):
                    table[key] = instr.dest
    return changed


def _flatten(key: Tuple) -> Tuple:
    out = []
    for part in key:
        if isinstance(part, tuple):
            out.append(part)
    return tuple(out)
