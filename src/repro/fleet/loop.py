"""The fleet loop: rounds of serve → sample → ship → merge → reoptimize.

One :class:`FleetLoop` wires the whole continuous-profiling machine
together and drives it for a bounded number of rounds (and, optionally,
a bounded wall time):

- a :class:`~repro.fleet.instances.FleetSupervisor` of per-chunk
  instances serving the current optimized build and sampling the
  stable profiling image;
- a :class:`~repro.fleet.transport.ShardTransport` the fault injector
  can drop, corrupt, truncate, duplicate, or delay;
- a :class:`~repro.fleet.collector.ProfileCollector` journaling to a
  write-ahead spool, with quarantine gates and per-source breakers —
  restarted mid-run (optionally onto a corrupted spool tail) when the
  fault plan says so;
- a :class:`~repro.fleet.controller.ReoptimizeController` doing
  drift-gated rebuilds behind the canary/rollback ladder.

Time is the round counter; nothing in the loop's logic reads a clock
(the optional ``max_wall_s`` budget only decides *whether to start*
another round).  All randomness is derived from the seeded fault
injector and the per-instance sampling seeds, so a failing run replays
exactly from its seed.

The loop's two hard invariants are checked every round, not asserted
after the fact: the fleet never serves a build the controller rolled
back from, and a crashed piece (instance, collector) is restarted
rather than crashing the loop.  Steady-state **convergence** is
measured at the end: the final build's inline/clone decision set is
compared (Jaccard) against a from-scratch exact-profile ``cp`` build —
the loop's whole point is that the fault-ridden sampled path lands on
the same decisions.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..frontend.driver import SourceList, compile_program
from ..interp.interpreter import DEFAULT_ENGINE, DEFAULT_MAX_STEPS
from ..linker.toolchain import Toolchain
from ..obs import BuildObserver, NULL_OBSERVER
from ..obs import names
from ..resilience.faults import FaultInjector
from ..sampling.lifecycle import MIN_PROFILE_CONFIDENCE
from .collector import DEFAULT_EPOCH_DECAY, MIN_SHARD_CONFIDENCE, ProfileCollector
from .controller import (
    DEFAULT_COOLDOWN_ROUNDS,
    DEFAULT_DRIFT_THRESHOLD,
    DEFAULT_REGRESSION_LIMIT,
    ReoptimizeController,
)
from .instances import (
    DEFAULT_RETRY_BASE,
    DEFAULT_RETRY_CAP,
    FleetInstance,
    FleetSupervisor,
)
from .transport import ShardTransport
from .wal import ShardSpool

DEFAULT_ROUNDS = 8
DEFAULT_FLEET_RATE = 50  # denser than offline sampling: shards are small


class FleetInvariantError(RuntimeError):
    """A hard fleet invariant broke (this is a bug, not a fault)."""


def decision_set(report) -> Set[Tuple]:
    """The identity of every inline/clone decision in an HLO report."""
    return {
        (event.kind, event.caller, event.callee, event.site_id)
        for event in report.events
    }


def jaccard(a: Set, b: Set) -> float:
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / float(len(union)) if union else 1.0


@dataclass
class FleetConfig:
    """Knobs for one fleet run; defaults are the CI smoke settings."""

    rounds: int = DEFAULT_ROUNDS
    rate: int = DEFAULT_FLEET_RATE
    context_depth: int = 2
    seed: int = 0
    scope: str = "cp"
    engine: str = DEFAULT_ENGINE
    max_steps: int = DEFAULT_MAX_STEPS
    decay: float = DEFAULT_EPOCH_DECAY
    drift_threshold: float = DEFAULT_DRIFT_THRESHOLD
    min_confidence: float = MIN_PROFILE_CONFIDENCE
    min_shard_confidence: float = MIN_SHARD_CONFIDENCE
    regression_limit: float = DEFAULT_REGRESSION_LIMIT
    cooldown_rounds: int = DEFAULT_COOLDOWN_ROUNDS
    breaker_threshold: int = 3
    breaker_cooldown: int = 4
    retry_base: int = DEFAULT_RETRY_BASE
    retry_cap: int = DEFAULT_RETRY_CAP
    restart_collector_rounds: Sequence[int] = ()
    max_wall_s: Optional[float] = None
    measure_convergence: bool = True
    # HOST:PORT of a running `repro serve` daemon; when set, the
    # controller's profile-fed rebuilds become remote build requests
    # (falling back to local builds if the daemon is unreachable).
    build_server: Optional[str] = None
    # Small workloads have fewer input chunks than a credible fleet has
    # replicas; chunks are cycled across instances until this floor is
    # met (two replicas serving the same chunk is exactly what a
    # load-balanced deployment looks like, and the merge just sums
    # their evidence).
    min_instances: int = 3


@dataclass
class FleetReport:
    """Everything one fleet run did, JSON-able for CLI/bench/CI."""

    rounds_run: int = 0
    rebuilds: int = 0
    rollbacks: int = 0
    swaps: int = 0
    final_build: int = 0
    served_builds: List[int] = field(default_factory=list)
    rolled_back: List[int] = field(default_factory=list)
    quarantined_epochs: List[int] = field(default_factory=list)
    convergence_jaccard: Optional[float] = None
    exact_decisions: int = 0
    fleet_decisions: int = 0
    shards_sent: int = 0
    shards_accepted: int = 0
    shards_retried: int = 0
    shards_dropped: int = 0
    shards_damaged: int = 0
    shards_deduped: int = 0
    shards_quarantined: int = 0
    shards_rejected_breaker: int = 0
    breaker_opens: int = 0
    wal_appended: int = 0
    wal_truncations: int = 0
    collector_restarts: int = 0
    instance_restarts: int = 0
    serve_traps: int = 0
    # Independent decision tallies, counted where the decisions *flow*
    # (acks delivered, WAL frames replayed, consider() rounds) — the
    # fleet-ledger completeness check compares the ledger against these.
    collector_verdicts: int = 0
    controller_decisions: int = 0
    stopped_early: bool = False
    wall_s: float = 0.0
    history: List[str] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return self.convergence_jaccard == 1.0

    def to_dict(self) -> dict:
        payload = {
            "rounds_run": self.rounds_run,
            "rebuilds": self.rebuilds,
            "rollbacks": self.rollbacks,
            "swaps": self.swaps,
            "final_build": self.final_build,
            "served_builds": self.served_builds,
            "rolled_back": self.rolled_back,
            "quarantined_epochs": self.quarantined_epochs,
            "convergence_jaccard": self.convergence_jaccard,
            "exact_decisions": self.exact_decisions,
            "fleet_decisions": self.fleet_decisions,
            "shards": {
                "sent": self.shards_sent,
                "accepted": self.shards_accepted,
                "retried": self.shards_retried,
                "dropped": self.shards_dropped,
                "damaged": self.shards_damaged,
                "deduped": self.shards_deduped,
                "quarantined": self.shards_quarantined,
                "rejected_breaker": self.shards_rejected_breaker,
            },
            "wal": {
                "appended": self.wal_appended,
                "truncations": self.wal_truncations,
                "collector_restarts": self.collector_restarts,
            },
            "breaker_opens": self.breaker_opens,
            "instance_restarts": self.instance_restarts,
            "serve_traps": self.serve_traps,
            "decisions": {
                "collector_verdicts": self.collector_verdicts,
                "controller_decisions": self.controller_decisions,
            },
            "stopped_early": self.stopped_early,
            "wall_s": round(self.wall_s, 3),
        }
        return payload


class FleetLoop:
    """Owns one continuous-profiling run end to end."""

    def __init__(
        self,
        sources: SourceList,
        train_inputs: Sequence[Sequence],
        ref_input: Sequence = (),
        config: Optional[FleetConfig] = None,
        injector: Optional[FaultInjector] = None,
        observer: BuildObserver = NULL_OBSERVER,
        spool_path: Optional[str] = None,
    ):
        if not train_inputs:
            raise ValueError("the fleet needs at least one input chunk")
        self.sources = sources
        self.train_inputs = [list(chunk) for chunk in train_inputs]
        self.ref_input = list(ref_input)
        self.config = config or FleetConfig()
        self.injector = injector
        self.observer = observer
        if spool_path is None:
            spool_path = os.path.join(
                tempfile.mkdtemp(prefix="repro-fleet-"), "shards.wal"
            )
        self.spool_path = spool_path

    # ------------------------------------------------------------------

    def _make_collector(self, profiling_image) -> ProfileCollector:
        cfg = self.config
        return ProfileCollector(
            profiling_image,
            ShardSpool(self.spool_path),
            decay=cfg.decay,
            min_shard_confidence=cfg.min_shard_confidence,
            breaker_threshold=cfg.breaker_threshold,
            breaker_cooldown=cfg.breaker_cooldown,
            metrics=self.observer.metrics,
            tracer=self.observer.tracer,
            ledger=self.observer.fleet,
        )

    def run(self) -> FleetReport:
        cfg = self.config
        obs = self.observer
        started = time.perf_counter()
        report = FleetReport()

        profiling_image = compile_program(self.sources)
        toolchain = Toolchain(
            self.sources, train_inputs=self.train_inputs, engine=cfg.engine,
            fault_injector=self.injector,
        )
        build_client = None
        if cfg.build_server:
            from ..serve.client import ServeClient

            build_client = ServeClient(cfg.build_server)
        controller = ReoptimizeController(
            toolchain,
            canary_inputs=self.ref_input or self.train_inputs[0],
            scope=cfg.scope,
            drift_threshold=cfg.drift_threshold,
            min_confidence=cfg.min_confidence,
            regression_limit=cfg.regression_limit,
            cooldown_rounds=cfg.cooldown_rounds,
            injector=self.injector,
            observer=obs,
            build_client=build_client,
        )
        served = controller.initial_build()
        chunks = list(self.train_inputs)
        while len(chunks) < cfg.min_instances:
            chunks.append(chunks[len(chunks) % len(self.train_inputs)])
        instances = [
            FleetInstance(
                source="inst{}".format(index),
                inputs=chunk,
                profiling_image=profiling_image,
                served=served,
                rate=cfg.rate,
                context_depth=cfg.context_depth,
                seed=cfg.seed + index,
                engine=cfg.engine,
                max_steps=cfg.max_steps,
                injector=self.injector,
                retry_base=cfg.retry_base,
                retry_cap=cfg.retry_cap,
                metrics=obs.metrics,
            )
            for index, chunk in enumerate(chunks)
        ]
        supervisor = FleetSupervisor(instances, self.injector, obs.metrics)
        transport = ShardTransport(self.injector, obs.metrics)
        collector = self._make_collector(profiling_image)
        quarantined: Set[int] = set()
        epoch = 0
        restart_rounds = set(cfg.restart_collector_rounds)
        exact_set: Optional[Set[Tuple]] = None

        for tick in range(cfg.rounds):
            if (
                cfg.max_wall_s is not None
                and time.perf_counter() - started > cfg.max_wall_s
            ):
                report.stopped_early = True
                obs.tracer.instant("fleet-wall-budget", cat="fleet")
                break
            with obs.tracer.span("fleet-round", cat="fleet", round=tick):
                with obs.tracer.span("fleet-deliver", cat="fleet", round=tick):
                    supervisor.step(tick, transport)
                    acks = transport.deliver(tick, collector)
                    supervisor.apply_acks(acks)
                report.collector_verdicts += len(acks)

                wal_fault = (
                    self.injector is not None
                    and self.injector.wal_tail_fault(tick)
                )
                if wal_fault or tick in restart_rounds:
                    # The collector "crashes": a fresh one rebuilds its
                    # whole state from the journal — possibly minus a
                    # torn tail the injector just manufactured.
                    if wal_fault:
                        spool = ShardSpool(self.spool_path)
                        spool.rewrite(
                            self.injector.corrupt_wal_tail(spool.raw())
                        )
                    self._absorb_collector_counters(report, collector)
                    collector = self._make_collector(profiling_image)
                    replayed, truncated = collector.restore(
                        quarantined_epochs=quarantined, tick=tick
                    )
                    # Replay re-derives one verdict per journaled frame.
                    report.collector_verdicts += replayed
                    if truncated:
                        report.wal_truncations += 1
                    report.collector_restarts += 1
                    obs.metrics.count(names.FLEET_COLLECTOR_RESTARTS)
                    obs.tracer.instant(
                        "fleet-collector-restart:{}".format(tick), cat="fleet"
                    )

                with obs.tracer.span("fleet-merge", cat="fleet", round=tick):
                    merged = collector.merged_profile()
                action = controller.consider(merged, epoch, tick=tick)
                report.controller_decisions += 1
                if action.swapped is not None:
                    with obs.tracer.span(
                        "fleet-swap", cat="fleet", round=tick,
                        build=action.swapped.build_id,
                    ):
                        supervisor.swap_all(action.swapped)
                if action.rolled_back:
                    quarantined.add(action.quarantine_epoch)
                    collector.quarantine_epoch(action.quarantine_epoch)

                if obs.metrics.enabled:
                    exact_set = self._sample_series(
                        obs, tick, epoch, action, supervisor, controller,
                        exact_set,
                    )

                if action.rebuilt:
                    # Every rebuild attempt — pass or fail — opens a new
                    # evidence epoch, so a later rollback can quarantine
                    # precisely the evidence that misled it.
                    epoch += 1
                    supervisor.set_epoch(epoch)

                self._check_invariants(supervisor, controller)
                obs.metrics.gauge(
                    names.FLEET_CURRENT_BUILD, controller.current.build_id
                )
            report.rounds_run = tick + 1

        report.rebuilds = controller.rebuilds
        report.rollbacks = controller.rollbacks
        report.swaps = controller.swaps
        report.final_build = controller.current.build_id
        report.served_builds = sorted(supervisor.served_build_ids)
        report.rolled_back = sorted(controller.rolled_back)
        report.quarantined_epochs = sorted(quarantined)
        report.shards_sent = transport.sent
        report.shards_retried = supervisor.retries()
        report.shards_dropped = transport.dropped
        report.shards_damaged = transport.damaged
        self._absorb_collector_counters(report, collector)
        report.instance_restarts = supervisor.restarts
        report.serve_traps = supervisor.serve_traps()
        report.history = list(controller.history)

        if cfg.measure_convergence:
            if exact_set is None:
                with obs.tracer.span("fleet-convergence", cat="fleet"):
                    exact = Toolchain(
                        self.sources, train_inputs=self.train_inputs,
                        engine=cfg.engine,
                    ).build(cfg.scope)
                exact_set = decision_set(exact.report)
            fleet_set = decision_set(controller.current.result.report)
            report.exact_decisions = len(exact_set)
            report.fleet_decisions = len(fleet_set)
            report.convergence_jaccard = round(jaccard(exact_set, fleet_set), 4)
            obs.metrics.gauge(
                names.FLEET_CONVERGENCE_JACCARD, report.convergence_jaccard
            )
        obs.metrics.gauge(names.FLEET_ROUNDS, report.rounds_run)
        report.wall_s = time.perf_counter() - started
        if build_client is not None:
            build_client.close()
        return report

    def _sample_series(
        self, obs, tick, epoch, action, supervisor, controller, exact_set
    ):
        """One per-tick sample of every fleet time series.

        Only runs when the metrics sink is live (the jaccard-vs-exact
        series needs one extra exact-profile build, which the final
        convergence measurement then reuses).  Returns the cached
        exact decision set.
        """
        cfg = self.config
        metrics = obs.metrics
        if cfg.measure_convergence:
            if exact_set is None:
                with obs.tracer.span("fleet-convergence", cat="fleet"):
                    exact = Toolchain(
                        self.sources, train_inputs=self.train_inputs,
                        engine=cfg.engine,
                    ).build(cfg.scope)
                exact_set = decision_set(exact.report)
            metrics.record_series(
                names.FLEET_JACCARD_EXACT, tick,
                round(
                    jaccard(
                        exact_set,
                        decision_set(controller.current.result.report),
                    ),
                    4,
                ),
            )
        metrics.record_series(
            names.FLEET_DRIFT, tick, metrics.value(names.FLEET_DRIFT)
        )
        metrics.record_series(
            names.FLEET_CONFIDENCE, tick, metrics.value(names.FLEET_CONFIDENCE)
        )
        metrics.record_series(
            names.FLEET_CURRENT_BUILD, tick, controller.current.build_id
        )
        metrics.record_series(names.FLEET_LEDGER_ENTRIES, tick, obs.fleet.total)
        if action.swapped is not None:
            metrics.record_series(names.FLEET_SWAP_EPOCH, tick, epoch)
        if action.rolled_back:
            metrics.record_series(
                names.FLEET_ROLLBACK_EPOCH, tick, action.quarantine_epoch
            )
        for inst in supervisor.instances:
            metrics.record_series(
                names.fleet_instance_pending(inst.source), tick,
                len(inst.pending),
            )
            metrics.record_series(
                names.fleet_instance_traps(inst.source), tick, inst.serve_traps
            )
        return exact_set

    @staticmethod
    def _absorb_collector_counters(report: FleetReport, collector) -> None:
        """Fold one collector incarnation's counters into the report.

        Called before each restart and once at the end; a replayed
        journal re-admits its shards, so post-restart counters describe
        what that collector process did (as a real fleet's restarted
        counters would), not globally unique shards.
        """
        report.shards_accepted += collector.accepted
        report.shards_deduped += collector.duplicates
        report.shards_quarantined += collector.quarantined_shards
        report.shards_rejected_breaker += collector.rejected_breaker
        report.breaker_opens += collector.breaker_opens()
        report.wal_appended += collector.spool.appended

    @staticmethod
    def _check_invariants(supervisor, controller) -> None:
        for inst in supervisor.instances:
            if inst.served.build_id in controller.rolled_back:
                raise FleetInvariantError(
                    "instance {} is serving rolled-back build {}".format(
                        inst.source, inst.served.build_id
                    )
                )
