"""Flat word-addressed memory for the interpreter.

The address space mimics a simple process image:

- globals segment starting at ``GLOBAL_BASE`` (each global gets a
  contiguous run of words),
- a downward-growing stack starting at ``STACK_BASE`` (frames and
  allocas live here),
- an upward-growing heap at ``HEAP_BASE`` (the runtime ``sbrk``-style
  allocator used by workloads that build data structures).

Addresses are word-granular integers, so the machine model multiplies
by the word size when it converts them to byte addresses for the data
cache.  Cells may hold ints, floats, or code pointers.
"""

from __future__ import annotations

from typing import Dict, Union

from .errors import ExecError

GLOBAL_BASE = 0x1000
STACK_BASE = 0x4000_0000
HEAP_BASE = 0x8000_0000

Word = Union[int, float, "CodePtr"]


class CodePtr:
    """A runtime code pointer: the value of a ``FuncRef`` operand.

    Kept symbolic (by procedure name) so indirect calls dispatch without
    a code address map; equality comparison is supported because
    programs compare handlers, but arithmetic on code pointers traps.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CodePtr) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("CodePtr", self.name))

    def __repr__(self) -> str:
        return "<code @{}>".format(self.name)


class Memory:
    """Sparse word-addressed memory with zero default."""

    __slots__ = ("cells", "heap_top")

    def __init__(self) -> None:
        self.cells: Dict[int, Word] = {}
        self.heap_top = HEAP_BASE

    def load(self, addr: int) -> Word:
        # Exact-type test first: the overwhelmingly common case is a plain
        # non-negative int, which needs no further validation.  Odd types
        # (bool, float, CodePtr) and negatives take the slow path, which
        # re-runs the full checks so error messages stay identical.
        if type(addr) is int and addr >= 0:
            return self.cells.get(addr, 0)
        return self._load_slow(addr)

    def _load_slow(self, addr: int) -> Word:
        if not isinstance(addr, int):
            raise ExecError("load from non-integer address {!r}".format(addr))
        if addr < 0:
            raise ExecError("load from negative address {}".format(addr))
        return self.cells.get(addr, 0)

    def store(self, addr: int, value: Word) -> None:
        if type(addr) is int and addr >= 0:
            self.cells[addr] = value
            return
        self._store_slow(addr, value)

    def _store_slow(self, addr: int, value: Word) -> None:
        if not isinstance(addr, int):
            raise ExecError("store to non-integer address {!r}".format(addr))
        if addr < 0:
            raise ExecError("store to negative address {}".format(addr))
        self.cells[addr] = value

    def sbrk(self, words: int) -> int:
        """Allocate ``words`` heap words, returning the base address."""
        if words < 0:
            raise ExecError("sbrk of negative size {}".format(words))
        base = self.heap_top
        self.heap_top += words
        return base
