"""Textual IR (isom format): printing, parsing, round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_module
from repro.ir import (
    FuncRef,
    GlobalRef,
    Imm,
    ParseError,
    Reg,
    Type,
    parse_instr,
    parse_module,
    parse_operand,
    print_module,
)
from repro.workloads.generator import generate_sources


class TestOperandParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("%x", Reg("x")),
            ("@f", FuncRef("f")),
            ("$g", GlobalRef("g")),
            ("42", Imm(42)),
            ("-7", Imm(-7)),
            ("2.5", Imm(2.5, Type.FLT)),
            ("-1.5e3", Imm(-1500.0, Type.FLT)),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_operand(text) == expected

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_operand("!!")


class TestInstrParsing:
    @pytest.mark.parametrize(
        "line",
        [
            "%d = mov 5",
            "%d = add %a, %b",
            "%d = neg %a",
            "%d = load [%p]",
            "store [%p], 3",
            "%d = alloca 8",
            "%d = call @f(%a, 2) #3",
            "call @f() #0",
            "%d = icall %fp(%a) #1",
            "jmp L1",
            "br %c, L1, L2",
            "ret",
            "ret %v",
            "probe 7",
        ],
    )
    def test_roundtrip_line(self, line):
        assert str(parse_instr(line)) == line

    @pytest.mark.parametrize(
        "line", ["%d = bogus 1", "mov 5", "%d = add %a", "br %c, L1", "%d = load %p"]
    )
    def test_bad_lines_raise(self, line):
        with pytest.raises(ParseError):
            parse_instr(line)


class TestModuleRoundtrip:
    SOURCE = """
    static int table[8] = {1, 2, 3};
    float ratio = 2.5;
    extern int other(int x);

    static int helper(int a, int b) {
      if (a < b) return helper(b, a);
      return a - b;
    }

    int entry(int n, ...) {
      int arr[4];
      arr[0] = helper(n, 3) + other(n);
      float f = ratio * 2.0;
      print_flt(f);
      return arr[0] + va_count();
    }
    """

    def test_frontend_module_roundtrips(self):
        mod = compile_module(self.SOURCE, "demo")
        text = print_module(mod)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    def test_roundtrip_preserves_structure(self):
        mod = compile_module(self.SOURCE, "demo")
        reparsed = parse_module(print_module(mod))
        assert set(reparsed.procs) == set(mod.procs)
        assert set(reparsed.globals) == set(mod.globals)
        assert set(reparsed.externs) == set(mod.externs)
        for name in mod.procs:
            assert reparsed.procs[name].size() == mod.procs[name].size()
            assert reparsed.procs[name].attrs == mod.procs[name].attrs
            assert reparsed.procs[name].linkage == mod.procs[name].linkage

    def test_site_counter_bumped_past_parsed_ids(self):
        mod = compile_module(self.SOURCE, "demo")
        reparsed = parse_module(print_module(mod))
        sites = [
            instr.site_id
            for proc in reparsed.procs.values()
            for _b, _i, instr in proc.call_sites()
        ]
        assert reparsed.new_site_id() > max(sites)

    def test_profile_counts_roundtrip(self):
        mod = compile_module(self.SOURCE, "demo")
        proc = next(iter(mod.procs.values()))
        proc.blocks[proc.entry].profile_count = 42
        reparsed = parse_module(print_module(mod))
        assert reparsed.procs[proc.name].blocks[proc.entry].profile_count == 42


class TestParserErrors:
    def test_no_module_header(self):
        with pytest.raises(ParseError):
            parse_module("proc @f() -> int global {\nentry:\n  ret 0\n}")

    def test_double_module_header(self):
        with pytest.raises(ParseError):
            parse_module('module "a"\nmodule "b"')

    def test_unterminated_proc(self):
        with pytest.raises(ParseError):
            parse_module('module "m"\nproc @f() -> int global {\nentry:\n  ret 0')

    def test_instr_before_label(self):
        with pytest.raises(ParseError):
            parse_module('module "m"\nproc @f() -> int global {\n  ret 0\n}')


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_generated_modules_roundtrip(seed):
    """Property: every front-end output survives print->parse->print."""
    for name, source in generate_sources(seed, n_modules=1, funcs_per_module=2):
        mod = compile_module(source, name)
        text = print_module(mod)
        assert print_module(parse_module(text)) == text
