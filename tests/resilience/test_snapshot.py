"""IR checkpoints: capture, mutate, restore, repeat."""

import pytest

from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import print_program
from repro.ir.instructions import Jump
from repro.resilience import ProcedureSnapshot, ProgramSnapshot

LIB = """
static int twice(int x) { return x + x; }
int api(int x) { return twice(x) + 3; }
"""
MAIN = """
extern int api(int x);
int main() { print_int(api(input(0))); return 0; }
"""


def program():
    return compile_program([("lib", LIB), ("main", MAIN)])


class TestProcedureSnapshot:
    def test_restore_undoes_block_mutation(self):
        prog = program()
        proc = prog.proc("api")
        before = print_program(prog)
        snap = ProcedureSnapshot(proc)

        entry = proc.blocks[proc.entry]
        entry.instrs[-1] = Jump("__nowhere")
        assert print_program(prog) != before

        snap.restore(proc)
        assert print_program(prog) == before

    def test_restore_preserves_identity(self):
        prog = program()
        proc = prog.proc("api")
        snap = ProcedureSnapshot(proc)
        snap.restore(proc)
        assert prog.proc("api") is proc

    def test_restore_is_repeatable(self):
        prog = program()
        proc = prog.proc("api")
        before = print_program(prog)
        snap = ProcedureSnapshot(proc)
        for _ in range(3):
            proc.blocks[proc.entry].instrs[-1] = Jump("__nowhere")
            snap.restore(proc)
        assert print_program(prog) == before

    def test_snapshot_isolated_from_later_mutation(self):
        # The snapshot must hold copies: mutating the live procedure
        # after capture (even instruction-level, in place) cannot leak
        # into the checkpoint.
        prog = program()
        proc = prog.proc("api")
        before = print_program(prog)
        snap = ProcedureSnapshot(proc)
        for block in proc.blocks.values():
            for instr in list(block.instrs):
                block.instrs.remove(instr)
                break
        snap.restore(proc)
        assert print_program(prog) == before

    def test_name_mismatch_rejected(self):
        prog = program()
        snap = ProcedureSnapshot(prog.proc("api"))
        with pytest.raises(ValueError):
            snap.restore(prog.proc("main"))


class TestProgramSnapshot:
    def test_restores_deleted_procedure(self):
        prog = program()
        before = print_program(prog)
        snap = ProgramSnapshot(prog)
        prog.delete_proc("twice$lib")  # the front end's static-name mangling
        assert prog.proc("twice$lib") is None
        snap.restore(prog)
        assert prog.proc("twice$lib") is not None
        assert print_program(prog) == before

    def test_restores_behavior(self):
        prog = program()
        baseline = run_program(prog, [7]).behavior()
        snap = ProgramSnapshot(prog)
        api = prog.proc("api")
        api.blocks[api.entry].instrs[-1] = Jump("__nowhere")
        snap.restore(prog)
        assert run_program(prog, [7]).behavior() == baseline

    def test_preserves_module_and_proc_identity(self):
        prog = program()
        lib = prog.modules["lib"]
        api = prog.proc("api")
        snap = ProgramSnapshot(prog)
        snap.restore(prog)
        assert prog.modules["lib"] is lib
        assert prog.proc("api") is api
