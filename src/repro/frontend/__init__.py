"""minic front end: lexer, parser, semantic analysis, lowering, driver."""

from .ast import TranslationUnit
from .driver import compile_module, compile_program
from .errors import CompileError
from .lexer import Token, tokenize
from .parser import Parser, parse_source
from .sema import ModuleSymbols, analyze_unit

__all__ = [
    "CompileError",
    "ModuleSymbols",
    "Parser",
    "Token",
    "TranslationUnit",
    "analyze_unit",
    "compile_module",
    "compile_program",
    "parse_source",
    "tokenize",
]
