"""Call graph: classification (Figure 5 taxonomy), SCCs, orders."""

from repro.analysis import (
    CROSS_MODULE,
    EXTERNAL,
    INDIRECT,
    RECURSIVE,
    WITHIN_MODULE,
    CallGraph,
)
from repro.frontend import compile_program


SOURCES = [
    (
        "lib",
        """
        static int hidden(int x) { return x + 1; }
        int visible(int x) { return hidden(x); }
        int self_rec(int n) { if (n <= 0) return 0; return self_rec(n - 1); }
        int ping(int n);
        int pong(int n) { if (n <= 0) return 0; return ping(n - 1); }
        int ping(int n) { return pong(n); }
        """,
    ),
    (
        "main",
        """
        extern int visible(int x);
        extern int ping(int n);
        int apply(int f, int x) { return f(x); }
        int main() {
          print_int(visible(1));
          print_int(ping(3));
          print_int(apply(&visible, 2));
          return 0;
        }
        """,
    ),
]


def graph():
    return CallGraph(compile_program(SOURCES))


class TestClassification:
    def categories(self):
        return {
            (s.caller.name, getattr(s.instr, "callee", "?")): s.category
            for s in graph().sites
        }

    def test_within_module(self):
        cats = self.categories()
        assert cats[("visible", "hidden$lib")] == WITHIN_MODULE

    def test_cross_module(self):
        cats = self.categories()
        assert cats[("main", "visible")] == CROSS_MODULE
        assert cats[("main", "ping")] == CROSS_MODULE

    def test_self_recursive(self):
        cats = self.categories()
        assert cats[("self_rec", "self_rec")] == RECURSIVE

    def test_mutual_recursion_is_recursive(self):
        cats = self.categories()
        assert cats[("ping", "pong")] == RECURSIVE
        assert cats[("pong", "ping")] == RECURSIVE

    def test_external(self):
        cats = self.categories()
        assert cats[("main", "print_int")] == EXTERNAL

    def test_indirect(self):
        sites = [s for s in graph().sites if s.category == INDIRECT]
        assert len(sites) == 1
        assert sites[0].caller.name == "apply"

    def test_category_counts_sum_to_total(self):
        g = graph()
        counts = g.category_counts()
        assert sum(counts.values()) == len(g.sites)


class TestStructure:
    def test_callers_of(self):
        g = graph()
        callers = {s.caller.name for s in g.callers_of("visible")}
        assert callers == {"main"}

    def test_scc_membership(self):
        g = graph()
        assert set(g.scc_of("ping")) == {"ping", "pong"}
        assert g.scc_of("visible") == ["visible"]

    def test_in_cycle(self):
        g = graph()
        assert g.in_cycle("ping")
        assert g.in_cycle("self_rec")
        assert not g.in_cycle("visible")
        assert not g.in_cycle("main")

    def test_bottom_up_order(self):
        g = graph()
        order = g.bottom_up_order()
        assert order.index("hidden$lib") < order.index("visible")
        assert order.index("visible") < order.index("main")
        assert order.index("ping") < order.index("main")

    def test_reachable_from_main(self):
        g = graph()
        reachable = set(g.reachable_from(["main"]))
        assert "main" in reachable and "visible" in reachable
        assert "hidden$lib" in reachable
        assert "ping" in reachable and "pong" in reachable

    def test_address_taken_counts_as_reachable(self):
        sources = [
            (
                "m",
                """
                int used_by_ptr(int x) { return x; }
                int never() { return 1; }
                int main() { int f = &used_by_ptr; return f(0); }
                """,
            )
        ]
        g = CallGraph(compile_program(sources))
        reachable = set(g.reachable_from(["main"]))
        assert "used_by_ptr" in reachable
        assert "never" not in reachable
