"""Request/state split: validation, dedupe keys, wire twins, result LRU."""

from __future__ import annotations

import pytest

from repro.core.report import HLOReport, PassFailure, TransformEvent
from repro.linker.toolchain import Toolchain
from repro.serve.state import (
    BuildRequest,
    ServerState,
    artifact_checksum,
    deserialize_report,
    serialize_report,
)

from .conftest import REF_INPUT, SOURCES, TRAIN_INPUTS


def _payload(**over):
    payload = {
        "op": "build",
        "sources": [list(pair) for pair in SOURCES],
        "scope": "c",
    }
    payload.update(over)
    return payload


# ----------------------------------------------------------------------
# BuildRequest validation
# ----------------------------------------------------------------------


def test_from_payload_normalizes():
    request = BuildRequest.from_payload(
        _payload(train_inputs=[[5]], inputs=[7], ledger=True)
    )
    assert request.sources == tuple((n, t) for n, t in SOURCES)
    assert request.train_inputs == ((5,),)
    assert request.inputs == (7,)
    assert request.want_ledger is True


@pytest.mark.parametrize(
    "bad",
    [
        {"op": "train"},
        {"sources": []},
        {"sources": "main.c"},
        {"sources": [["main"]]},
        {"sources": [["main", 42]]},
        {"scope": "zz"},
        {"engine": "warp"},
        {"budget_percent": "lots"},
        {"profile": 42},
        {"max_steps": 0},
        {"max_steps": "many"},
        {"timeout": "soon"},
    ],
)
def test_from_payload_rejects(bad):
    with pytest.raises(ValueError):
        BuildRequest.from_payload(_payload(**bad))


def test_run_inputs_must_be_numbers():
    with pytest.raises(ValueError):
        BuildRequest.from_payload(_payload(op="run", inputs=["seven"]))


# ----------------------------------------------------------------------
# Dedupe keys
# ----------------------------------------------------------------------


def test_build_key_ignores_request_noise():
    a = BuildRequest.from_payload(_payload(id="r1", timeout=5))
    b = BuildRequest.from_payload(_payload(id="r2", timeout=90))
    assert a.build_key() == b.build_key()
    assert a.key() == b.key()


def test_build_key_ignores_source_order():
    a = BuildRequest.from_payload(_payload())
    b = BuildRequest.from_payload(
        _payload(sources=[list(p) for p in reversed(SOURCES)])
    )
    assert a.build_key() == b.build_key()


@pytest.mark.parametrize(
    "over",
    [
        {"scope": "cp"},
        {"engine": "fast"},
        {"budget_percent": 10},
        {"train_inputs": [[9]]},
        {"profile": "profiledb v1"},
        {"sources": [["util", "int add(int a, int b) { return a - b; }"]]},
        {"strategy": "demand"},
    ],
)
def test_build_key_tracks_build_identity(over):
    assert (
        BuildRequest.from_payload(_payload()).build_key()
        != BuildRequest.from_payload(_payload(**over)).build_key()
    )


def test_strategy_validated_and_defaulted():
    assert BuildRequest.from_payload(_payload()).strategy == "global"
    # Spelling out the default must hit the same build-key (cache entry).
    assert (
        BuildRequest.from_payload(_payload(strategy="global")).build_key()
        == BuildRequest.from_payload(_payload()).build_key()
    )
    with pytest.raises(ValueError):
        BuildRequest.from_payload(_payload(strategy="eager"))


def test_run_key_shares_build_but_not_op():
    build = BuildRequest.from_payload(_payload())
    run_a = BuildRequest.from_payload(_payload(op="run", inputs=[7]))
    run_b = BuildRequest.from_payload(_payload(op="run", inputs=[8]))
    assert build.build_key() == run_a.build_key() == run_b.build_key()
    assert len({build.key(), run_a.key(), run_b.key()}) == 3


# ----------------------------------------------------------------------
# Report wire twin
# ----------------------------------------------------------------------


def test_report_round_trip_preserves_decisions():
    from repro.fleet import decision_set

    result = Toolchain(SOURCES, TRAIN_INPUTS, jobs=1).build("cp")
    report = result.report
    twin = deserialize_report(serialize_report(report))
    assert twin.inlines == report.inlines
    assert twin.deleted_procs == report.deleted_procs
    assert twin.sites_considered == report.sites_considered
    assert decision_set(twin) == decision_set(report)


def test_report_round_trip_preserves_degraded():
    report = HLOReport()
    report.events.append(TransformEvent("inline", 1, "main", "f", 3, "ok"))
    report.pass_failures.append(
        PassFailure(
            pass_name="sccp", proc="main", pass_number=2,
            phase="verify", error_type="boom", error="tb",
        )
    )
    twin = deserialize_report(serialize_report(report))
    assert len(twin.pass_failures) == 1
    assert twin.degraded == report.degraded
    assert twin.events[0].kind == "inline"
    assert twin.events[0].site_id == 3


def test_artifact_checksum_is_order_free_and_content_bound():
    a = artifact_checksum({"m1": "text1", "m2": "text2"})
    assert a == artifact_checksum({"m2": "text2", "m1": "text1"})
    assert a != artifact_checksum({"m1": "text1", "m2": "text3"})
    # Name/text boundaries can't be gamed by concatenation.
    assert artifact_checksum({"ab": "c"}) != artifact_checksum({"a": "bc"})


# ----------------------------------------------------------------------
# ServerState: warm result LRU and run-over-build sharing
# ----------------------------------------------------------------------


def test_repeat_build_is_a_result_hit():
    state = ServerState(jobs=1)
    try:
        request = BuildRequest.from_payload(_payload())
        cold = state.execute(request)
        warm = state.execute(request)
    finally:
        state.close()
    assert cold["cached"] is False
    assert warm["cached"] is True
    assert warm["checksum"] == cold["checksum"]
    assert state.builds == 1
    assert state.result_hits == 1


def test_run_reuses_the_warm_build():
    state = ServerState(jobs=1)
    try:
        state.execute(BuildRequest.from_payload(_payload()))
        reply = state.execute(
            BuildRequest.from_payload(_payload(op="run", inputs=REF_INPUT))
        )
    finally:
        state.close()
    assert reply["op"] == "run"
    assert reply["exit_code"] == 0
    assert reply["output"] == [7 * 2 * 3]
    assert reply["cached"] is True
    assert state.builds == 1


def test_result_lru_is_bounded():
    state = ServerState(jobs=1, results_capacity=1)
    try:
        first = BuildRequest.from_payload(_payload())
        other = BuildRequest.from_payload(_payload(scope="base"))
        state.execute(first)
        state.execute(other)  # evicts first
        state.execute(first)  # must rebuild
    finally:
        state.close()
    assert state.builds == 3
    assert state.result_hits == 0


def test_daemon_build_matches_cold_cli_build():
    """Byte identity: the daemon's artifacts equal a cold local build's."""
    from repro.linker.isom import to_isom_text

    state = ServerState(jobs=1)
    try:
        fields = state.execute(
            BuildRequest.from_payload(
                _payload(scope="cp", train_inputs=TRAIN_INPUTS)
            )
        )
    finally:
        state.close()
    cold = Toolchain(SOURCES, TRAIN_INPUTS, jobs=1).build("cp")
    cold_isoms = {
        name: to_isom_text(module)
        for name, module in cold.program.modules.items()
    }
    assert fields["isoms"] == cold_isoms
    assert fields["checksum"] == artifact_checksum(cold_isoms)
