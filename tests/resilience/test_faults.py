"""The fault injector itself, and the formats it attacks.

Every corruption mode must (a) be deterministic from its seed and
(b) actually trip the typed-error detection in the isom and profile
readers — a corruption the reader cannot detect would silently poison
the build instead of triggering the degradation ladder.
"""

import pytest

from repro.frontend import compile_module, compile_program
from repro.interp import run_program
from repro.linker import from_isom_text, to_isom_text
from repro.opt.pass_manager import default_pipeline
from repro.profile.database import ProfileDatabase
from repro.profile.instrument import instrument_program
from repro.resilience import (
    CORRUPTION_MODES,
    FaultInjector,
    IsomError,
    ProfileFormatError,
)

LIB = """
static int twice(int x) { return x + x; }
int api(int x) { return twice(x) + 3; }
"""


def sample_isom():
    return to_isom_text(compile_module(LIB, "lib"))


def sample_profile_text():
    sources = [("main", "int main() { print_int(input(0) + 1); return 0; }")]
    program = compile_program(sources)
    probe_map = instrument_program(program)
    result = run_program(program, [5])
    db = ProfileDatabase.from_training_run(
        program, probe_map, result.probe_counts, result.steps
    )
    return db.to_text()


class TestDeterminism:
    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_same_seed_same_corruption(self, mode):
        text = sample_isom()
        a = FaultInjector(seed=42, mode=mode).corrupt_text(text)
        b = FaultInjector(seed=42, mode=mode).corrupt_text(text)
        assert a == b

    def test_different_seed_different_truncation(self):
        text = sample_isom()
        cuts = {
            len(FaultInjector(seed=s, mode="truncate").corrupt_text(text))
            for s in range(8)
        }
        assert len(cuts) > 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(mode="solar-flare")

    def test_injected_log_records_fired_faults(self):
        injector = FaultInjector(seed=0, isom_modules=["lib"], corrupt_profile_db=True)
        injector.corrupt_isom(sample_isom(), "lib")
        injector.corrupt_isom(sample_isom(), "other")  # not targeted: no entry
        injector.corrupt_profile(sample_profile_text())
        assert injector.injected == ["isom:truncate:lib", "profile:truncate"]


class TestIsomDetection:
    @pytest.mark.parametrize(
        "mode,kind",
        [
            ("truncate", "corrupted"),
            ("garble", "corrupted"),
            ("bitflip-checksum", "corrupted"),
            ("version-skew", "version-skew"),
        ],
    )
    def test_every_mode_detected(self, mode, kind):
        corrupted = FaultInjector(seed=7, mode=mode).corrupt_text(sample_isom())
        with pytest.raises(IsomError) as err:
            from_isom_text(corrupted)
        assert err.value.kind == kind

    def test_error_carries_path(self):
        with pytest.raises(IsomError) as err:
            from_isom_text("garbage", path="/tmp/lib.isom")
        assert err.value.path == "/tmp/lib.isom"
        assert "/tmp/lib.isom" in str(err.value)

    def test_legacy_headerless_isom_still_reads(self):
        _, _, payload = sample_isom().partition("\n")
        mod = from_isom_text(payload)
        assert mod.name == "lib"


class TestProfileDetection:
    @pytest.mark.parametrize(
        "mode,kind",
        [
            ("truncate", "corrupted"),
            ("garble", "corrupted"),
            ("bitflip-checksum", "corrupted"),
            ("version-skew", "version-skew"),
        ],
    )
    def test_every_mode_detected(self, mode, kind):
        corrupted = FaultInjector(seed=7, mode=mode).corrupt_text(
            sample_profile_text()
        )
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(corrupted)
        assert err.value.kind == kind

    def test_malformed_line_reports_lineno_and_content(self):
        # Bypass the checksum so the parser reaches the bad line, as a
        # legacy (v1, checksum-free) database would.
        text = "profiledb 1\nruns 1 steps 10\nblock main entry notanint\n"
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(text)
        assert err.value.lineno == 3
        assert err.value.line == "block main entry notanint"
        assert "line 3" in str(err.value)

    def test_short_line_reports_lineno(self):
        text = "profiledb 1\nblock main\n"
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(text)
        assert err.value.lineno == 2

    def test_unknown_record_kind_rejected(self):
        text = "profiledb 1\nfrobnicate a b c\n"
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(text)
        assert "frobnicate" in str(err.value)

    def test_v3_roundtrip_and_v1_compat(self):
        # Trained databases carry procedure fingerprints (the lifecycle
        # layer's staleness anchor), which lifts them to format v3.
        text = sample_profile_text()
        assert text.startswith("profiledb 3 crc32 ")
        assert "\nfp main " in text
        db = ProfileDatabase.from_text(text)
        assert not db.is_empty()
        # A v1 database (payload only, no checksum) still loads.
        _, _, payload = text.partition("\n")
        legacy = ProfileDatabase.from_text("profiledb 1\n" + payload)
        assert legacy.block_counts == db.block_counts


class TestWrapPipeline:
    def test_sabotaged_pass_keeps_name_and_position(self):
        injector = FaultInjector(seed=0, crash_pass="cse")
        original = default_pipeline()
        wrapped = injector.wrap_pipeline(original)
        assert [name for name, _ in wrapped] == [name for name, _ in original]
        originals = dict(original)
        for name, run in wrapped:
            if name == "cse":
                assert run is not originals[name]
            else:
                assert run is originals[name]
