"""Profile lifecycle management: merge, age, detect staleness, salvage.

The PGO survey ("From Profiling to Optimization") identifies two
dominant production problems once profile-guided builds leave the lab:

1. **Multi-run management** — profiles arrive continuously from many
   deployments; naive accumulation lets ancient behaviour swamp the
   present.  :func:`merge_profiles` combines runs with explicit weights
   or an exponential *decay* (each older run's influence multiplied by
   ``decay``), on top of
   :meth:`~repro.profile.ProfileDatabase.combine`'s step-normalized
   weighting.
2. **Staleness** — sources move on while profiles age.  The seed
   pipeline's answer was all-or-nothing (the whole-database
   ``match_ratio``).  Here every procedure carries a source fingerprint
   recorded at training time; :func:`assess_staleness` classifies each
   as *fresh* (fingerprint matches the current compile), *stale*
   (shape changed — still-matching block labels can be salvaged),
   or *missing* (deleted/renamed), and :func:`remap_database` performs
   the per-procedure salvage: fresh counts kept wholesale, stale
   procedures keep exactly the block counts whose labels still resolve,
   missing procedures dropped, site counts re-derived against the
   current program.

:func:`quality_report` rolls coverage, confidence, and staleness into
one machine-readable dict (the ``repro profile report``/``check``
payload), and :func:`require_confident` is the hard-gate twin of the
driver's low-confidence degradation rung.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.program import Program
from ..profile.database import ProfileDatabase
from ..profile.fingerprint import fingerprint_program
from ..resilience.errors import ProfileConfidenceError

# Below this evidence-weighted confidence a sampled profile is treated
# as noise: the degradation ladder falls back to static estimates.
MIN_PROFILE_CONFIDENCE = 0.5

# Below this per-procedure match ratio `repro profile check` calls the
# database stale for that procedure.
DEFAULT_MIN_MATCH = 0.8

FRESH = "fresh"
STALE = "stale"
MISSING = "missing"


@dataclass
class ProcStaleness:
    """One procedure's staleness verdict."""

    name: str
    status: str  # FRESH / STALE / MISSING
    match_ratio: float  # fraction of recorded block labels that resolve
    blocks_recorded: int
    blocks_matching: int


@dataclass
class StalenessReport:
    """Per-procedure staleness of one database against one program."""

    procs: Dict[str, ProcStaleness] = field(default_factory=dict)
    overall_match: float = 0.0  # the legacy whole-database scalar

    @property
    def fresh(self) -> List[str]:
        return sorted(n for n, p in self.procs.items() if p.status == FRESH)

    @property
    def stale(self) -> List[str]:
        return sorted(n for n, p in self.procs.items() if p.status == STALE)

    @property
    def missing(self) -> List[str]:
        return sorted(n for n, p in self.procs.items() if p.status == MISSING)

    def worst_ratio(self) -> float:
        if not self.procs:
            return 0.0
        return min(p.match_ratio for p in self.procs.values())

    def healthy(self, min_match: float = DEFAULT_MIN_MATCH) -> bool:
        return all(p.match_ratio >= min_match for p in self.procs.values())


def merge_profiles(
    databases: Sequence[ProfileDatabase],
    weights: Optional[Sequence[float]] = None,
    decay: Optional[float] = None,
) -> ProfileDatabase:
    """Combine several profiles, weighted explicitly or by age decay.

    ``databases`` are ordered oldest first.  With ``decay`` (in (0, 1])
    the newest run gets weight 1.0 and each step back multiplies by
    ``decay`` — the exponential forgetting that keeps a long-lived
    profile tracking current behaviour.  ``weights`` and ``decay`` are
    mutually exclusive.
    """
    if weights is not None and decay is not None:
        raise ValueError("pass weights or decay, not both")
    if decay is not None:
        if not (0.0 < decay <= 1.0):
            raise ValueError("decay must be in (0, 1]")
        n = len(databases)
        weights = [decay ** (n - 1 - i) for i in range(n)]
    return ProfileDatabase.combine(list(databases), list(weights) if weights else None)


def assess_staleness(db: ProfileDatabase, program: Program) -> StalenessReport:
    """Classify every recorded procedure against a fresh compile.

    Fingerprints decide fresh-vs-stale when the database carries them
    (v3); databases without fingerprints (v1/v2) fall back to pure
    label matching — a procedure whose every recorded label resolves is
    presumed fresh.
    """
    report = StalenessReport(overall_match=db.match_ratio(program))
    ratios = db.proc_match_ratios(program)
    current = fingerprint_program(program)
    recorded_counts: Dict[str, int] = {}
    for proc, _label in db.block_counts:
        recorded_counts[proc] = recorded_counts.get(proc, 0) + 1

    names = set(ratios) | {
        name for name in db.fingerprints if name in recorded_counts
    }
    for name in names:
        ratio = ratios.get(name, 0.0)
        recorded = recorded_counts.get(name, 0)
        if program.proc(name) is None:
            status = MISSING
        else:
            trained_fp = db.fingerprints.get(name)
            if trained_fp is not None:
                status = FRESH if trained_fp == current.get(name) else STALE
            else:
                status = FRESH if ratio >= 1.0 else STALE
        report.procs[name] = ProcStaleness(
            name=name,
            status=status,
            match_ratio=ratio,
            blocks_recorded=recorded,
            blocks_matching=int(round(ratio * recorded)),
        )
    return report


def remap_database(
    db: ProfileDatabase, program: Program
) -> "tuple[ProfileDatabase, StalenessReport]":
    """Salvage the still-matching counts of a partially stale database.

    Returns a new database re-anchored to ``program``: fresh
    procedures keep everything, stale procedures keep only the block
    counts (and their samples/contexts) whose labels still resolve,
    missing procedures are dropped, and site counts are re-derived
    through the current program's call sites.  Fingerprints are
    refreshed, so a subsequent assessment of the remapped database
    against the same program reports everything fresh.
    """
    report = assess_staleness(db, program)
    out = ProfileDatabase()
    out.training_runs = db.training_runs
    out.training_steps = db.training_steps
    out.sampled = db.sampled
    out.sample_rate = db.sample_rate
    out.context_depth = db.context_depth
    out.sampled_events = db.sampled_events
    out.sample_count = db.sample_count

    live = {
        (proc.name, label)
        for proc in program.all_procs()
        for label in proc.blocks
    }
    for key, count in db.block_counts.items():
        if key in live:
            out.block_counts[key] = count
    for key, n in db.block_samples.items():
        if key in live:
            out.block_samples[key] = n
    for key, per in db.context_counts.items():
        if key in live:
            out.context_counts[key] = dict(per)
    out._derive_site_counts(program)
    out.fingerprints = {
        name: fp
        for name, fp in fingerprint_program(program).items()
        if any(proc == name for proc, _label in out.block_counts)
    }
    return out, report


def quality_report(
    db: ProfileDatabase, program: Optional[Program] = None
) -> dict:
    """Coverage / confidence / staleness rolled into one JSON-able dict.

    Without a ``program`` only the database-intrinsic figures are
    reported; with one, coverage and per-procedure staleness join in.
    """
    payload = {
        "runs": db.training_runs,
        "steps": db.training_steps,
        "blocks": len(db.block_counts),
        "sites": len(db.site_counts),
        "sampled": db.sampled,
        "confidence": round(db.overall_confidence(), 4),
    }
    if db.sampled:
        payload["sampling"] = {
            "rate": round(db.sample_rate, 2),
            "context_depth": db.context_depth,
            "events": db.sampled_events,
            "samples": db.sample_count,
            "contexts": sum(len(per) for per in db.context_counts.values()),
        }
    if program is not None:
        staleness = assess_staleness(db, program)
        payload["coverage"] = round(db.coverage(program), 4)
        payload["match_ratio"] = round(staleness.overall_match, 4)
        payload["staleness"] = {
            "fresh": staleness.fresh,
            "stale": staleness.stale,
            "missing": staleness.missing,
            "procs": {
                name: {
                    "status": entry.status,
                    "match_ratio": round(entry.match_ratio, 4),
                    "blocks_recorded": entry.blocks_recorded,
                    "blocks_matching": entry.blocks_matching,
                }
                for name, entry in sorted(staleness.procs.items())
            },
        }
    return payload


def format_quality_report(payload: dict) -> str:
    """Human rendering of :func:`quality_report` for the CLI."""
    lines = [
        "profile: {} run(s), {} steps, {} blocks, {} sites".format(
            payload["runs"], payload["steps"], payload["blocks"], payload["sites"]
        ),
        "collection: {}".format(
            "sampled (rate 1/{:.0f}, k={}, {} samples / {} events, "
            "{} context record(s))".format(
                payload["sampling"]["rate"],
                payload["sampling"]["context_depth"],
                payload["sampling"]["samples"],
                payload["sampling"]["events"],
                payload["sampling"]["contexts"],
            )
            if payload.get("sampled")
            else "exact (instrumented)"
        ),
        "confidence: {:.1%}".format(payload["confidence"]),
    ]
    if "coverage" in payload:
        lines.append("coverage: {:.1%} of program blocks".format(payload["coverage"]))
        lines.append(
            "staleness: match ratio {:.1%}; {} fresh, {} stale, {} missing".format(
                payload["match_ratio"],
                len(payload["staleness"]["fresh"]),
                len(payload["staleness"]["stale"]),
                len(payload["staleness"]["missing"]),
            )
        )
        for name, entry in payload["staleness"]["procs"].items():
            if entry["status"] != FRESH:
                lines.append(
                    "  {}: {} ({}/{} blocks still match)".format(
                        name,
                        entry["status"],
                        entry["blocks_matching"],
                        entry["blocks_recorded"],
                    )
                )
    return "\n".join(lines)


def require_confident(
    db: ProfileDatabase, minimum: float = MIN_PROFILE_CONFIDENCE
) -> None:
    """Raise :class:`ProfileConfidenceError` when the evidence is thin.

    The hard-gate (``--strict``) twin of the driver's low-confidence
    degradation rung; exact databases always pass.
    """
    confidence = db.overall_confidence()
    if db.sampled and confidence < minimum:
        raise ProfileConfidenceError(
            "sampled profile confidence {:.2f} below minimum {:.2f} "
            "({} samples over {} blocks)".format(
                confidence, minimum, db.sample_count, len(db.block_samples)
            ),
            confidence=confidence,
            minimum=minimum,
        )
