"""Span tracer: nesting, worker merging, Chrome trace export."""

import json

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    worker_span,
)
from repro.obs.validate import validate_trace


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("build", scope="cp"):
            pass
        (event,) = tracer.events()
        assert event["name"] == "build"
        assert event["ph"] == "X"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert event["args"] == {"scope": "cp"}

    def test_nested_spans_are_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = {e["name"]: e for e in tracer.events()}
        inner, outer = events["inner"], events["outer"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_add_attaches_args_mid_span(self):
        tracer = Tracer()
        with tracer.span("clone-pass-0") as span:
            span.add(performed=3)
        (event,) = tracer.events()
        assert event["args"]["performed"] == 3

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("pass-failure:cse", cat="resilience", proc="api")
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"]["proc"] == "api"


class TestWorkerMerge:
    def test_absorb_worker_spans_lands_on_worker_rows(self):
        tracer = Tracer()
        base = tracer._epoch_wall
        spans = [
            worker_span("module:lib", base + 0.01, base + 0.02, 4001),
            worker_span("module:main", base + 0.01, base + 0.03, 4002,
                        args={"module": "main"}),
        ]
        tracer.absorb_worker_spans(spans)
        events = tracer.events()
        assert {e["tid"] for e in events} == {4001, 4002}
        trace = tracer.to_dict()
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert names[4001] == "worker-4001"
        assert names[4002] == "worker-4002"

    def test_worker_ts_uses_wall_epoch(self):
        tracer = Tracer()
        base = tracer._epoch_wall
        tracer.absorb_worker_spans(
            [worker_span("module:x", base + 0.5, base + 0.75, 99)]
        )
        (event,) = tracer.events()
        assert abs(event["ts"] - 0.5e6) < 1e4
        assert abs(event["dur"] - 0.25e6) < 1e3


class TestExport:
    def test_to_dict_is_valid_chrome_trace(self):
        tracer = Tracer()
        with tracer.span("build"):
            with tracer.span("hlo", cat="hlo"):
                tracer.instant("pass-failure:dce", cat="resilience")
        assert validate_trace(tracer.to_dict()) == []

    def test_write_is_json_loadable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("build"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        obj = json.loads(path.read_text())
        assert validate_trace(obj) == []
        assert obj["displayTimeUnit"] == "ms"


class TestNullPath:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything") as span:
            span.add(key="value")
        NULL_TRACER.instant("nothing")
        NULL_TRACER.absorb_worker_spans([{"bogus": True}])
        assert NULL_TRACER.events() == []

    def test_null_span_is_shared(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
