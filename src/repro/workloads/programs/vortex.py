"""``vortex`` — an in-memory record store (analog of SPEC 147.vortex).

Vortex is an object-oriented database: transaction loops calling layers
of tiny field accessors and integrity checks.  The store module here
keeps records in parallel global arrays behind get/set accessors; the
transaction module drives insert/lookup/update/validate mixes through
them.  Thousands of two-instruction calls make this the purest inlining
benchmark in the suite.

Inputs: [transaction count, key range, validate period].
"""

from ..suite import Workload, register

STORE = """
// Open-addressed record store: parallel arrays, linear probing.
int rec_key[512];
int rec_val[512];
int rec_gen[512];
int rec_live[512];
int rec_count = 0;

static int slot_of(int key) { return (key * 2654435761) & 511; }

void store_clear() {
  int i;
  for (i = 0; i < 512; i++) rec_live[i] = 0;
  rec_count = 0;
}

int store_find(int key) {
  int h = slot_of(key);
  int probes = 0;
  while (rec_live[h] && probes < 512) {
    if (rec_key[h] == key) return h;
    h = (h + 1) & 511;
    probes = probes + 1;
  }
  return -1;
}

int store_insert(int key, int val) {
  int h = slot_of(key);
  int probes = 0;
  while (rec_live[h] && probes < 512) {
    if (rec_key[h] == key) { rec_val[h] = val; return h; }
    h = (h + 1) & 511;
    probes = probes + 1;
  }
  if (probes >= 512 || rec_count >= 384) return -1;
  rec_live[h] = 1;
  rec_key[h] = key;
  rec_val[h] = val;
  rec_gen[h] = 0;
  rec_count = rec_count + 1;
  return h;
}

// Field accessors, vortex style: one load or store each.
int get_key(int slot) { return rec_key[slot & 511]; }
int get_val(int slot) { return rec_val[slot & 511]; }
int get_gen(int slot) { return rec_gen[slot & 511]; }
int is_live(int slot) { return rec_live[slot & 511]; }
void set_val(int slot, int v) { rec_val[slot & 511] = v; }
void bump_gen(int slot) { rec_gen[slot & 511] = rec_gen[slot & 511] + 1; }
int record_count() { return rec_count; }
"""

TXN = """
extern int store_find(int key);
extern int store_insert(int key, int val);
extern int get_key(int slot);
extern int get_val(int slot);
extern int get_gen(int slot);
extern int is_live(int slot);
extern void set_val(int slot, int v);
extern void bump_gen(int slot);
extern int record_count();

int txn_ok = 0;
int txn_miss = 0;

int txn_upsert(int key, int val) {
  int slot = store_find(key);
  if (slot >= 0) {
    set_val(slot, (get_val(slot) + val) % 1000003);
    bump_gen(slot);
    txn_ok = txn_ok + 1;
    return get_val(slot);
  }
  slot = store_insert(key, val);
  if (slot >= 0) {
    txn_ok = txn_ok + 1;
    return val;
  }
  txn_miss = txn_miss + 1;
  return 0;
}

int txn_read(int key) {
  int slot = store_find(key);
  if (slot < 0) {
    txn_miss = txn_miss + 1;
    return 0;
  }
  txn_ok = txn_ok + 1;
  return get_val(slot) + get_gen(slot);
}

// Integrity sweep: every live record's key must find its own slot.
int validate() {
  int bad = 0;
  int s;
  for (s = 0; s < 512; s++) {
    if (is_live(s)) {
      int found = store_find(get_key(s));
      if (found != s && found >= 0) {
        if (get_key(found) != get_key(s)) bad = bad + 1;
      }
    }
  }
  return bad;
}
"""

MAIN = """
extern int txn_upsert(int key, int val);
extern int txn_read(int key);
extern int validate();
extern int record_count();
extern void store_clear();

static int seed = 31337;

static int rnd(int m) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) seed = -seed;
  return seed % m;
}

int main() {
  int txns = input(0);
  int key_range = input(1);
  int vperiod = input(2);
  if (key_range < 1) key_range = 1;
  if (vperiod < 1) vperiod = 1;
  store_clear();
  int check = 0;
  int bad = 0;
  int t;
  for (t = 0; t < txns; t++) {
    int key = rnd(key_range);
    if (rnd(100) < 40) check = (check + txn_upsert(key, rnd(1000))) % 1000003;
    else check = (check + txn_read(key)) % 1000003;
    if (t % vperiod == 0) bad = bad + validate();
  }
  print_int(check);
  print_int(record_count());
  print_int(bad);
  return check % 97;
}
"""

WORKLOAD = Workload(
    name="vortex",
    spec_analog="147.vortex (OO database)",
    description="record-store transactions through tiny field accessors",
    sources=(("store", STORE), ("txn", TXN), ("vxmain", MAIN)),
    train_inputs=((250, 80, 50),),
    ref_input=(900, 200, 90),
    suites=("95",),
)


def register_workload() -> None:
    register(WORKLOAD)
