"""Plan-cache behaviour under hot swap: the fleet's correctness anchor.

The continuous-profiling loop hot-swaps new builds into running
instances (``FleetSupervisor.swap_all``); the pre-decoded engine's plan
cache must never serve a plan for code that changed underneath it.
Three mechanisms cover the matrix:

- plans self-validate against the procedure's content fingerprint on
  every *run's first* lookup, so an in-place procedure swap is picked
  up on the next run;
- the whole cache clears when the program's globals layout signature
  changes (plans embed resolved global addresses);
- within one run, resolution is cached per run (``_ExecState.link``) —
  a mutation landing mid-run completes on the old plan and takes
  effect on the next run, which is exactly the swap semantics the
  fleet relies on (a running request finishes on the build it started
  on).
"""

from __future__ import annotations

from repro.frontend.driver import compile_program
from repro.interp.events import EventSink
from repro.interp.interpreter import Interpreter, run_program


def _sources(bonus: int) -> list:
    return [
        (
            "lib",
            "int helper(int x) {{ return x + {}; }}\n".format(bonus),
        ),
        (
            "main",
            "extern int helper(int x);\n"
            "int main() { int i = 0; int acc = 0;\n"
            "  while (i < 4) { acc = acc + helper(10); i = i + 1; }\n"
            "  print_int(acc); return 0; }\n",
        ),
    ]


def _swap_helper(program, bonus: int) -> None:
    """In-place hot swap: give @helper the body from a new compile."""
    donor = compile_program(_sources(bonus))
    new = donor.modules["lib"].procs["helper"]
    old = program.modules["lib"].procs["helper"]
    old.blocks = new.blocks
    old.params = new.params


def test_fingerprint_change_invalidates_between_runs():
    program = compile_program(_sources(1))
    assert run_program(program, engine="fast").output == [44]
    cache = program._plan_cache
    compiled_before = cache.plans_compiled
    _swap_helper(program, 100)
    # Same Program object, same cache: the stale plan must lose.
    assert run_program(program, engine="fast").output == [440]
    assert program._plan_cache is cache
    assert cache.plans_compiled > compiled_before


def test_unchanged_procs_hit_the_cache_after_swap():
    program = compile_program(_sources(1))
    run_program(program, engine="fast")
    cache = program._plan_cache
    _swap_helper(program, 100)
    hits_before = cache.cache_hits
    run_program(program, engine="fast")
    # @main did not change; its plan must be reused, not recompiled.
    assert cache.cache_hits > hits_before


def test_globals_layout_change_clears_whole_cache():
    with_global = [
        ("lib", "int counter[2];\nint helper(int x) { return x + 1; }\n"),
        _sources(1)[1],
    ]
    program = compile_program(_sources(1))
    run_program(program, engine="fast")
    cache = program._plan_cache
    assert cache.plans
    # Splice in a module variant that declares a global: the layout
    # signature shifts, so every plan's embedded addresses are stale.
    donor = compile_program(with_global)
    program.modules["lib"] = donor.modules["lib"]
    result = run_program(program, engine="fast")
    assert result.output == [44]
    assert program._plan_cache is cache  # cleared in place, not replaced
    assert cache.globals_sig == tuple(
        (g.name, g.size) for g in program.all_globals()
    )


def test_invalidate_plans_drops_the_cache_object():
    program = compile_program(_sources(1))
    run_program(program, engine="fast")
    assert program._plan_cache is not None
    program.invalidate_plans()
    assert program._plan_cache is None
    # And the next run rebuilds from nothing, correctly.
    assert run_program(program, engine="fast").output == [44]


class _MidRunSwapper(EventSink):
    """Hot-swaps @helper after its second call, mid-run."""

    needs_instr = False
    needs_branch = False
    needs_return = False
    needs_mem = False

    def __init__(self, program, bonus):
        self.program = program
        self.bonus = bonus
        self.calls = 0

    def on_call(self, caller, callee_name, kind, n_args):
        if callee_name == "helper":
            self.calls += 1
            if self.calls == 2:
                _swap_helper(self.program, self.bonus)


def test_mid_run_swap_completes_on_old_plan_next_run_sees_new():
    program = compile_program(_sources(1))
    sink = _MidRunSwapper(program, 100)
    first = Interpreter(program, sink=sink, engine="fast").run()
    # All four iterations used the plan resolved at the run's first
    # call — the in-flight run is never torn between two builds.
    assert first.output == [44]
    assert sink.calls >= 2
    # A fresh run re-validates fingerprints and sees the swapped body.
    second = run_program(program, engine="fast")
    assert second.output == [440]


def test_mid_run_swap_matches_reference_engine_semantics():
    program_fast = compile_program(_sources(1))
    program_ref = compile_program(_sources(1))
    fast = Interpreter(
        program_fast, sink=_MidRunSwapper(program_fast, 100), engine="fast"
    ).run()
    ref = Interpreter(
        program_ref, sink=_MidRunSwapper(program_ref, 100), engine="reference"
    ).run()
    # The reference engine re-reads blocks each call, so it *does* see
    # the new body mid-run; the contract the fleet needs is only about
    # post-swap runs, where both engines agree.
    assert fast.exit_code == ref.exit_code == 0
    assert run_program(program_fast, engine="fast").output == \
        run_program(program_ref, engine="reference").output == [440]
