"""The full HLO driver (Figure 2): multi-pass loop, deletion, scope."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HLOConfig, run_hlo
from repro.core.budget import program_cost
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import Call, ICall, verify_program
from repro.workloads.generator import generate_sources


def fresh(sources):
    return compile_program(sources)


PIPELINE = [
    (
        "lib",
        """
        static int helper(int x) { return x * 2 + 1; }
        int api(int x) { return helper(x) - 1; }
        int dead_if_inlined(int x) { return api(x) + 1; }
        """,
    ),
    (
        "main",
        """
        extern int api(int x);
        extern int dead_if_inlined(int x);
        int main() {
          int total = 0;
          for (int i = 0; i < 8; i++) total += dead_if_inlined(i);
          print_int(total);
          return total % 31;
        }
        """,
    ),
]


class TestDriver:
    def test_behavior_preserved(self):
        program = fresh(PIPELINE)
        before = run_program(program).behavior()
        report = run_hlo(program, HLOConfig(budget_percent=400))
        verify_program(program)
        assert run_program(program).behavior() == before
        assert report.passes_run >= 1

    def test_budget_respected(self):
        program = fresh(PIPELINE)
        report = run_hlo(program, HLOConfig(budget_percent=100))
        # Deletions can shrink below the initial cost, so check against
        # the recorded limit only from above.
        assert report.final_cost <= report.budget_limit * 1.001

    def test_neither_config_is_identity_modulo_cleanup(self):
        program = fresh(PIPELINE)
        before = run_program(program).behavior()
        report = run_hlo(
            program,
            HLOConfig(enable_inlining=False, enable_cloning=False),
        )
        assert report.inlines == 0
        assert report.clones == 0
        assert run_program(program).behavior() == before

    def test_whole_program_deletes_unreachable(self):
        program = fresh(PIPELINE)
        report = run_hlo(program, HLOConfig(budget_percent=1000))
        # With everything inlined into main, the library routines die.
        assert report.deletions >= 1

    def test_module_scope_keeps_global_routines(self):
        program = fresh(PIPELINE)
        run_hlo(program, HLOConfig(budget_percent=1000, cross_module=False))
        # api has global linkage: a module-at-a-time compiler must assume
        # unseen callers and cannot delete it.
        assert program.proc("api") is not None

    def test_pass_limit_one(self):
        program = fresh(PIPELINE)
        report = run_hlo(program, HLOConfig(budget_percent=400, pass_limit=1))
        assert report.passes_run == 1

    def test_stop_after_zero_blocks_all_transforms(self):
        program = fresh(PIPELINE)
        report = run_hlo(program, HLOConfig(budget_percent=400, stop_after=0))
        assert report.transform_count == 0

    def test_stop_after_counts_monotonic(self):
        full = run_hlo(fresh(PIPELINE), HLOConfig(budget_percent=400))
        total = full.transform_count
        for stop in range(total + 1):
            report = run_hlo(
                fresh(PIPELINE), HLOConfig(budget_percent=400, stop_after=stop)
            )
            assert report.transform_count <= stop

    def test_report_final_cost_matches_program(self):
        program = fresh(PIPELINE)
        report = run_hlo(program, HLOConfig(budget_percent=400))
        assert report.final_cost == program_cost(program)


class TestStagedOptimization:
    DEVIRT = [
        (
            "handlers",
            """
            static int on_zero(int x) { return x + 100; }
            static int on_other(int x) { return x - 1; }
            int handler_for(int kind) {
              if (kind == 0) return &on_zero;
              return &on_other;
            }
            """,
        ),
        (
            "main",
            """
            extern int handler_for(int kind);
            int main() {
              int total = 0;
              for (int i = 0; i < 6; i++) {
                int h = handler_for(0);
                total += h(i);
              }
              print_int(total);
              return 0;
            }
            """,
        ),
    ]

    def test_indirect_becomes_direct_across_passes(self):
        """Section 3.1's staged optimization: inline the accessor, then
        constant propagation exposes the code pointer, then the indirect
        call devirtualizes (and the target may inline next pass)."""
        program = fresh(self.DEVIRT)
        before = run_program(program).behavior()
        report = run_hlo(program, HLOConfig(budget_percent=1000))
        verify_program(program)
        assert run_program(program).behavior() == before
        icalls = sum(
            isinstance(i, ICall)
            for p in program.all_procs()
            for i in p.instructions()
        )
        assert icalls == 0
        assert report.devirtualized >= 1

    def test_static_handler_promoted(self):
        program = fresh(self.DEVIRT)
        report = run_hlo(program, HLOConfig(budget_percent=1000))
        assert report.promotions >= 1


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_hlo_preserves_behavior(self, seed):
        sources = generate_sources(seed)
        reference = run_program(compile_program(sources), max_steps=1_000_000)
        program = compile_program(sources)
        run_hlo(program, HLOConfig(budget_percent=400))
        verify_program(program)
        result = run_program(program, max_steps=3_000_000)
        assert result.behavior() == reference.behavior()

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.sampled_from([25.0, 100.0, 400.0]),
    )
    def test_budget_limit_holds_for_any_seed(self, seed, percent):
        program = compile_program(generate_sources(seed))
        report = run_hlo(program, HLOConfig(budget_percent=percent))
        assert report.final_cost <= report.budget_limit * 1.001

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_verifier_always_passes_after_hlo(self, seed):
        program = compile_program(generate_sources(seed, n_modules=3))
        run_hlo(program, HLOConfig(budget_percent=1000))
        verify_program(program)
