"""The bench harness itself: tables, lab caching, runners."""

import pytest

from repro.bench import (
    Lab,
    fig5_callsites,
    format_table,
    geometric_mean,
    scope_anecdote,
    variant_config,
)
from repro.bench.runner import _stop_points
from repro.core import HLOConfig


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(["a", "longheader"], [[1, 2.5], [333, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longheader" in lines[1]
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_float_formatting(self):
        text = format_table(["v"], [[0.12345], [12.345], [12345.6]])
        assert "0.123" in text
        assert "12.3" in text
        assert "12346" in text

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)  # zeros dropped


class TestVariantConfig:
    def test_variants(self):
        base = HLOConfig()
        neither = variant_config(base, "neither")
        assert not neither.enable_inlining and not neither.enable_cloning
        inline = variant_config(base, "inline")
        assert inline.enable_inlining and not inline.enable_cloning
        clone = variant_config(base, "clone")
        assert not clone.enable_inlining and clone.enable_cloning
        both = variant_config(base, "both")
        assert both.enable_inlining and both.enable_cloning

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_config(HLOConfig(), "turbo")


class TestLab:
    def test_toolchain_cached(self):
        lab = Lab()
        assert lab.toolchain("sc") is lab.toolchain("sc")

    def test_build_cached_by_key(self):
        lab = Lab()
        first = lab.build("sc", "base")
        assert lab.build("sc", "base") is first
        assert lab.build("sc", "c") is not first

    def test_measure_cached(self):
        lab = Lab()
        m1, r1 = lab.measure("sc", "base")
        m2, r2 = lab.measure("sc", "base")
        assert m1 is m2 and r1 is r2

    def test_variant_measurements_distinct(self):
        lab = Lab()
        m_neither, _ = lab.measure_variant("sc", "neither")
        m_both, _ = lab.measure_variant("sc", "both")
        assert m_neither.cycles != m_both.cycles


class TestRunners:
    def test_stop_points_cover_range(self):
        assert _stop_points(0, 5) == [0]
        points = _stop_points(10, 5)
        assert points[0] == 0 and points[-1] == 10
        assert points == sorted(set(points))
        assert _stop_points(2, 10) == [0, 1, 2]

    def test_fig5_shape(self):
        headers, rows = fig5_callsites()
        assert headers[0] == "benchmark" and headers[-1] == "total"
        assert len(rows) == 10
        for row in rows:
            assert row[-1] == sum(row[1:-1])

    def test_scope_anecdote_runs(self):
        headers, rows = scope_anecdote("sc")
        assert [r[0] for r in rows] == ["base", "c", "p", "cp"]
        assert rows[0][2] == 1.0  # base speedup vs itself


class TestPlots:
    def test_ascii_curves_renders(self):
        from repro.bench.plots import ascii_curves

        series = {
            25.0: [(0, 100.0), (5, 90.0)],
            100.0: [(0, 100.0), (10, 60.0)],
        }
        text = ascii_curves(series, width=20, height=6)
        lines = text.splitlines()
        assert any("a" in l for l in lines)  # budget 25 glyph
        assert any("b" in l for l in lines)  # budget 100 glyph
        assert "budget 25%" in text and "budget 100%" in text
        # Axis labels carry the extremes.
        assert "100" in lines[0]

    def test_ascii_curves_empty(self):
        from repro.bench.plots import ascii_curves

        assert ascii_curves({}) == "(no data)"

    def test_single_point(self):
        from repro.bench.plots import ascii_curves

        text = ascii_curves({50.0: [(3, 42.0)]}, width=10, height=4)
        assert "a" in text
