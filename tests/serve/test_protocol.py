"""Frame encode/decode: round trips and the hostile-input taxonomy."""

from __future__ import annotations

import pytest

from repro.resilience.errors import FrameFormatError
from repro.serve.protocol import (
    MAX_FRAME_CHARS,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    reply,
)


def test_round_trip():
    payload = {"op": "build", "id": "r1", "sources": [["m", "int x;"]]}
    line = encode_frame(payload)
    assert line.endswith(b"\n")
    assert line.startswith("rpc {} ".format(PROTOCOL_VERSION).encode())
    assert decode_frame(line) == payload


def test_round_trip_preserves_nested_values():
    payload = {
        "id": None,
        "status": "ok",
        "isoms": {"a": "line1\nline2", "b": ""},
        "inputs": [1, 2.5, -3],
        "cached": False,
    }
    assert decode_frame(encode_frame(payload)) == payload


def test_frame_is_single_line():
    line = encode_frame({"text": "a\nb\tc", "unicode": "é"})
    assert line.count(b"\n") == 1  # only the terminator


def _kind(line):
    with pytest.raises(FrameFormatError) as excinfo:
        decode_frame(line)
    return excinfo.value.kind


def test_truncated_frame():
    line = encode_frame({"op": "ping"})
    assert _kind(line[:-10]) == "truncated"
    assert _kind(b"rpc 1 90\n") == "truncated"
    assert _kind(b"\n") == "truncated"


def test_corrupted_payload():
    line = bytearray(encode_frame({"op": "ping", "id": "x"}))
    # Flip one payload character without changing the length.
    line[-3] = ord("X") if line[-3] != ord("X") else ord("Y")
    assert _kind(bytes(line)) == "corrupted"


def test_version_skew():
    line = encode_frame({"op": "ping"})
    skewed = line.replace(b"rpc 1 ", b"rpc 2 ", 1)
    assert _kind(skewed) == "version-skew"


def test_malformed_magic_and_overrun():
    line = encode_frame({"op": "ping"})
    assert _kind(b"xxx" + line[3:]) == "malformed"
    assert _kind(line[:-1] + b"junk\n") == "malformed"


def test_non_object_payload_rejected():
    body = "[1,2,3]"
    import zlib

    crc = format(zlib.crc32(body.encode()) & 0xFFFFFFFF, "08x")
    line = "rpc 1 {} crc32 {} {}\n".format(len(body), crc, body).encode()
    with pytest.raises(FrameFormatError):
        decode_frame(line)


def test_reply_checks_status():
    assert reply("r1", "ok", op="ping")["status"] == "ok"
    assert reply(None, "busy")["id"] is None
    with pytest.raises(ValueError):
        reply("r1", "teapot")


def test_frame_limit_is_generous():
    # Whole source trees must fit; the limit is a safety valve, not a cap.
    assert MAX_FRAME_CHARS >= 1024 * 1024
