#!/usr/bin/env python
"""Profiles from a variety of sources (Section 5 future work).

"We are looking at techniques to make profiling less onerous, perhaps
incorporating profile information from a variety of sources."

This example trains the same program on two very different input
regimes — a short "smoke" run and a long "production" run with a
different hot path — then compares three PGO builds:

1. trained only on the smoke run,
2. trained only on the production run,
3. trained on the *weighted combination* of both
   (``ProfileDatabase.combine``), normalizing each source by its length
   so the smoke run is not drowned out.

Run:  python examples/multi_source_profiles.py
"""

from repro import HLOConfig, compile_program, run_hlo, simulate
from repro.bench import format_table
from repro.profile import ProfileDatabase, annotate_program, instrument_program
from repro.interp import run_program

# mode 0 exercises path A heavily; mode 1 exercises path B.
SOURCES = [
    (
        "paths",
        """
        int path_a(int x) {
          int r = (x * 7 + 3) % 1000;
          r = (r * 11 + 1) % 1000;
          r = (r ^ (r >> 2)) & 1023;
          r = (r * 5 + 9) % 1000;
          return r;
        }
        int path_b(int x) {
          // Same size as path_a: under the tight budget exactly one of
          // the two can be inlined — the profile chooses which.
          int r = (x * 31 + 8) % 1000;
          r = (r * 17 + 5) % 1000;
          r = (r ^ (r >> 3)) & 1023;
          r = (r * 13 + 7) % 1000;
          return r;
        }
        """,
    ),
    (
        "driver",
        """
        extern int path_a(int x);
        extern int path_b(int x);
        int main() {
          int mode = input(0);
          int iters = input(1);
          int acc = 0;
          for (int i = 0; i < iters; i++) {
            if (mode == 0) acc = (acc + path_a(i)) % 100003;
            else acc = (acc + path_b(i)) % 100003;
          }
          print_int(acc);
          return 0;
        }
        """,
    ),
]

SMOKE = [0, 40]  # short, exercises path_a
PRODUCTION = [1, 400]  # long, exercises path_b
MIXED_REF = [0, 300]  # the deployment actually leans on path_a


def train_on(inputs):
    program = compile_program(SOURCES)
    probe_map = instrument_program(program)
    result = run_program(program, inputs)
    return ProfileDatabase.from_training_run(
        program, probe_map, result.probe_counts, result.steps
    )


BUDGET = 160.0  # fits one of the two equal-sized paths, not both


def build_with(db):
    program = compile_program(SOURCES)
    annotate_program(program, db)
    run_hlo(program, HLOConfig(budget_percent=BUDGET), site_counts=db.site_counts)
    return program


def main() -> None:
    smoke_db = train_on(SMOKE)
    prod_db = train_on(PRODUCTION)
    # Weights express the *expected deployment mix*: we believe real
    # traffic looks twice as much like the smoke tests as like the
    # production trace.  Each source is normalized by its own length
    # first, so the 25x-longer production run cannot drown the smoke run.
    combined = ProfileDatabase.combine([smoke_db, prod_db], weights=[2.0, 1.0])

    rows = []
    behaviors = set()
    for label, db in (
        ("smoke only", smoke_db),
        ("production only", prod_db),
        ("combined (2:1 weights)", combined),
    ):
        program = build_with(db)
        metrics, run = simulate(program, MIXED_REF)
        behaviors.add(run.behavior())
        rows.append([label, db.training_steps, "{:.0f}".format(metrics.cycles)])
    assert len(behaviors) == 1

    print(format_table(
        ["training source", "train_steps", "cycles on deployment input"],
        rows,
        title="Multi-source profile feedback (deployment leans on path_a)",
    ))
    print("\nUnder the tight budget only one path can be inlined.  The")
    print("production-only profile spends it on path_b (wrong for this")
    print("deployment); the weighted combination keeps the smoke run's")
    print("knowledge of path_a alive and wins — and no configuration ever")
    print("changes program behaviour.")


if __name__ == "__main__":
    main()
