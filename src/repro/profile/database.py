"""The profile database: block and call-site execution counts.

Keys are stable across recompiles because the front end is
deterministic: block counts key on ``(procedure name, block label)``
and call-site counts on ``(module name, site id)``.  Call-site counts
are derived from block counts — a call executes exactly as often as
its containing block — which mirrors how arc profiles are recovered
from basic-block profiles in practice.

The database serializes to a small text format so the isom workflow can
keep profiles on disk between the training and final compiles.  The
on-disk format is versioned and checksummed.  Format **v3** (the
second-generation, sampled/context database) adds four record kinds on
top of v2's ``runs``/``block``/``site``::

    profiledb 3 crc32 5d41402a
    runs 1 steps 8842
    sampling rate 100.0 depth 2 events 8842 samples 88
    fp main 3f2a1b9c0d4e
    block main entry 1
    obs main loop 12
    ctx work loop 1200 wrap,main
    site app 0 12

- ``sampling`` carries the collection metadata of a sampled run (the
  effective sampling rate, the calling-context depth *k*, and how many
  events/samples the run saw);
- ``fp`` records one per-procedure source fingerprint, the staleness
  anchor the lifecycle layer (:mod:`repro.sampling.lifecycle`) compares
  against a fresh compile;
- ``obs`` is the *raw observation count* behind a sampled block count —
  the per-count confidence is derived from it (many samples = tight
  estimate, few = noise);
- ``ctx`` is a context-attributed block count: the same block key plus
  the k-deep calling context (nearest caller first, ``-`` for an empty
  context).  Context records are what sharpen the cloner's benefit
  estimates (docs/profiling.md).

A database with none of that extra data still writes the plain v2 form,
byte-identical to what previous releases produced.

"From Profiling to Optimization" calls stale and corrupted profiles the
dominant failure mode of deployed PGO, so ``from_text``/``load`` treat
their input as hostile: truncation, corruption, version skew, malformed
integers, and short lines all raise a typed
:class:`~repro.resilience.ProfileFormatError` carrying the offending
line number — the signal the driver uses to fall back to static
frequency estimation instead of crashing.  Version-1 databases (no
checksum) and version-2 databases (no sampling records) are still read.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import CALL_INSTRS
from ..ir.program import Program
from ..resilience.errors import ProfileFormatError
from .fingerprint import fingerprint_program

PROFILEDB_VERSION = 3
PROFILEDB_PLAIN_VERSION = 2  # written when no sampling/context/fp data

BlockKey = Tuple[str, str]  # (proc name, block label)
SiteKey = Tuple[str, int]  # (module name, site id)
Context = Tuple[str, ...]  # calling context, nearest caller first

EMPTY_CONTEXT_TOKEN = "-"


def format_context(context: Context) -> str:
    return ",".join(context) if context else EMPTY_CONTEXT_TOKEN


def parse_context(text: str) -> Context:
    if text == EMPTY_CONTEXT_TOKEN:
        return ()
    return tuple(text.split(","))


class ProfileDatabase:
    """Counts harvested from one or more training runs.

    Exact (instrumented) runs populate ``block_counts``/``site_counts``
    with true counts and per-procedure ``fingerprints``.  Sampled runs
    (:mod:`repro.sampling`) additionally populate ``block_samples``
    (raw observation counts, the confidence evidence) and
    ``context_counts`` (k-deep calling-context attribution), and set
    the ``sampled`` collection metadata.
    """

    def __init__(self) -> None:
        self.block_counts: Dict[BlockKey, int] = {}
        self.site_counts: Dict[SiteKey, int] = {}
        self.training_runs = 0
        self.training_steps = 0
        # Sampling metadata (zero / empty on exact databases).
        self.sampled = False
        self.sample_rate = 0.0  # effective events-per-sample of collection
        self.context_depth = 0  # k of the calling-context records
        self.sampled_events = 0
        self.sample_count = 0
        # Raw observation count per block (sampled databases only).
        self.block_samples: Dict[BlockKey, int] = {}
        # Context-attributed block counts: key -> {context: count}.
        self.context_counts: Dict[BlockKey, Dict[Context, int]] = {}
        # Per-procedure source fingerprints at training time.
        self.fingerprints: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_training_run(
        cls,
        program: Program,
        probe_map: "Dict[int, Tuple[str, str]]",
        probe_counts: Dict[int, int],
        steps: int = 0,
    ) -> "ProfileDatabase":
        db = cls()
        db.merge_run(program, probe_map, probe_counts, steps)
        return db

    def merge_run(
        self,
        program: Program,
        probe_map: "Dict[int, Tuple[str, str]]",
        probe_counts: Dict[int, int],
        steps: int = 0,
    ) -> None:
        """Fold one training run's probe counters into the database.

        Multiple runs accumulate, supporting the paper's future-work
        idea of "incorporating profile information from a variety of
        sources".
        """
        for counter_id, (proc, label) in probe_map.items():
            count = probe_counts.get(counter_id, 0)
            key = (proc, label)
            self.block_counts[key] = self.block_counts.get(key, 0) + count
        self._derive_site_counts(program)
        self.fingerprints.update(fingerprint_program(program))
        self.training_runs += 1
        self.training_steps += steps

    def _derive_site_counts(self, program: Program) -> None:
        self.site_counts = {}
        for mod in program.modules.values():
            for proc in mod.procs.values():
                for label, block in proc.blocks.items():
                    count = self.block_counts.get((proc.name, label))
                    if count is None:
                        continue
                    for instr in block.instrs:
                        if isinstance(instr, CALL_INSTRS):
                            key = (mod.name, instr.site_id)
                            self.site_counts[key] = (
                                self.site_counts.get(key, 0) + count
                            )

    # ------------------------------------------------------------------
    # Combination (Section 5: "incorporating profile information from a
    # variety of sources")
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "ProfileDatabase":
        """A copy with every count scaled by ``factor`` (>= 0).

        Scaling lets differently sized training runs contribute equal
        (or deliberately unequal) influence when combined.  Raw sample
        observations (``block_samples``/``sample_count``/events) are
        *evidence*, not estimates: a down-weighted run's evidence counts
        for proportionally less confidence in the merge, but an
        up-scaled run cannot manufacture observations it never made, so
        their factor is capped at 1.0.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        evidence = min(1.0, factor)
        out = ProfileDatabase()
        out.block_counts = {
            k: int(round(v * factor)) for k, v in self.block_counts.items()
        }
        out.site_counts = {
            k: int(round(v * factor)) for k, v in self.site_counts.items()
        }
        out.training_runs = self.training_runs
        out.training_steps = int(round(self.training_steps * factor))
        out.sampled = self.sampled
        out.sample_rate = self.sample_rate
        out.context_depth = self.context_depth
        out.sampled_events = int(round(self.sampled_events * evidence))
        out.sample_count = int(round(self.sample_count * evidence))
        out.block_samples = {
            k: int(round(v * evidence)) for k, v in self.block_samples.items()
        }
        out.context_counts = {
            key: {
                ctx: int(round(count * factor)) for ctx, count in per.items()
            }
            for key, per in self.context_counts.items()
        }
        out.fingerprints = dict(self.fingerprints)
        return out

    @classmethod
    def combine(
        cls,
        databases: "list[ProfileDatabase]",
        weights: Optional["list[float]"] = None,
    ) -> "ProfileDatabase":
        """Merge profiles from several sources, optionally weighted.

        With no weights, counts add directly (larger runs dominate).
        With weights, each database is normalized by its total steps
        first, so a short synthetic run and a long production trace can
        contribute in the stated proportion.
        """
        if not databases:
            return cls()
        if weights is not None:
            if len(weights) != len(databases):
                raise ValueError("one weight per database required")
            scaled = []
            for db, weight in zip(databases, weights):
                norm = weight / db.training_steps if db.training_steps else 0.0
                # Keep counts in a useful integer range after normalizing.
                scaled.append(db.scaled(norm * 1_000_000))
            databases = scaled
        out = cls()
        for db in databases:
            for key, count in db.block_counts.items():
                out.block_counts[key] = out.block_counts.get(key, 0) + count
            for key, count in db.site_counts.items():
                out.site_counts[key] = out.site_counts.get(key, 0) + count
            for key, count in db.block_samples.items():
                out.block_samples[key] = out.block_samples.get(key, 0) + count
            for key, per in db.context_counts.items():
                merged = out.context_counts.setdefault(key, {})
                for ctx, count in per.items():
                    merged[ctx] = merged.get(ctx, 0) + count
            # Later databases win fingerprint conflicts: when sources
            # changed between runs, the newest run's shape is the one a
            # fresh compile should be compared against.
            out.fingerprints.update(db.fingerprints)
            out.training_runs += db.training_runs
            out.training_steps += db.training_steps
            out.sampled = out.sampled or db.sampled
            out.context_depth = max(out.context_depth, db.context_depth)
            out.sampled_events += db.sampled_events
            out.sample_count += db.sample_count
        if out.sampled:
            out.sample_rate = (
                out.sampled_events / out.sample_count if out.sample_count else 0.0
            )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def block_count(self, proc: str, label: str) -> Optional[int]:
        return self.block_counts.get((proc, label))

    def site_count(self, module: str, site_id: int) -> Optional[int]:
        return self.site_counts.get((module, site_id))

    def is_empty(self) -> bool:
        return not self.block_counts

    @property
    def has_contexts(self) -> bool:
        return bool(self.context_counts)

    def context_view(self) -> Optional[Dict[BlockKey, Dict[Context, int]]]:
        """The context-attributed counts, or ``None`` when absent.

        This is what the HLO driver hands to the cloner
        (``run_hlo(..., context_counts=...)``).
        """
        return self.context_counts if self.context_counts else None

    # ------------------------------------------------------------------
    # Confidence (sampled databases)
    # ------------------------------------------------------------------

    def block_confidence(self, proc: str, label: str) -> float:
        """Confidence in one block count, in [0, 1].

        Exact databases are fully confident.  For sampled counts the
        confidence grows with the raw observation count *n* as
        ``1 - 1/sqrt(n)`` — the relative standard error of a sampled
        count estimate shrinks with the square root of the evidence.
        """
        if not self.sampled:
            return 1.0 if (proc, label) in self.block_counts else 0.0
        n = self.block_samples.get((proc, label), 0)
        if n <= 0:
            return 0.0
        return max(0.0, 1.0 - 1.0 / math.sqrt(n))

    def overall_confidence(self) -> float:
        """Evidence-weighted mean confidence across recorded blocks.

        Weighted by observation count, so the hot blocks that actually
        drive inline/clone decisions dominate the figure.  Exact
        databases report 1.0; an empty database reports 0.0.
        """
        if not self.sampled:
            return 1.0 if self.block_counts else 0.0
        total = sum(self.block_samples.values())
        if total <= 0:
            return 0.0
        weighted = sum(
            n * (1.0 - 1.0 / math.sqrt(n)) for n in self.block_samples.values() if n > 0
        )
        return weighted / total

    def coverage(self, program: Program) -> float:
        """Fraction of the program's blocks that carry a recorded count."""
        total = 0
        covered = 0
        for proc in program.all_procs():
            for label in proc.blocks:
                total += 1
                if (proc.name, label) in self.block_counts:
                    covered += 1
        return covered / total if total else 0.0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _has_v3_data(self) -> bool:
        return bool(
            self.sampled
            or self.block_samples
            or self.context_counts
            or self.fingerprints
        )

    def to_text(self) -> str:
        lines = ["runs {} steps {}".format(self.training_runs, self.training_steps)]
        version = PROFILEDB_PLAIN_VERSION
        if self._has_v3_data():
            version = PROFILEDB_VERSION
            if self.sampled:
                lines.append(
                    "sampling rate {} depth {} events {} samples {}".format(
                        round(self.sample_rate, 4),
                        self.context_depth,
                        self.sampled_events,
                        self.sample_count,
                    )
                )
            for proc, digest in sorted(self.fingerprints.items()):
                lines.append("fp {} {}".format(proc, digest))
        for (proc, label), count in sorted(self.block_counts.items()):
            lines.append("block {} {} {}".format(proc, label, count))
        if version == PROFILEDB_VERSION:
            for (proc, label), n in sorted(self.block_samples.items()):
                lines.append("obs {} {} {}".format(proc, label, n))
            for (proc, label), per in sorted(self.context_counts.items()):
                for ctx, count in sorted(per.items()):
                    lines.append(
                        "ctx {} {} {} {}".format(
                            proc, label, count, format_context(ctx)
                        )
                    )
        for (module, site), count in sorted(self.site_counts.items()):
            lines.append("site {} {} {}".format(module, site, count))
        payload = "\n".join(lines) + "\n"
        checksum = format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")
        return "profiledb {} crc32 {}\n{}".format(version, checksum, payload)

    @classmethod
    def from_text(cls, text: str) -> "ProfileDatabase":
        header, _, payload = text.lstrip("\n").partition("\n")
        if not header.startswith("profiledb"):
            raise ProfileFormatError("not a profile database", "not-profile")
        fields = header.split()
        try:
            version = int(fields[1]) if len(fields) > 1 else 0
        except ValueError:
            raise ProfileFormatError(
                "malformed version field", "malformed", 1, header
            ) from None
        if version in (PROFILEDB_PLAIN_VERSION, PROFILEDB_VERSION):
            if len(fields) != 4 or fields[2] != "crc32":
                raise ProfileFormatError(
                    "malformed profiledb header", "malformed", 1, header
                )
            computed = format(
                zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x"
            )
            if computed != fields[3]:
                raise ProfileFormatError(
                    "checksum mismatch (stated {}, computed {}): "
                    "database is truncated or corrupted".format(fields[3], computed),
                    "corrupted",
                )
        elif version != 1:  # version 1 predates the checksum; still read it
            raise ProfileFormatError(
                "version skew: file is v{}, toolchain reads v{}".format(
                    version, PROFILEDB_VERSION
                ),
                "version-skew",
                1,
                header,
            )

        db = cls()
        for lineno, line in enumerate(payload.splitlines(), 2):
            if not line.strip():
                continue
            parts = line.split()
            kind = parts[0]
            try:
                if kind == "runs":
                    if len(parts) != 4 or parts[2] != "steps":
                        raise ProfileFormatError(
                            "expected 'runs <n> steps <n>'", "malformed", lineno, line
                        )
                    db.training_runs = int(parts[1])
                    db.training_steps = int(parts[3])
                elif kind == "block":
                    if len(parts) != 4:
                        raise ProfileFormatError(
                            "block line needs 'block <proc> <label> <count>'",
                            "malformed", lineno, line,
                        )
                    db.block_counts[(parts[1], parts[2])] = int(parts[3])
                elif kind == "site":
                    if len(parts) != 4:
                        raise ProfileFormatError(
                            "site line needs 'site <module> <id> <count>'",
                            "malformed", lineno, line,
                        )
                    db.site_counts[(parts[1], int(parts[2]))] = int(parts[3])
                elif kind == "sampling":
                    if (
                        len(parts) != 9
                        or parts[1] != "rate"
                        or parts[3] != "depth"
                        or parts[5] != "events"
                        or parts[7] != "samples"
                    ):
                        raise ProfileFormatError(
                            "sampling line needs 'sampling rate <r> depth <k> "
                            "events <n> samples <n>'",
                            "malformed", lineno, line,
                        )
                    db.sampled = True
                    db.sample_rate = float(parts[2])
                    db.context_depth = int(parts[4])
                    db.sampled_events = int(parts[6])
                    db.sample_count = int(parts[8])
                elif kind == "obs":
                    if len(parts) != 4:
                        raise ProfileFormatError(
                            "obs line needs 'obs <proc> <label> <samples>'",
                            "malformed", lineno, line,
                        )
                    db.block_samples[(parts[1], parts[2])] = int(parts[3])
                elif kind == "ctx":
                    if len(parts) != 5:
                        raise ProfileFormatError(
                            "ctx line needs 'ctx <proc> <label> <count> <path>'",
                            "malformed", lineno, line,
                        )
                    key = (parts[1], parts[2])
                    per = db.context_counts.setdefault(key, {})
                    per[parse_context(parts[4])] = int(parts[3])
                elif kind == "fp":
                    if len(parts) != 3:
                        raise ProfileFormatError(
                            "fp line needs 'fp <proc> <digest>'",
                            "malformed", lineno, line,
                        )
                    db.fingerprints[parts[1]] = parts[2]
                else:
                    raise ProfileFormatError(
                        "unknown record kind {!r}".format(kind), "malformed",
                        lineno, line,
                    )
            except ValueError as exc:
                if isinstance(exc, ProfileFormatError):
                    raise
                raise ProfileFormatError(
                    "malformed integer field: {}".format(exc), "malformed",
                    lineno, line,
                ) from None
        return db

    # ------------------------------------------------------------------
    # Staleness (degradation ladder input)
    # ------------------------------------------------------------------

    def match_ratio(self, program: Program) -> float:
        """Fraction of recorded block keys that resolve in ``program``.

        The front end is deterministic, so a profile trained from the
        same sources matches ~1.0; a profile from different or heavily
        edited sources matches near 0.0.  The driver treats a
        low ratio as *stale* and degrades to static estimation.

        This is the whole-database scalar, kept for backward
        compatibility; :meth:`proc_match_ratios` reports the same
        signal per procedure, which is what ``repro profile check``
        surfaces (a single edited routine should not condemn the whole
        database).
        """
        if not self.block_counts:
            return 0.0
        live = {
            (proc.name, label)
            for proc in program.all_procs()
            for label in proc.blocks
        }
        hits = sum(1 for key in self.block_counts if key in live)
        return hits / len(self.block_counts)

    def proc_match_ratios(self, program: Program) -> Dict[str, float]:
        """Per-procedure fraction of recorded block keys that resolve.

        A procedure recorded in the database but absent from the
        program reports 0.0; an untouched procedure reports 1.0.
        """
        recorded: Dict[str, List[str]] = {}
        for proc, label in self.block_counts:
            recorded.setdefault(proc, []).append(label)
        ratios: Dict[str, float] = {}
        for name, labels in recorded.items():
            proc = program.proc(name)
            if proc is None:
                ratios[name] = 0.0
                continue
            hits = sum(1 for label in labels if label in proc.blocks)
            ratios[name] = hits / len(labels)
        return ratios

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_text())

    @classmethod
    def load(cls, path: str) -> "ProfileDatabase":
        with open(path) as handle:
            return cls.from_text(handle.read())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ProfileDatabase {} blocks, {} sites, {} runs{}>".format(
            len(self.block_counts),
            len(self.site_counts),
            self.training_runs,
            ", sampled" if self.sampled else "",
        )
