"""``compress`` — an LZW-style compressor (analog of SPEC compress).

SPEC's compress spends its time in a hash-probe loop over a string
table, with tiny helpers (hash, probe step, data accessors) called from
the inner loop — exactly the structure here.  The data source lives in
a separate module behind a one-line accessor, making cross-module
inlining of ``data_at`` the difference between a call per input byte
and none.

Inputs: [data length, repetition period, random mix percent].
"""

from ..suite import Workload, register

TABLE = """
// Open-addressed string table: key = prefix*256 + ch, value = code.
int tab_key[1024];
int tab_val[1024];

static int hash(int prefix, int ch) {
  return ((prefix * 31) + ch * 7) & 1023;
}

void table_clear() {
  int i;
  for (i = 0; i < 1024; i++) tab_key[i] = -1;
}

int table_find(int prefix, int ch) {
  int h = hash(prefix, ch);
  int key = prefix * 256 + ch;
  int probes = 0;
  while (tab_key[h] != -1 && probes < 1024) {
    if (tab_key[h] == key) return tab_val[h];
    h = (h + 1) & 1023;
    probes = probes + 1;
  }
  return -1;
}

void table_add(int prefix, int ch, int code) {
  int h = hash(prefix, ch);
  int probes = 0;
  while (tab_key[h] != -1 && probes < 1024) {
    h = (h + 1) & 1023;
    probes = probes + 1;
  }
  if (probes >= 1024) return; // table full: stop growing the dictionary
  tab_key[h] = prefix * 256 + ch;
  tab_val[h] = code;
}
"""

DATA = """
// Pseudo-random but compressible data: a repeating phrase with noise.
int data[8192];
static int seed = 99991;

static int rnd(int m) {
  seed = (seed * 48271) % 2147483647;
  return seed % m;
}

void fill_data(int n, int period, int noise) {
  int i;
  if (n > 8192) n = 8192;
  for (i = 0; i < n; i++) {
    if (rnd(100) < noise) data[i] = rnd(256);
    else data[i] = ((i % period) * 13 + 7) & 255;
  }
}

int data_at(int i) { return data[i & 8191]; }
"""

COMPRESS = """
extern void table_clear();
extern int table_find(int prefix, int ch);
extern void table_add(int prefix, int ch, int code);
extern int data_at(int i);

int out_count = 0;
int out_sum = 0;

static void emit(int code) {
  out_count = out_count + 1;
  out_sum = (out_sum + code * ((out_count & 7) + 1)) % 1000003;
}

int compress(int n) {
  table_clear();
  out_count = 0;
  out_sum = 0;
  int next_code = 256;
  int prefix = data_at(0);
  int i;
  for (i = 1; i < n; i++) {
    int ch = data_at(i);
    int code = table_find(prefix, ch);
    if (code != -1) {
      prefix = code;
    } else {
      emit(prefix);
      if (next_code < 768) {
        table_add(prefix, ch, next_code);
        next_code = next_code + 1;
      }
      prefix = ch;
    }
  }
  emit(prefix);
  return out_count;
}

int checksum() { return out_sum; }
"""

MAIN = """
extern void fill_data(int n, int period, int noise);
extern int compress(int n);
extern int checksum();

int main() {
  int n = input(0);
  int period = input(1);
  int noise = input(2);
  if (period < 1) period = 1;
  fill_data(n, period, noise);
  int codes = compress(n);
  print_int(codes);
  print_int(checksum());
  return codes % 97;
}
"""

WORKLOAD = Workload(
    name="compress",
    spec_analog="026.compress / 129.compress (LZW)",
    description="LZW dictionary compression with hash-probe inner loop",
    sources=(("table", TABLE), ("data", DATA), ("lzw", COMPRESS), ("czmain", MAIN)),
    train_inputs=((800, 17, 8),),
    ref_input=(2500, 23, 12),
    suites=("92", "95"),
)


def register_workload() -> None:
    register(WORKLOAD)
