"""Fault coverage for profiledb v3 records and the fleet fault plan.

The ``v3-*`` corruption modes must put damage *past* the CRC gate: a
malformed record that the checksum rejects never exercises the record
parser, so these modes re-frame the header over the damaged payload.
The fleet-plan methods (shard transit faults, poisoning, WAL tails,
flapping, canary traps) must be deterministic from the seed and the
decision's identity — the loop retries and replays, so a fault decision
must not depend on how many other faults fired first.
"""

from __future__ import annotations

import zlib

import pytest

from repro.frontend import compile_program
from repro.interp import run_program
from repro.profile.database import ProfileDatabase
from repro.profile.instrument import instrument_program
from repro.resilience import (
    SHARD_FAULTS,
    FaultInjector,
    ProfileFormatError,
)
from repro.sampling.sampler import SampledProfile, sample_run

V3_MODES = ("v3-sampling", "v3-obs", "v3-ctx", "v3-fp")

SOURCES = [
    (
        "main",
        "int helper(int x) { return x * 2 + 1; }\n"
        "int main() { int i = 0; int acc = 0;\n"
        "  while (i < 40) { acc = acc + helper(i); i = i + 1; }\n"
        "  print_int(acc); return 0; }\n",
    )
]


def trained_profile_text() -> str:
    """An exact (instrumented) v3 database: fp records, no sampling."""
    program = compile_program(SOURCES)
    probe_map = instrument_program(program)
    result = run_program(program, [5])
    db = ProfileDatabase.from_training_run(
        program, probe_map, result.probe_counts, result.steps
    )
    return db.to_text()


def sampled_profile_text() -> str:
    """A sampled v3 database: sampling/obs/ctx records present."""
    program = compile_program(SOURCES)
    profile = SampledProfile(rate=3, context_depth=2, seed=11)
    sample_run(program, [5], profile=profile)
    return profile.to_database(program).to_text()


def payload_checksum_ok(text: str) -> bool:
    header, _, payload = text.partition("\n")
    fields = header.split()
    computed = format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")
    return fields[-1] == computed


class TestV3RecordCorruption:
    @pytest.mark.parametrize("mode", V3_MODES)
    def test_detected_on_sampled_database(self, mode):
        """Victim-line path: the record kind exists and gets malformed."""
        text = sampled_profile_text()
        corrupted = FaultInjector(seed=7, mode=mode).corrupt_text(text)
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(corrupted)
        assert err.value.kind == "malformed"

    @pytest.mark.parametrize("mode", V3_MODES)
    def test_detected_on_exact_database(self, mode):
        """Fallback path: exact profiles lack sampling/obs/ctx records,
        so the injector appends a malformed one — the fault always fires."""
        text = trained_profile_text()
        corrupted = FaultInjector(seed=7, mode=mode).corrupt_text(text)
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(corrupted)
        assert err.value.kind == "malformed"

    @pytest.mark.parametrize("mode", V3_MODES)
    def test_damage_passes_the_checksum_gate(self, mode):
        """The whole point of re-framing: CRC valid, record broken."""
        corrupted = FaultInjector(seed=7, mode=mode).corrupt_text(
            sampled_profile_text()
        )
        assert payload_checksum_ok(corrupted)

    @pytest.mark.parametrize("mode", V3_MODES)
    def test_error_reports_the_damaged_line(self, mode):
        corrupted = FaultInjector(seed=7, mode=mode).corrupt_text(
            sampled_profile_text()
        )
        with pytest.raises(ProfileFormatError) as err:
            ProfileDatabase.from_text(corrupted)
        assert err.value.lineno is not None
        assert err.value.line


class TestShardFaultPlan:
    def test_unknown_shard_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(shard_faults=("gremlins",))

    def test_no_plan_means_no_faults(self):
        injector = FaultInjector(seed=3)
        assert injector.shard_fault("inst0", 0) is None
        assert injector.poison_payload("profiledb 3\nbody", "inst0", 0).endswith(
            "body"
        )
        assert not injector.flap("inst0", 0)
        assert not injector.kill_mid_swap(1)
        assert not injector.canary_trap(1)

    def test_decisions_are_identity_keyed_not_order_keyed(self):
        """The same (source, seq, attempt) decides the same, regardless
        of what was asked first — retries and replays depend on this."""
        a = FaultInjector(seed=5, shard_faults=SHARD_FAULTS, shard_fault_rate=0.5)
        b = FaultInjector(seed=5, shard_faults=SHARD_FAULTS, shard_fault_rate=0.5)
        keys = [("inst{}".format(i % 3), i, i % 2) for i in range(30)]
        forward = [a.shard_fault(*k) for k in keys]
        backward = [b.shard_fault(*k) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_rate_zero_never_fires(self):
        injector = FaultInjector(
            seed=5, shard_faults=SHARD_FAULTS, shard_fault_rate=0.0
        )
        assert all(
            injector.shard_fault("inst0", seq) is None for seq in range(50)
        )

    def test_rate_one_always_fires_a_known_fault(self):
        injector = FaultInjector(
            seed=5, shard_faults=SHARD_FAULTS, shard_fault_rate=1.0
        )
        fired = {injector.shard_fault("inst0", seq) for seq in range(50)}
        assert fired and fired <= set(SHARD_FAULTS)

    def test_damage_shard_is_deterministic_and_damages(self):
        wire = "shard inst0 0 0 10 crc32 0badc0de\n0123456789"
        a = FaultInjector(seed=9).damage_shard(wire, "corrupt", "inst0", 0)
        b = FaultInjector(seed=9).damage_shard(wire, "corrupt", "inst0", 0)
        assert a == b and a != wire
        truncated = FaultInjector(seed=9).damage_shard(
            wire, "truncate", "inst0", 0
        )
        assert len(truncated) < len(wire)

    def test_delay_is_bounded_and_nonzero(self):
        injector = FaultInjector(seed=2)
        delays = {injector.delay_ticks("inst0", seq) for seq in range(40)}
        assert delays <= {1, 2, 3} and delays

    def test_poison_keeps_header_but_breaks_body(self):
        text = sampled_profile_text()
        injector = FaultInjector(seed=4, poison_sources=("inst1",))
        clean = injector.poison_payload(text, "inst0", 0)
        assert clean == text  # not a poisoned source
        poisoned = injector.poison_payload(text, "inst1", 0)
        assert poisoned != text
        assert poisoned.partition("\n")[0] == text.partition("\n")[0]

    def test_wal_tail_corruption_truncates_and_garbles(self):
        injector = FaultInjector(seed=6, wal_tail_rounds=(3,))
        assert injector.wal_tail_fault(3) and not injector.wal_tail_fault(2)
        text = "x" * 400
        damaged = injector.corrupt_wal_tail(text)
        assert len(damaged) < len(text)
        assert any(ch in "#!?~" for ch in damaged)

    def test_flap_only_for_configured_sources(self):
        injector = FaultInjector(seed=1, flap_sources=("inst0",))
        assert not any(injector.flap("inst1", r) for r in range(20))
        assert any(injector.flap("inst0", r) for r in range(20))

    def test_fired_faults_are_logged(self):
        injector = FaultInjector(
            seed=5, shard_faults=("drop",), shard_fault_rate=1.0,
            kill_mid_swap_epochs=(1,), canary_trap_epochs=(2,),
        )
        injector.shard_fault("inst0", 0)
        injector.kill_mid_swap(1)
        injector.canary_trap(2)
        assert injector.injected == [
            "shard:drop:inst0:0#0", "mid-swap-kill:1", "canary-trap:2",
        ]
