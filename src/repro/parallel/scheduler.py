"""Profile-weight-aware scheduling of per-module compile jobs.

Fanning modules out over a process pool, the makespan is set by the
last worker to finish, so the heaviest compiles must start first
(classic longest-processing-time order).  "Heaviest" is estimated from
two signals:

- measured profile traffic attributed to the module (the sum of its
  recorded call-site counts), when a training profile is available —
  hot modules grow most under HLO and tend to recompile slowest;
- source text length, the cold-start proxy for frontend cost.

Profile traffic dominates when present; length breaks ties and covers
the unprofiled case.  The order is deterministic (name-tiebroken), so
scheduling never perturbs build output — only completion latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

SourcePairs = Sequence[Tuple[str, str]]


def module_weights(
    sources: SourcePairs, profile: Optional[object] = None
) -> Dict[str, Tuple[float, int]]:
    """(profile traffic, source length) per module name."""
    traffic: Dict[str, float] = {}
    site_counts = getattr(profile, "site_counts", None)
    if site_counts:
        for (module, _site_id), count in site_counts.items():
            traffic[module] = traffic.get(module, 0.0) + float(count)
    return {
        name: (traffic.get(name, 0.0), len(text)) for name, text in sources
    }


def heaviest_first(
    sources: SourcePairs, profile: Optional[object] = None
) -> List[Tuple[str, str]]:
    """Source pairs reordered for submission: heaviest modules first."""
    weights = module_weights(sources, profile)
    return sorted(
        sources,
        key=lambda pair: (
            -weights[pair[0]][0],
            -weights[pair[0]][1],
            pair[0],
        ),
    )
