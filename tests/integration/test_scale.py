"""Scalability smoke: a large generated program through the whole stack.

The paper's closing challenge is "the sheer size of production codes"
(they ran a 500k-line kernel).  We cannot match that in an interpreter,
but the pipeline must at least stay correct and tractable well above
the unit-test program sizes: ~60 procedures over six modules, through
the PGO pipeline, HLO at suite budget, and the machine model.
"""

from repro.core import HLOConfig, run_hlo
from repro.core.budget import program_cost
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import verify_program
from repro.machine import simulate
from repro.profile import ProfileDatabase, annotate_program, instrument_program
from repro.workloads.generator import generate_sources


def build_large():
    return generate_sources(987654, n_modules=6, funcs_per_module=9, n_globals=8)


class TestScale:
    def test_large_program_full_pipeline(self):
        sources = build_large()
        program = compile_program(sources)
        n_procs = len(list(program.all_procs()))
        assert n_procs >= 40, "scale test needs a genuinely large program"

        reference = run_program(program, max_steps=2_000_000)

        # PGO train.
        instrumented = compile_program(sources)
        probe_map = instrument_program(instrumented)
        trained = run_program(instrumented, max_steps=4_000_000)
        db = ProfileDatabase.from_training_run(
            instrumented, probe_map, trained.probe_counts, trained.steps
        )

        # Final compile with HLO.
        final = compile_program(sources)
        annotate_program(final, db)
        report = run_hlo(
            final, HLOConfig(budget_percent=400), site_counts=db.site_counts
        )
        verify_program(final)
        assert report.final_cost <= report.budget_limit * 1.001
        assert report.transform_count >= 5  # real work found

        # Behaviour identical, machine model runs clean.
        metrics, result = simulate(final, max_steps=4_000_000)
        assert result.behavior() == reference.behavior()
        assert metrics.cycles > 0

    def test_large_program_outlining_and_variants(self):
        sources = build_large()
        reference = run_program(compile_program(sources), max_steps=2_000_000)
        base = HLOConfig(budget_percent=200, enable_outlining=True,
                         outline_cold_ratio=0.5, outline_min_block_size=3)
        for cfg in (base, base.inline_only(), base.clone_only()):
            program = compile_program(sources)
            run_hlo(program, cfg)
            verify_program(program)
            result = run_program(program, max_steps=4_000_000)
            assert result.behavior() == reference.behavior()
